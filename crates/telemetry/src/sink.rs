//! Sinks: where trace events go.
//!
//! [`TraceSink`] is the one-method surface instrumented components talk
//! to.  The canonical implementation is [`TraceLog`] — an ordered
//! in-memory log stamped from a [`TraceClock`] (virtual time only), with
//! JSONL serialization and a byte-stable fingerprint for replay
//! equality checks.  [`TraceHandle`] is the `Option<Arc<dyn TraceSink>>`
//! newtype components embed so their `Debug`/`Clone`/`Default` derives
//! survive.

use crate::event::{Label, TraceEvent, TraceRecord};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A source of deterministic timestamps: a virtual-clock reading
/// `(tick, seconds)`.  Implemented by the harness's `VirtualClock`;
/// [`FrozenClock`] (always zero) is the default for logs that only care
/// about ordering.
pub trait TraceClock: Send + Sync {
    /// Current virtual reading: `(tick, seconds)`.  Must not consult
    /// wall time.
    fn now(&self) -> (u64, f64);
    /// Advance virtual seconds by `dt` (clamped at zero).  Default:
    /// no-op, for clocks that are read-only from the log's side.
    fn advance_s(&self, dt: f64) {
        let _ = dt;
    }
}

/// A clock pinned at `(0, 0.0)` — every record stamps tick 0, second 0,
/// and ordering comes solely from `seq`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrozenClock;

impl TraceClock for FrozenClock {
    fn now(&self) -> (u64, f64) {
        (0, 0.0)
    }
}

/// Where instrumented components report events.
///
/// Implementations must be cheap and infallible: emitting telemetry can
/// never perturb the run being observed.
pub trait TraceSink: Send + Sync {
    /// Record that `event` happened inside `source`.
    fn emit(&self, source: &str, event: TraceEvent);
    /// Advance the sink's notion of virtual seconds (forwarded to the
    /// underlying clock, if any).  Default: no-op.
    fn advance_s(&self, dt: f64) {
        let _ = dt;
    }
}

/// A sink that discards everything (useful to keep instrumentation
/// paths exercised without retaining data).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _source: &str, _event: TraceEvent) {}
}

#[derive(Default)]
struct LogState {
    next_seq: u64,
    records: Vec<TraceRecord>,
    /// Source-label intern table: each distinct source string is
    /// allocated once; every further emission from it stamps its record
    /// with a reference-counted clone.
    sources: BTreeMap<Label, ()>,
}

impl LogState {
    fn intern(&mut self, source: &str) -> Label {
        if let Some((label, ())) = self.sources.get_key_value(source) {
            return label.clone();
        }
        let label = Label::new(source);
        self.sources.insert(label.clone(), ());
        label
    }
}

/// The canonical sink: an ordered, append-only, in-memory event log.
///
/// Records are stamped with a per-log sequence number and the current
/// [`TraceClock`] reading at emission.  Clone shares the log (it is an
/// `Arc` inside), so one `TraceLog` can be handed to the enactor, the
/// transport, and the runner and all three append to the same ordered
/// stream.
#[derive(Clone)]
pub struct TraceLog {
    state: Arc<Mutex<LogState>>,
    clock: Arc<dyn TraceClock>,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLog")
            .field("len", &self.len())
            .finish()
    }
}

impl TraceLog {
    /// An empty log stamped from a [`FrozenClock`] (ordering only).
    pub fn new() -> Self {
        Self::with_clock(Arc::new(FrozenClock))
    }

    /// An empty log stamped from `clock` — pass the scenario's
    /// `VirtualClock` so records carry meaningful virtual timestamps.
    pub fn with_clock(clock: Arc<dyn TraceClock>) -> Self {
        TraceLog {
            state: Arc::new(Mutex::new(LogState::default())),
            clock,
        }
    }

    /// An empty log whose sequence counter starts at `next_seq`,
    /// stamped from `clock` — the journal shape a recovering engine
    /// needs: events regenerated while replaying from a snapshot carry
    /// the same sequence numbers the original run gave them, so a
    /// durable store can verify the overlap byte-for-byte.
    pub fn resuming(next_seq: u64, clock: Arc<dyn TraceClock>) -> Self {
        let log = Self::with_clock(clock);
        log.state.lock().next_seq = next_seq;
        log
    }

    /// The sequence number the next emission will be stamped with.
    pub fn next_seq(&self) -> u64 {
        self.state.lock().next_seq
    }

    /// The clock's current `(tick, seconds)` reading — what a snapshot
    /// must persist so a resumed log stamps time exactly where the
    /// original left off.
    pub fn clock_now(&self) -> (u64, f64) {
        self.clock.now()
    }

    /// All records with `seq >= seq`, in emission order — the
    /// incremental read used to flush a tick's worth of journal into a
    /// durable store.
    pub fn records_from(&self, seq: u64) -> Vec<TraceRecord> {
        self.state
            .lock()
            .records
            .iter()
            .filter(|r| r.seq >= seq)
            .cloned()
            .collect()
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.state.lock().records.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of all records in emission order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.state.lock().records.clone()
    }

    /// Drop all records and reset the sequence counter (the clock and
    /// the source intern table are left untouched).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.records.clear();
        st.next_seq = 0;
    }

    /// Serialize the log as JSON Lines — one record per line, in
    /// emission order.  Two runs with identical seeds produce
    /// byte-identical output (all timestamps are virtual).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.state.lock().records.iter() {
            out.push_str(&serde_json::to_string(r).expect("trace records serialize"));
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL dump back into records (inverse of
    /// [`TraceLog::to_jsonl`]).
    pub fn from_jsonl(jsonl: &str) -> Result<Vec<TraceRecord>, serde_json::Error> {
        jsonl
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(serde_json::from_str)
            .collect()
    }

    /// A byte-stable fingerprint of the whole log (currently the JSONL
    /// dump itself) — compare fingerprints of two seeded runs to assert
    /// replay determinism.
    pub fn fingerprint(&self) -> String {
        self.to_jsonl()
    }
}

impl TraceSink for TraceLog {
    fn emit(&self, source: &str, event: TraceEvent) {
        let (tick, at_s) = self.clock.now();
        let mut st = self.state.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        let source = st.intern(source);
        st.records.push(TraceRecord {
            seq,
            tick,
            at_s,
            source,
            event,
        });
    }

    fn advance_s(&self, dt: f64) {
        self.clock.advance_s(dt);
    }
}

/// An optional, shareable sink slot.
///
/// Components embed a `TraceHandle` instead of an
/// `Option<Arc<dyn TraceSink>>` so their `Debug`, `Clone`, and
/// `Default` derives keep working; emission through an empty handle is
/// a no-op.
#[derive(Clone, Default)]
pub struct TraceHandle {
    sink: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("installed", &self.sink.is_some())
            .finish()
    }
}

impl TraceHandle {
    /// An empty handle (emissions are no-ops).
    pub fn none() -> Self {
        TraceHandle::default()
    }

    /// A handle wrapping `sink`.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        TraceHandle { sink: Some(sink) }
    }

    /// Is a sink installed?
    pub fn is_installed(&self) -> bool {
        self.sink.is_some()
    }

    /// The installed sink, if any — what a fan-out layer (e.g. a
    /// [`TeeSink`]) needs to wrap an existing handle without losing its
    /// destination.
    pub fn sink(&self) -> Option<Arc<dyn TraceSink>> {
        self.sink.clone()
    }

    /// Emit `event` from `source` if a sink is installed.
    pub fn emit(&self, source: &str, event: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.emit(source, event);
        }
    }

    /// Forward a virtual-seconds advance to the sink, if installed.
    pub fn advance_s(&self, dt: f64) {
        if let Some(sink) = &self.sink {
            sink.advance_s(dt);
        }
    }
}

impl From<Arc<dyn TraceSink>> for TraceHandle {
    fn from(sink: Arc<dyn TraceSink>) -> Self {
        TraceHandle::new(sink)
    }
}

impl From<TraceLog> for TraceHandle {
    fn from(log: TraceLog) -> Self {
        TraceHandle::new(Arc::new(log))
    }
}

/// A sink adapter that prefixes every emission's `source` with a fixed
/// scope — `"case:dinner-3"` plus an inner source `"enactor"` records as
/// `"case:dinner-3/enactor"`.  The multi-case engine wraps one scoped
/// sink per case around the shared log, so a merged trace stays
/// attributable per case without threading case ids through every
/// instrumented component.
///
/// Composed `"{scope}/{source}"` labels are cached per inner source, so
/// the steady-state emit path formats each distinct source once instead
/// of allocating a fresh prefix string per event.
pub struct ScopedSink {
    scope: String,
    inner: Arc<dyn TraceSink>,
    /// inner source → composed `"{scope}/{source}"` label.
    composed: Mutex<BTreeMap<String, String>>,
}

impl ScopedSink {
    /// Wrap `inner` so every emission's source is prefixed with
    /// `"{scope}/"`.
    pub fn new(scope: impl Into<String>, inner: Arc<dyn TraceSink>) -> Self {
        ScopedSink {
            scope: scope.into(),
            inner,
            composed: Mutex::new(BTreeMap::new()),
        }
    }

    /// The scope prefix this sink applies.
    pub fn scope(&self) -> &str {
        &self.scope
    }
}

impl std::fmt::Debug for ScopedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopedSink")
            .field("scope", &self.scope)
            .finish()
    }
}

impl TraceSink for ScopedSink {
    fn emit(&self, source: &str, event: TraceEvent) {
        let mut composed = self.composed.lock();
        if let Some(full) = composed.get(source) {
            self.inner.emit(full, event);
            return;
        }
        let full = format!("{}/{source}", self.scope);
        self.inner.emit(&full, event);
        composed.insert(source.to_owned(), full);
    }

    fn advance_s(&self, dt: f64) {
        self.inner.advance_s(dt);
    }
}

/// One operation a [`TraceBuffer`] captured: an emission or a
/// virtual-seconds advance, in the order the instrumented code issued
/// them.
#[derive(Debug, Clone, PartialEq)]
pub enum BufferedOp {
    /// `emit(source, event)` was called.
    Emit {
        /// The emission's source label (pre-scoping — replay through a
        /// scoped sink re-applies the scope).
        source: String,
        /// The emitted event.
        event: TraceEvent,
    },
    /// `advance_s(dt)` was called.
    AdvanceS(
        /// The virtual-seconds delta.
        f64,
    ),
}

/// A sink that *defers*: emissions and clock advances are captured in
/// order instead of reaching a log, to be replayed later into a real
/// sink.
///
/// This is the splice primitive behind the engine's sharded two-phase
/// tick.  During the parallel prepare phase each shard's speculative
/// work traces into its own `TraceBuffer` — nothing touches the shared
/// log, whose sequence numbers are global state.  The sequential commit
/// phase then replays each adopted speculation's buffer into the real
/// sink at the exact point the canonical order reaches it, so the
/// merged JSONL stream is byte-identical to an unsharded run;
/// discarded speculations are simply dropped, buffer and all.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    ops: Mutex<Vec<BufferedOp>>,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of captured operations.
    pub fn len(&self) -> usize {
        self.ops.lock().len()
    }

    /// Has nothing been captured?
    pub fn is_empty(&self) -> bool {
        self.ops.lock().is_empty()
    }

    /// Take the captured operations, leaving the buffer empty.
    pub fn drain(&self) -> Vec<BufferedOp> {
        std::mem::take(&mut *self.ops.lock())
    }

    /// Replay (and drain) the captured operations into `sink`, in
    /// capture order.
    pub fn replay_into(&self, sink: &dyn TraceSink) {
        for op in self.drain() {
            match op {
                BufferedOp::Emit { source, event } => sink.emit(&source, event),
                BufferedOp::AdvanceS(dt) => sink.advance_s(dt),
            }
        }
    }

    /// Replay (and drain) the captured operations through `handle` —
    /// a no-op if no sink is installed, matching direct emission.
    pub fn replay_handle(&self, handle: &TraceHandle) {
        for op in self.drain() {
            match op {
                BufferedOp::Emit { source, event } => handle.emit(&source, event),
                BufferedOp::AdvanceS(dt) => handle.advance_s(dt),
            }
        }
    }
}

impl TraceSink for TraceBuffer {
    fn emit(&self, source: &str, event: TraceEvent) {
        self.ops.lock().push(BufferedOp::Emit {
            source: source.to_owned(),
            event,
        });
    }

    fn advance_s(&self, dt: f64) {
        self.ops.lock().push(BufferedOp::AdvanceS(dt));
    }
}

/// A sink that fans every emission out to several inner sinks, in
/// order.  The transport-selection layer uses it to mirror a run's
/// trace stream onto a remote delivery backend without disturbing the
/// primary log — the primary sink is listed first, so its sequence
/// numbers are identical to an un-teed run.
pub struct TeeSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl TeeSink {
    /// Fan emissions out to `sinks`, first to last.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        TeeSink { sinks }
    }
}

impl std::fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl TraceSink for TeeSink {
    fn emit(&self, source: &str, event: TraceEvent) {
        for sink in &self.sinks {
            sink.emit(source, event.clone());
        }
    }

    fn advance_s(&self, dt: f64) {
        for sink in &self.sinks {
            sink.advance_s(dt);
        }
    }
}

/// A shared, swappable sink slot: install or clear a sink *after*
/// construction, with the installation visible to every clone (the
/// directory's transport-slot pattern applied to tracing).
#[derive(Clone, Default)]
pub struct TraceSlot {
    inner: Arc<parking_lot::RwLock<Option<Arc<dyn TraceSink>>>>,
}

impl TraceSlot {
    /// An empty slot (no sink installed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a sink, replacing any previous one.
    pub fn set(&self, sink: Arc<dyn TraceSink>) {
        *self.inner.write() = Some(sink);
    }

    /// Remove the installed sink (emission becomes a no-op).
    pub fn clear(&self) {
        *self.inner.write() = None;
    }

    /// The currently installed sink, if any.
    pub fn get(&self) -> Option<Arc<dyn TraceSink>> {
        self.inner.read().clone()
    }

    /// Is a sink installed?
    pub fn is_installed(&self) -> bool {
        self.inner.read().is_some()
    }

    /// Emit `event` from `source` if a sink is installed.
    pub fn emit(&self, source: &str, event: TraceEvent) {
        if let Some(sink) = self.get() {
            sink.emit(source, event);
        }
    }
}

impl std::fmt::Debug for TraceSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSlot")
            .field("installed", &self.is_installed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(id: u64) -> TraceEvent {
        TraceEvent::MessageSent {
            id,
            performative: "request".into(),
            sender: "a".into(),
            receiver: "b".into(),
            in_reply_to: None,
        }
    }

    #[test]
    fn log_orders_and_sequences_records() {
        let log = TraceLog::new();
        log.emit("x", msg(1));
        log.emit("y", msg(2));
        let recs = log.records();
        assert_eq!(recs.len(), 2);
        assert_eq!((recs[0].seq, recs[1].seq), (0, 1));
        assert_eq!(recs[0].source, "x");
        assert_eq!(recs[0].event.message_id(), Some(1));
    }

    #[test]
    fn jsonl_round_trips_and_fingerprints_match() {
        let log = TraceLog::new();
        log.emit("t", msg(7));
        log.emit(
            "t",
            TraceEvent::Custom {
                label: "note".into(),
                detail: "hello".into(),
            },
        );
        let dump = log.to_jsonl();
        assert_eq!(dump.lines().count(), 2);
        let back = TraceLog::from_jsonl(&dump).unwrap();
        assert_eq!(back, log.records());
        assert_eq!(log.fingerprint(), dump);
    }

    #[test]
    fn clones_share_the_log() {
        let log = TraceLog::new();
        let other = log.clone();
        other.emit("t", msg(1));
        assert_eq!(log.len(), 1);
        log.clear();
        assert!(other.is_empty());
    }

    #[test]
    fn empty_handle_is_a_noop_and_debug_shows_installed() {
        let h = TraceHandle::none();
        h.emit("t", msg(1));
        h.advance_s(5.0);
        assert!(!h.is_installed());
        assert_eq!(format!("{h:?}"), "TraceHandle { installed: false }");
        let h = TraceHandle::from(TraceLog::new());
        assert!(h.is_installed());
    }

    #[test]
    fn scoped_sink_prefixes_sources_and_forwards_advances() {
        let log = TraceLog::new();
        let scoped = ScopedSink::new("case:dinner-3", Arc::new(log.clone()));
        assert_eq!(scoped.scope(), "case:dinner-3");
        scoped.emit("enactor", msg(1));
        let recs = log.records();
        assert_eq!(recs[0].source, "case:dinner-3/enactor");
        assert_eq!(
            format!("{scoped:?}"),
            r#"ScopedSink { scope: "case:dinner-3" }"#
        );
    }

    #[test]
    fn sources_are_interned_and_labels_stay_string_shaped() {
        let log = TraceLog::new();
        log.emit("enactor", msg(1));
        log.emit("enactor", msg(2));
        log.emit("engine", msg(3));
        let recs = log.records();
        // Repeated sources share one interned allocation.
        assert!(std::ptr::eq(
            recs[0].source.as_str().as_ptr(),
            recs[1].source.as_str().as_ptr()
        ));
        assert_eq!(recs[0].source, recs[1].source);
        // The label compares and derefs like a string…
        assert_eq!(recs[0].source, "enactor");
        assert!(recs[2].source.starts_with("eng"));
        assert_eq!(recs[2].source.as_str(), "engine");
        // …and serializes as a plain JSON string, byte-identical to the
        // old `String` representation.
        let json = serde_json::to_string(&recs[0]).unwrap();
        assert!(json.contains(r#""source":"enactor""#), "{json}");
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, recs[0]);
    }

    #[test]
    fn scoped_sink_caches_composed_labels() {
        let log = TraceLog::new();
        let scoped = ScopedSink::new("case:x", Arc::new(log.clone()));
        scoped.emit("enactor", msg(1));
        scoped.emit("enactor", msg(2));
        scoped.emit("recovery", msg(3));
        let recs = log.records();
        assert_eq!(recs[0].source, "case:x/enactor");
        assert_eq!(recs[1].source, "case:x/enactor");
        assert_eq!(recs[2].source, "case:x/recovery");
    }

    #[test]
    fn resumed_logs_continue_the_sequence() {
        let log = TraceLog::resuming(7, Arc::new(FrozenClock));
        assert_eq!(log.next_seq(), 7);
        assert_eq!(log.clock_now(), (0, 0.0));
        log.emit("t", msg(1));
        log.emit("t", msg(2));
        let recs = log.records();
        assert_eq!((recs[0].seq, recs[1].seq), (7, 8));
        // records_from slices by stamped seq, not vector index.
        assert_eq!(log.records_from(8).len(), 1);
        assert_eq!(log.records_from(8)[0].seq, 8);
        assert!(log.records_from(9).is_empty());
        assert_eq!(log.records_from(0).len(), 2);
    }

    #[test]
    fn trace_buffer_replays_in_capture_order_and_drains() {
        let buffer = TraceBuffer::new();
        buffer.emit("enactor", msg(1));
        buffer.advance_s(2.5);
        buffer.emit("enactor", msg(2));
        assert_eq!(buffer.len(), 3);
        let log = TraceLog::new();
        buffer.replay_into(&log);
        assert!(buffer.is_empty(), "replay drains the buffer");
        let recs = log.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(
            (recs[0].event.message_id(), recs[1].event.message_id()),
            (Some(1), Some(2))
        );
        assert_eq!((recs[0].seq, recs[1].seq), (0, 1));
    }

    #[test]
    fn trace_buffer_splice_is_byte_identical_to_direct_emission() {
        // The sharded commit's contract: direct emission and
        // buffered-then-replayed emission produce the same log bytes.
        let direct = TraceLog::new();
        direct.emit("a", msg(1));
        direct.emit("b", msg(2));
        direct.emit("a", msg(3));

        let spliced = TraceLog::new();
        spliced.emit("a", msg(1));
        let buffer = TraceBuffer::new();
        buffer.emit("b", msg(2));
        buffer.emit("a", msg(3));
        buffer.replay_into(&spliced);
        assert_eq!(direct.fingerprint(), spliced.fingerprint());
    }

    #[test]
    fn trace_buffer_through_a_scoped_sink_keeps_the_scope() {
        // Replay through the same scoped sink the fiber would have
        // emitted through re-applies the case scope.
        let log = TraceLog::new();
        let scoped = ScopedSink::new("case:x", Arc::new(log.clone()));
        let buffer = TraceBuffer::new();
        buffer.emit("enactor", msg(1));
        buffer.replay_into(&scoped);
        assert_eq!(log.records()[0].source, "case:x/enactor");
        // And replay through an empty handle is a silent no-op.
        let buffer = TraceBuffer::new();
        buffer.emit("enactor", msg(2));
        buffer.replay_handle(&TraceHandle::none());
        assert!(buffer.is_empty());
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn frozen_clock_stamps_zero() {
        let log = TraceLog::new();
        log.emit("t", msg(1));
        let r = &log.records()[0];
        assert_eq!((r.tick, r.at_s), (0, 0.0));
    }
}
