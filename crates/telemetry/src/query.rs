//! Querying and asserting over traces.
//!
//! [`TraceQuery`] turns a recorded trace into checkable execution
//! invariants: *no activity was dispatched again after completing*,
//! *every dropped message was followed by a timeout or retry (never a
//! wrong answer)*, *A happened before B*, *an activity was retried
//! exactly N times*.  Checks return [`TraceViolation`] values; the
//! `assert_*` wrappers panic with the violation rendered, for direct
//! use in tests.

use crate::event::{TraceEvent, TraceRecord};
use std::collections::BTreeMap;
use std::ops::Range;

/// A falsified trace invariant, carrying enough context to debug it.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceViolation {
    /// An activity saw a dispatch after it had already completed.
    DoubleDispatch {
        /// The offending activity.
        activity: String,
        /// Sequence number of the completion.
        completed_seq: u64,
        /// Sequence number of the later dispatch.
        redispatched_seq: u64,
    },
    /// A dropped message was never resolved by a timeout, a retry, or a
    /// correct answer.
    UnresolvedDrop {
        /// The dropped message id.
        message_id: u64,
        /// Sequence number of the drop.
        dropped_seq: u64,
    },
    /// A request was answered incorrectly (wrong answers under faults
    /// are never acceptable; only timeouts are).
    WrongAnswer {
        /// The answering agent.
        agent: String,
        /// Sequence number of the bad answer.
        seq: u64,
    },
    /// The expected ordering `first` before `second` did not hold.
    OrderViolated {
        /// Description of the event expected first.
        first: String,
        /// Description of the event expected second.
        second: String,
    },
    /// An activity's retry count differed from the expectation.
    RetryCountMismatch {
        /// The activity checked.
        activity: String,
        /// Retries expected.
        expected: usize,
        /// Retries observed.
        observed: usize,
    },
    /// A span endpoint was missing (activity never dispatched or never
    /// completed).
    MissingSpan {
        /// The activity whose span was requested.
        activity: String,
    },
    /// A container's breaker events form an illegal state-machine walk
    /// (e.g. `breaker.closed` without a preceding `breaker.half_open`).
    IllegalBreakerTransition {
        /// The container whose breaker misbehaved.
        container: String,
        /// State implied by the previous event (`"closed"` initially).
        from: String,
        /// State the offending event moved to.
        to: String,
        /// Sequence number of the offending event.
        seq: u64,
    },
    /// An activity was dispatched to a container while its breaker was
    /// open (quarantined containers must be excluded from matchmaking).
    DispatchWhileOpen {
        /// The quarantined container.
        container: String,
        /// Sequence number of the `breaker.opened` event.
        opened_seq: u64,
        /// Sequence number of the offending dispatch.
        dispatched_seq: u64,
    },
    /// Two same-tick admissions came out of order for the active
    /// admission policy (e.g. a lower-priority case ahead of a waiting
    /// higher-priority one, or a later deadline ahead of an earlier).
    AdmissionOrderViolated {
        /// Case admitted first.
        earlier: String,
        /// Case admitted after it, which the policy owed first pick.
        later: String,
        /// The tick both admissions landed on.
        tick: u64,
        /// What the policy ordering said (rendered comparison).
        detail: String,
    },
    /// A `transport.partitioned` event was never followed by a
    /// matching `transport.healed` for the same node pair.
    UnhealedPartition {
        /// One side of the partitioned pair.
        a: String,
        /// The other side of the partitioned pair.
        b: String,
        /// Sequence number of the unmatched `transport.partitioned`.
        opened_seq: u64,
    },
    /// A `transport.healed` event arrived for a node pair with no
    /// open partition.
    HealWithoutPartition {
        /// One side of the healed pair.
        a: String,
        /// The other side of the healed pair.
        b: String,
        /// Sequence number of the stray `transport.healed`.
        seq: u64,
    },
    /// More cases held reservations on a container than it has slots —
    /// the multi-case fair-contention invariant in trace form.
    DoubleBooking {
        /// The over-booked container.
        container: String,
        /// Cases holding a reservation at the moment of the violation.
        holders: Vec<String>,
        /// The container's slot capacity.
        capacity: usize,
        /// Sequence number of the over-booking reservation.
        seq: u64,
    },
    /// A content-addressed plan key ran GP more than once — the plan
    /// cache (or single-flight coalescing) failed to share the work.
    DuplicatePlanRun {
        /// The offending plan key (32 hex digits).
        key: String,
        /// Sequence numbers of every `plan.cache_miss` for that key.
        miss_seqs: Vec<u64>,
    },
}

impl std::fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceViolation::DoubleDispatch {
                activity,
                completed_seq,
                redispatched_seq,
            } => write!(
                f,
                "activity '{activity}' completed at seq {completed_seq} but was \
                 dispatched again at seq {redispatched_seq}"
            ),
            TraceViolation::UnresolvedDrop {
                message_id,
                dropped_seq,
            } => write!(
                f,
                "message {message_id} dropped at seq {dropped_seq} with no later \
                 timeout, retry, or answer"
            ),
            TraceViolation::WrongAnswer { agent, seq } => {
                write!(f, "agent '{agent}' returned a wrong answer at seq {seq}")
            }
            TraceViolation::OrderViolated { first, second } => {
                write!(f, "expected {first} before {second}, trace disagrees")
            }
            TraceViolation::RetryCountMismatch {
                activity,
                expected,
                observed,
            } => write!(
                f,
                "activity '{activity}': expected {expected} retries, observed {observed}"
            ),
            TraceViolation::MissingSpan { activity } => {
                write!(
                    f,
                    "activity '{activity}' has no complete dispatch→completion span"
                )
            }
            TraceViolation::IllegalBreakerTransition {
                container,
                from,
                to,
                seq,
            } => write!(
                f,
                "container '{container}': illegal breaker transition {from} → {to} \
                 at seq {seq}"
            ),
            TraceViolation::DispatchWhileOpen {
                container,
                opened_seq,
                dispatched_seq,
            } => write!(
                f,
                "container '{container}' breaker opened at seq {opened_seq} but took \
                 a dispatch at seq {dispatched_seq} before being readmitted"
            ),
            TraceViolation::AdmissionOrderViolated {
                earlier,
                later,
                tick,
                detail,
            } => write!(
                f,
                "tick {tick}: case '{earlier}' was admitted ahead of '{later}' \
                 against the admission policy ({detail})"
            ),
            TraceViolation::UnhealedPartition { a, b, opened_seq } => write!(
                f,
                "partition between '{a}' and '{b}' opened at seq {opened_seq} was \
                 never healed"
            ),
            TraceViolation::HealWithoutPartition { a, b, seq } => write!(
                f,
                "transport.healed for '{a}'/'{b}' at seq {seq} with no open partition"
            ),
            TraceViolation::DoubleBooking {
                container,
                holders,
                capacity,
                seq,
            } => write!(
                f,
                "container '{container}' ({capacity} slot(s)) held by [{}] at seq {seq} \
                 — double booking",
                holders.join(", ")
            ),
            TraceViolation::DuplicatePlanRun { key, miss_seqs } => write!(
                f,
                "plan key {key} ran GP {} times (plan.cache_miss at seqs {miss_seqs:?}) \
                 — at most one run per key expected",
                miss_seqs.len()
            ),
        }
    }
}

/// One `case.admitted` event flattened for policy-discipline checks.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionRecord {
    /// Sequence number of the admission event.
    pub seq: u64,
    /// The admitted case's label.
    pub case: String,
    /// Scheduler tick the admission landed on.
    pub tick: u64,
    /// The policy's admission reason, when a non-FIFO policy stamped
    /// one.
    pub reason: Option<String>,
}

/// A read-only view over a trace with invariant checks.
#[derive(Debug, Clone)]
pub struct TraceQuery {
    records: Vec<TraceRecord>,
}

impl TraceQuery {
    /// Build a query over a snapshot of records (emission order).
    pub fn new(records: Vec<TraceRecord>) -> Self {
        TraceQuery { records }
    }

    /// The underlying records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records whose event satisfies `pred`, in order.
    pub fn filter<'a>(
        &'a self,
        mut pred: impl FnMut(&TraceEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| pred(&r.event))
    }

    /// Sequence number of the first record matching `pred`.
    pub fn first_seq(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> Option<u64> {
        self.records.iter().find(|r| pred(&r.event)).map(|r| r.seq)
    }

    /// Count of records matching `pred`.
    pub fn count(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> usize {
        self.records.iter().filter(|r| pred(&r.event)).count()
    }

    /// The `seq` span of one activity: first dispatch to first
    /// completion (half-open, so `span.contains(&seq)` covers every
    /// event strictly between them plus the dispatch itself).
    pub fn span(&self, activity: &str) -> Result<Range<u64>, TraceViolation> {
        let start = self.first_seq(
            |e| matches!(e, TraceEvent::ActivityDispatched { activity: a, .. } if a == activity),
        );
        let end = self.first_seq(
            |e| matches!(e, TraceEvent::ActivityCompleted { activity: a, .. } if a == activity),
        );
        match (start, end) {
            (Some(s), Some(e)) if s <= e => Ok(s..e + 1),
            _ => Err(TraceViolation::MissingSpan {
                activity: activity.to_string(),
            }),
        }
    }

    /// Check: no activity is dispatched again after it completed.
    ///
    /// This is the crash/resume double-execution invariant in trace
    /// form — a resumed coordinator must pick up *after* the last
    /// checkpoint, never re-run work that already succeeded.  A
    /// `ResumeStarted` or `ReplanTriggered` event does **not** reset
    /// the check: completion is final.  The one exception is a
    /// `CoordinatorCrashed` event: completions recorded *after* the
    /// checkpoint the crash cut back to were lost with the coordinator
    /// (never durably recorded), so re-dispatching that work on resume
    /// is exactly what recovery is supposed to do.
    pub fn check_no_double_dispatch(&self) -> Result<(), TraceViolation> {
        let mut completed: BTreeMap<&str, u64> = BTreeMap::new();
        let mut checkpoint_seqs: BTreeMap<usize, u64> = BTreeMap::new();
        for r in &self.records {
            match &r.event {
                TraceEvent::ActivityCompleted { activity, .. } => {
                    completed.entry(activity).or_insert(r.seq);
                }
                TraceEvent::CheckpointCaptured { index, .. } => {
                    checkpoint_seqs.entry(*index).or_insert(r.seq);
                }
                TraceEvent::CoordinatorCrashed { after_checkpoints } => {
                    let cut = checkpoint_seqs.get(after_checkpoints).copied().unwrap_or(0);
                    completed.retain(|_, seq| *seq <= cut);
                }
                TraceEvent::ActivityDispatched { activity, .. } => {
                    if let Some(&done) = completed.get(activity.as_str()) {
                        return Err(TraceViolation::DoubleDispatch {
                            activity: activity.clone(),
                            completed_seq: done,
                            redispatched_seq: r.seq,
                        });
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Check: every `MessageDropped` is *resolved* — followed (later in
    /// the trace) by a `RequestTimedOut`, another `MessageSent` (a
    /// retry), or a correct `RequestAnswered`; and no `RequestAnswered`
    /// anywhere carries `correct: false`.  Drops may cost time, never
    /// correctness.
    pub fn check_drops_resolved(&self) -> Result<(), TraceViolation> {
        for r in &self.records {
            if let TraceEvent::RequestAnswered { agent, correct } = &r.event {
                if !correct {
                    return Err(TraceViolation::WrongAnswer {
                        agent: agent.clone(),
                        seq: r.seq,
                    });
                }
            }
        }
        for (i, r) in self.records.iter().enumerate() {
            if let TraceEvent::MessageDropped { id, .. } = &r.event {
                let resolved = self.records[i + 1..].iter().any(|later| {
                    matches!(
                        later.event,
                        TraceEvent::RequestTimedOut { .. }
                            | TraceEvent::MessageSent { .. }
                            | TraceEvent::RequestAnswered { correct: true, .. }
                    )
                });
                if !resolved {
                    return Err(TraceViolation::UnresolvedDrop {
                        message_id: *id,
                        dropped_seq: r.seq,
                    });
                }
            }
        }
        Ok(())
    }

    /// Check: the first record matching `first` precedes the first
    /// record matching `second`.  `first_desc`/`second_desc` label the
    /// violation.
    pub fn check_happens_before(
        &self,
        first_desc: &str,
        first: impl FnMut(&TraceEvent) -> bool,
        second_desc: &str,
        second: impl FnMut(&TraceEvent) -> bool,
    ) -> Result<(), TraceViolation> {
        let violated = || TraceViolation::OrderViolated {
            first: first_desc.to_string(),
            second: second_desc.to_string(),
        };
        let a = self.first_seq(first).ok_or_else(violated)?;
        let b = self.first_seq(second).ok_or_else(violated)?;
        if a < b {
            Ok(())
        } else {
            Err(violated())
        }
    }

    /// Observed retry count for an activity: the number of
    /// `ActivityFailed` events it accumulated (each failure is followed
    /// by a dispatch of the next candidate or a replan).
    pub fn retry_count(&self, activity: &str) -> usize {
        self.count(|e| matches!(e, TraceEvent::ActivityFailed { activity: a, .. } if a == activity))
    }

    /// Check: `activity` was retried exactly `expected` times.
    pub fn check_retry_count(&self, activity: &str, expected: usize) -> Result<(), TraceViolation> {
        let observed = self.retry_count(activity);
        if observed == expected {
            Ok(())
        } else {
            Err(TraceViolation::RetryCountMismatch {
                activity: activity.to_string(),
                expected,
                observed,
            })
        }
    }

    /// Observed backoff-retry count for an activity: the number of
    /// `retry.scheduled` events the recovery layer emitted for it.
    pub fn retry_schedule_count(&self, activity: &str) -> usize {
        self.count(|e| matches!(e, TraceEvent::RetryScheduled { activity: a, .. } if a == activity))
    }

    /// Observed lease expiries for an activity.
    pub fn lease_expiry_count(&self, activity: &str) -> usize {
        self.count(|e| matches!(e, TraceEvent::LeaseExpired { activity: a, .. } if a == activity))
    }

    /// Check: every container's breaker events walk the state machine
    /// legally — `opened` only from closed or half-open, `half_open`
    /// only from open, `closed` only from half-open.  Phase boundaries
    /// (`CoordinatorCrashed`, `ResumeStarted`, a later `PhaseStarted`)
    /// reset the tracking: the resumed coordinator restores breaker
    /// state from a checkpoint taken *before* the events the trace has
    /// already shown, so post-boundary transitions start from a state
    /// the trace cannot see.
    pub fn check_breaker_discipline(&self) -> Result<(), TraceViolation> {
        // State implied by the last event seen per container;
        // "unknown" after a phase boundary, "closed" before any event.
        let mut states: BTreeMap<String, &'static str> = BTreeMap::new();
        let mut crashed = false;
        let mut started = false;
        for r in &self.records {
            let (container, to) = match &r.event {
                TraceEvent::CoordinatorCrashed { .. } | TraceEvent::ResumeStarted { .. } => {
                    states.clear();
                    crashed = true;
                    continue;
                }
                TraceEvent::PhaseStarted { .. } => {
                    // The first phase starts from pristine (closed)
                    // breakers; later phases resume from a checkpoint.
                    if started {
                        states.clear();
                        crashed = true;
                    }
                    started = true;
                    continue;
                }
                TraceEvent::BreakerOpened { container, .. } => (container, "open"),
                TraceEvent::BreakerHalfOpen { container } => (container, "half_open"),
                TraceEvent::BreakerClosed { container } => (container, "closed"),
                _ => continue,
            };
            let from = states.get(container).copied().unwrap_or(if crashed {
                "unknown"
            } else {
                "closed"
            });
            let legal = match (from, to) {
                // After a crash the restored state is invisible to the
                // trace: accept any first transition per container.
                ("unknown", _) => true,
                ("closed", "open") | ("half_open", "open") => true,
                ("open", "half_open") => true,
                ("half_open", "closed") => true,
                _ => false,
            };
            if !legal {
                return Err(TraceViolation::IllegalBreakerTransition {
                    container: container.clone(),
                    from: from.to_string(),
                    to: to.to_string(),
                    seq: r.seq,
                });
            }
            states.insert(container.clone(), to);
        }
        Ok(())
    }

    /// Check: every `transport.partitioned` event is matched by a
    /// later `transport.healed` for the same node pair (order within
    /// the pair is ignored), and no heal arrives for a pair that is
    /// not currently partitioned.
    pub fn check_partition_discipline(&self) -> Result<(), TraceViolation> {
        // Open partitions keyed by the sorted node pair → opening seq.
        let mut open: BTreeMap<(String, String), u64> = BTreeMap::new();
        for r in &self.records {
            match &r.event {
                TraceEvent::PartitionStarted { a, b, .. } => {
                    let key = if a <= b {
                        (a.clone(), b.clone())
                    } else {
                        (b.clone(), a.clone())
                    };
                    open.insert(key, r.seq);
                }
                TraceEvent::PartitionHealed { a, b } => {
                    let key = if a <= b {
                        (a.clone(), b.clone())
                    } else {
                        (b.clone(), a.clone())
                    };
                    if open.remove(&key).is_none() {
                        return Err(TraceViolation::HealWithoutPartition {
                            a: a.clone(),
                            b: b.clone(),
                            seq: r.seq,
                        });
                    }
                }
                _ => {}
            }
        }
        if let Some(((a, b), opened_seq)) = open.into_iter().next() {
            return Err(TraceViolation::UnhealedPartition { a, b, opened_seq });
        }
        Ok(())
    }

    /// Check: no activity is dispatched to a container between its
    /// `breaker.opened` and the next `breaker.half_open`/`closed` —
    /// quarantine means quarantine.  Tracking resets at phase
    /// boundaries (`CoordinatorCrashed`, `ResumeStarted`, a later
    /// `PhaseStarted`): a resumed coordinator restores breaker state
    /// from a checkpoint taken before the open the trace showed, so a
    /// post-boundary dispatch is legal.
    pub fn check_no_dispatch_while_open(&self) -> Result<(), TraceViolation> {
        let mut open: BTreeMap<String, u64> = BTreeMap::new();
        let mut started = false;
        for r in &self.records {
            match &r.event {
                TraceEvent::BreakerOpened { container, .. } => {
                    open.insert(container.clone(), r.seq);
                }
                TraceEvent::BreakerHalfOpen { container }
                | TraceEvent::BreakerClosed { container } => {
                    open.remove(container);
                }
                TraceEvent::CoordinatorCrashed { .. } | TraceEvent::ResumeStarted { .. } => {
                    open.clear()
                }
                TraceEvent::PhaseStarted { .. } => {
                    if started {
                        open.clear();
                    }
                    started = true;
                }
                TraceEvent::ActivityDispatched { container, .. } => {
                    if let Some(&opened_seq) = open.get(container) {
                        return Err(TraceViolation::DispatchWhileOpen {
                            container: container.clone(),
                            opened_seq,
                            dispatched_seq: r.seq,
                        });
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Every `case.admitted` event in trace order, flattened.
    pub fn admissions(&self) -> Vec<AdmissionRecord> {
        self.records
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::CaseAdmitted { case, tick, reason } => Some(AdmissionRecord {
                    seq: r.seq,
                    case: case.clone(),
                    tick: *tick,
                    reason: reason.clone(),
                }),
                _ => None,
            })
            .collect()
    }

    /// Case labels in admission order — the policy's observable output.
    pub fn admission_sequence(&self) -> Vec<String> {
        self.admissions().into_iter().map(|a| a.case).collect()
    }

    /// Check: admissions landing on one tick come out in non-increasing
    /// priority — a lower-priority case is never admitted ahead of a
    /// higher-priority one waiting at the same tick.  `priorities` maps
    /// case labels to their submitted priority; unlisted cases default
    /// to 0.  (When every case is submitted up front and none is
    /// refused, same-tick discipline extends to the whole sequence,
    /// since the whole queue is visible to the policy at every pick.)
    pub fn check_admission_priority(
        &self,
        priorities: &BTreeMap<String, i64>,
    ) -> Result<(), TraceViolation> {
        self.check_admission_order(|a| {
            let p = priorities.get(&a.case).copied().unwrap_or(0);
            // Negate so "later must not sort strictly smaller" means
            // "later must not have strictly higher priority".
            (-p, format!("priority={p}"))
        })
    }

    /// Check: admissions landing on one tick come out in earliest-
    /// deadline-first order.  `deadlines` maps case labels to their
    /// deadline tick; unlisted cases have no deadline and sort last.
    pub fn check_admission_deadlines(
        &self,
        deadlines: &BTreeMap<String, u64>,
    ) -> Result<(), TraceViolation> {
        self.check_admission_order(|a| {
            let d = deadlines.get(&a.case).copied();
            (
                d.unwrap_or(u64::MAX),
                match d {
                    Some(d) => format!("deadline={d}"),
                    None => "deadline=none".to_string(),
                },
            )
        })
    }

    /// Shared walk for the policy-discipline checks: `key` extracts a
    /// sort key (smaller admits first) and its rendering; any same-tick
    /// pair admitted in strictly descending-urgency order violates.
    fn check_admission_order<K: Ord>(
        &self,
        mut key: impl FnMut(&AdmissionRecord) -> (K, String),
    ) -> Result<(), TraceViolation> {
        let admissions = self.admissions();
        for pair in admissions.windows(2) {
            let (earlier, later) = (&pair[0], &pair[1]);
            if earlier.tick != later.tick {
                continue;
            }
            let (ek, edesc) = key(earlier);
            let (lk, ldesc) = key(later);
            if lk < ek {
                return Err(TraceViolation::AdmissionOrderViolated {
                    earlier: earlier.case.clone(),
                    later: later.case.clone(),
                    tick: earlier.tick,
                    detail: format!(
                        "'{}' has {}, '{}' has {}",
                        earlier.case, edesc, later.case, ldesc
                    ),
                });
            }
        }
        Ok(())
    }

    /// Number of `plan.cache_hit` events — planning requests served
    /// from the shared plan cache without a GP run.
    pub fn plan_cache_hits(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::PlanCacheHit { .. }))
    }

    /// Number of `plan.coalesced` events — planning requests that
    /// joined a same-key GP run already in flight.
    pub fn plan_coalesced(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::PlanCoalesced { .. }))
    }

    /// Number of actual GP runs observed.
    ///
    /// With a plan cache installed, every real run announces itself with
    /// a `plan.cache_miss`, so runs are counted by misses (a fully warm
    /// trace with hits only correctly counts zero).  Without any cache
    /// events, a run is identified by its generation-0 `plan.generation`
    /// event instead — sound there because only real runs emit
    /// generation history when no cache is in play.
    pub fn plan_runs(&self) -> usize {
        let has_cache_events = self.records.iter().any(|r| r.event.plan_key().is_some());
        if has_cache_events {
            self.count(|e| matches!(e, TraceEvent::PlanCacheMiss { .. }))
        } else {
            self.count(|e| matches!(e, TraceEvent::PlanGeneration { generation: 0, .. }))
        }
    }

    /// Check: no content-addressed plan key ran GP more than once (each
    /// key may miss the cache at most once; all later same-key requests
    /// must hit or coalesce).
    pub fn check_plans_at_most_once_per_key(&self) -> Result<(), TraceViolation> {
        let mut miss_seqs: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
        for r in &self.records {
            if let TraceEvent::PlanCacheMiss { key } = &r.event {
                miss_seqs.entry(key).or_default().push(r.seq);
            }
        }
        for (key, seqs) in miss_seqs {
            if seqs.len() > 1 {
                return Err(TraceViolation::DuplicatePlanRun {
                    key: key.to_string(),
                    miss_seqs: seqs,
                });
            }
        }
        Ok(())
    }

    /// Check: at no point in the trace do more cases hold a reservation
    /// on a container than the container has slots.  `capacities` maps
    /// container names to their slot counts; containers not listed
    /// default to a single slot.  Walks `slot.reserved`/`slot.released`
    /// events, maintaining the live holder set per container.
    pub fn check_no_double_booking(
        &self,
        capacities: &BTreeMap<String, usize>,
    ) -> Result<(), TraceViolation> {
        let mut holds: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for r in &self.records {
            match &r.event {
                TraceEvent::SlotReserved { case, container } => {
                    let holders = holds.entry(container).or_default();
                    holders.push(case);
                    let capacity = capacities.get(container.as_str()).copied().unwrap_or(1);
                    if holders.len() > capacity {
                        return Err(TraceViolation::DoubleBooking {
                            container: container.clone(),
                            holders: holders.iter().map(|h| h.to_string()).collect(),
                            capacity,
                            seq: r.seq,
                        });
                    }
                }
                TraceEvent::SlotReleased { case, container } => {
                    if let Some(holders) = holds.get_mut(container.as_str()) {
                        if let Some(pos) = holders.iter().position(|h| *h == case) {
                            holders.remove(pos);
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Panic if [`TraceQuery::check_no_double_dispatch`] fails.
    pub fn assert_no_double_dispatch(&self) {
        if let Err(v) = self.check_no_double_dispatch() {
            panic!("trace violation: {v}");
        }
    }

    /// Panic if [`TraceQuery::check_drops_resolved`] fails.
    pub fn assert_drops_resolved(&self) {
        if let Err(v) = self.check_drops_resolved() {
            panic!("trace violation: {v}");
        }
    }

    /// Panic if [`TraceQuery::check_happens_before`] fails.
    pub fn assert_happens_before(
        &self,
        first_desc: &str,
        first: impl FnMut(&TraceEvent) -> bool,
        second_desc: &str,
        second: impl FnMut(&TraceEvent) -> bool,
    ) {
        if let Err(v) = self.check_happens_before(first_desc, first, second_desc, second) {
            panic!("trace violation: {v}");
        }
    }

    /// Panic if [`TraceQuery::check_retry_count`] fails.
    pub fn assert_retry_count(&self, activity: &str, expected: usize) {
        if let Err(v) = self.check_retry_count(activity, expected) {
            panic!("trace violation: {v}");
        }
    }

    /// Panic if [`TraceQuery::check_breaker_discipline`] fails.
    pub fn assert_breaker_discipline(&self) {
        if let Err(v) = self.check_breaker_discipline() {
            panic!("trace violation: {v}");
        }
    }

    /// Panic if [`TraceQuery::check_partition_discipline`] fails.
    pub fn assert_partition_discipline(&self) {
        if let Err(v) = self.check_partition_discipline() {
            panic!("trace violation: {v}");
        }
    }

    /// Panic if [`TraceQuery::check_no_dispatch_while_open`] fails.
    pub fn assert_no_dispatch_while_open(&self) {
        if let Err(v) = self.check_no_dispatch_while_open() {
            panic!("trace violation: {v}");
        }
    }

    /// Panic if [`TraceQuery::check_no_double_booking`] fails.
    pub fn assert_no_double_booking(&self, capacities: &BTreeMap<String, usize>) {
        if let Err(v) = self.check_no_double_booking(capacities) {
            panic!("trace violation: {v}");
        }
    }

    /// Panic if [`TraceQuery::check_admission_priority`] fails.
    pub fn assert_admission_priority(&self, priorities: &BTreeMap<String, i64>) {
        if let Err(v) = self.check_admission_priority(priorities) {
            panic!("trace violation: {v}");
        }
    }

    /// Panic if [`TraceQuery::check_admission_deadlines`] fails.
    pub fn assert_admission_deadlines(&self, deadlines: &BTreeMap<String, u64>) {
        if let Err(v) = self.check_admission_deadlines(deadlines) {
            panic!("trace violation: {v}");
        }
    }

    /// Panic if [`TraceQuery::check_plans_at_most_once_per_key`] fails.
    pub fn assert_plans_at_most_once_per_key(&self) {
        if let Err(v) = self.check_plans_at_most_once_per_key() {
            panic!("trace violation: {v}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            tick: 0,
            at_s: 0.0,
            source: "test".into(),
            event,
        }
    }

    fn dispatched(activity: &str) -> TraceEvent {
        TraceEvent::ActivityDispatched {
            activity: activity.into(),
            service: "svc".into(),
            container: "c".into(),
            attempt: 0,
        }
    }

    fn completed(activity: &str) -> TraceEvent {
        TraceEvent::ActivityCompleted {
            activity: activity.into(),
            service: "svc".into(),
            container: "c".into(),
            duration_s: 1.0,
            cost: 1.0,
        }
    }

    fn failed(activity: &str, attempt: usize) -> TraceEvent {
        TraceEvent::ActivityFailed {
            activity: activity.into(),
            service: "svc".into(),
            container: "c".into(),
            attempt,
        }
    }

    #[test]
    fn span_covers_dispatch_to_completion() {
        let q = TraceQuery::new(vec![
            rec(0, dispatched("A1")),
            rec(1, failed("A1", 0)),
            rec(2, completed("A1")),
        ]);
        assert_eq!(q.span("A1").unwrap(), 0..3);
        assert!(matches!(
            q.span("A2"),
            Err(TraceViolation::MissingSpan { .. })
        ));
    }

    #[test]
    fn double_dispatch_is_caught() {
        let ok = TraceQuery::new(vec![
            rec(0, dispatched("A1")),
            rec(1, failed("A1", 0)),
            rec(2, dispatched("A1")), // retry before completion: fine
            rec(3, completed("A1")),
        ]);
        ok.assert_no_double_dispatch();

        let bad = TraceQuery::new(vec![
            rec(0, dispatched("A1")),
            rec(1, completed("A1")),
            rec(2, dispatched("A1")), // after completion: double dispatch
        ]);
        match bad.check_no_double_dispatch() {
            Err(TraceViolation::DoubleDispatch {
                activity,
                completed_seq,
                redispatched_seq,
            }) => {
                assert_eq!(activity, "A1");
                assert_eq!((completed_seq, redispatched_seq), (1, 2));
            }
            other => panic!("expected DoubleDispatch, got {other:?}"),
        }
    }

    #[test]
    fn crash_forgives_only_post_checkpoint_completions() {
        let checkpoint = |index| TraceEvent::CheckpointCaptured {
            index,
            executions: index + 1,
        };
        let crash = TraceEvent::CoordinatorCrashed {
            after_checkpoints: 0,
        };
        // A2 completed after checkpoint 0 and was lost with the crash:
        // re-dispatching it is recovery, not a violation.
        let recovered = TraceQuery::new(vec![
            rec(0, completed("A1")),
            rec(1, checkpoint(0)),
            rec(2, completed("A2")),
            rec(3, checkpoint(1)),
            rec(4, crash.clone()),
            rec(5, dispatched("A2")),
        ]);
        recovered.assert_no_double_dispatch();
        // A1 was checkpointed before the crash: re-dispatching it after
        // resume is still a double dispatch.
        let bad = TraceQuery::new(vec![
            rec(0, completed("A1")),
            rec(1, checkpoint(0)),
            rec(2, crash),
            rec(3, dispatched("A1")),
        ]);
        assert!(matches!(
            bad.check_no_double_dispatch(),
            Err(TraceViolation::DoubleDispatch { .. })
        ));
    }

    #[test]
    fn unresolved_drop_and_wrong_answer_are_caught() {
        let dropped = TraceEvent::MessageDropped {
            id: 5,
            sender: "a".into(),
            receiver: "b".into(),
        };
        let unresolved = TraceQuery::new(vec![rec(0, dropped.clone())]);
        assert!(matches!(
            unresolved.check_drops_resolved(),
            Err(TraceViolation::UnresolvedDrop { message_id: 5, .. })
        ));

        let resolved = TraceQuery::new(vec![
            rec(0, dropped),
            rec(1, TraceEvent::RequestTimedOut { agent: "b".into() }),
        ]);
        resolved.assert_drops_resolved();

        let wrong = TraceQuery::new(vec![rec(
            0,
            TraceEvent::RequestAnswered {
                agent: "b".into(),
                correct: false,
            },
        )]);
        assert!(matches!(
            wrong.check_drops_resolved(),
            Err(TraceViolation::WrongAnswer { .. })
        ));
    }

    #[test]
    fn happens_before_orders_first_matches() {
        let q = TraceQuery::new(vec![rec(0, dispatched("A1")), rec(1, completed("A1"))]);
        q.assert_happens_before(
            "dispatch",
            |e| matches!(e, TraceEvent::ActivityDispatched { .. }),
            "completion",
            |e| matches!(e, TraceEvent::ActivityCompleted { .. }),
        );
        assert!(q
            .check_happens_before(
                "completion",
                |e| matches!(e, TraceEvent::ActivityCompleted { .. }),
                "dispatch",
                |e| matches!(e, TraceEvent::ActivityDispatched { .. }),
            )
            .is_err());
        // Missing events also violate the ordering.
        assert!(q
            .check_happens_before(
                "dispatch",
                |e| matches!(e, TraceEvent::ActivityDispatched { .. }),
                "replan",
                |e| matches!(e, TraceEvent::ReplanTriggered { .. }),
            )
            .is_err());
    }

    fn opened(container: &str) -> TraceEvent {
        TraceEvent::BreakerOpened {
            container: container.into(),
            consecutive_failures: 3,
            until_tick: 100,
        }
    }

    fn half_open(container: &str) -> TraceEvent {
        TraceEvent::BreakerHalfOpen {
            container: container.into(),
        }
    }

    fn closed(container: &str) -> TraceEvent {
        TraceEvent::BreakerClosed {
            container: container.into(),
        }
    }

    fn dispatched_on(activity: &str, container: &str) -> TraceEvent {
        TraceEvent::ActivityDispatched {
            activity: activity.into(),
            service: "svc".into(),
            container: container.into(),
            attempt: 0,
        }
    }

    #[test]
    fn breaker_discipline_accepts_legal_walks() {
        let q = TraceQuery::new(vec![
            rec(0, opened("c1")),
            rec(1, half_open("c1")),
            rec(2, opened("c1")), // failed probe reopens
            rec(3, half_open("c1")),
            rec(4, closed("c1")),
            rec(5, opened("c2")), // independent containers
        ]);
        q.assert_breaker_discipline();
    }

    #[test]
    fn breaker_discipline_rejects_skipped_states() {
        // closed straight from open (no half-open probe) is illegal.
        let bad = TraceQuery::new(vec![rec(0, opened("c1")), rec(1, closed("c1"))]);
        match bad.check_breaker_discipline() {
            Err(TraceViolation::IllegalBreakerTransition {
                container,
                from,
                to,
                seq,
            }) => {
                assert_eq!(
                    (container.as_str(), from.as_str(), to.as_str()),
                    ("c1", "open", "closed")
                );
                assert_eq!(seq, 1);
            }
            other => panic!("expected IllegalBreakerTransition, got {other:?}"),
        }
        // half_open without a preceding open is illegal too…
        let bad = TraceQuery::new(vec![rec(0, half_open("c1"))]);
        assert!(bad.check_breaker_discipline().is_err());
        // …unless a crash wiped the trace-visible state first.
        let crashed = TraceQuery::new(vec![
            rec(
                0,
                TraceEvent::CoordinatorCrashed {
                    after_checkpoints: 0,
                },
            ),
            rec(1, half_open("c1")),
        ]);
        crashed.assert_breaker_discipline();
    }

    #[test]
    fn dispatch_while_open_is_caught_and_cleared_by_readmission() {
        let bad = TraceQuery::new(vec![
            rec(0, opened("c1")),
            rec(1, dispatched_on("A1", "c1")),
        ]);
        assert!(matches!(
            bad.check_no_dispatch_while_open(),
            Err(TraceViolation::DispatchWhileOpen {
                opened_seq: 0,
                dispatched_seq: 1,
                ..
            })
        ));
        let ok = TraceQuery::new(vec![
            rec(0, opened("c1")),
            rec(1, dispatched_on("A1", "c2")), // other containers unaffected
            rec(2, half_open("c1")),
            rec(3, dispatched_on("A1", "c1")), // probe after readmission
        ]);
        ok.assert_no_dispatch_while_open();
    }

    #[test]
    fn retry_schedule_and_lease_expiry_counts() {
        let q = TraceQuery::new(vec![
            rec(
                0,
                TraceEvent::RetryScheduled {
                    activity: "A1".into(),
                    service: "svc".into(),
                    container: "c1".into(),
                    attempt: 1,
                    backoff_ticks: 2,
                    resume_tick: 5,
                },
            ),
            rec(
                1,
                TraceEvent::LeaseExpired {
                    activity: "A1".into(),
                    container: "c1".into(),
                    lease_ticks: 30,
                    took_ticks: 90,
                },
            ),
            rec(
                2,
                TraceEvent::RetryScheduled {
                    activity: "A1".into(),
                    service: "svc".into(),
                    container: "c1".into(),
                    attempt: 2,
                    backoff_ticks: 4,
                    resume_tick: 99,
                },
            ),
        ]);
        assert_eq!(q.retry_schedule_count("A1"), 2);
        assert_eq!(q.retry_schedule_count("A2"), 0);
        assert_eq!(q.lease_expiry_count("A1"), 1);
    }

    fn reserved(case: &str, container: &str) -> TraceEvent {
        TraceEvent::SlotReserved {
            case: case.into(),
            container: container.into(),
        }
    }

    fn released(case: &str, container: &str) -> TraceEvent {
        TraceEvent::SlotReleased {
            case: case.into(),
            container: container.into(),
        }
    }

    #[test]
    fn double_booking_is_caught_against_capacities() {
        // One slot on c1 (the default): serialized holds are fine…
        let ok = TraceQuery::new(vec![
            rec(0, reserved("case-0", "c1")),
            rec(1, released("case-0", "c1")),
            rec(2, reserved("case-1", "c1")),
            rec(3, released("case-1", "c1")),
        ]);
        ok.assert_no_double_booking(&BTreeMap::new());

        // …but two live holders on a single-slot container are not.
        let bad = TraceQuery::new(vec![
            rec(0, reserved("case-0", "c1")),
            rec(1, reserved("case-1", "c1")),
        ]);
        match bad.check_no_double_booking(&BTreeMap::new()) {
            Err(TraceViolation::DoubleBooking {
                container,
                holders,
                capacity,
                seq,
            }) => {
                assert_eq!(container, "c1");
                assert_eq!(holders, vec!["case-0".to_string(), "case-1".to_string()]);
                assert_eq!((capacity, seq), (1, 1));
            }
            other => panic!("expected DoubleBooking, got {other:?}"),
        }

        // A declared two-slot container admits both holders.
        let caps = BTreeMap::from([("c1".to_string(), 2)]);
        bad.assert_no_double_booking(&caps);
        let msg = bad
            .check_no_double_booking(&BTreeMap::new())
            .unwrap_err()
            .to_string();
        assert!(msg.contains("double booking"), "{msg}");
    }

    fn admitted(case: &str, tick: u64, reason: Option<&str>) -> TraceEvent {
        TraceEvent::CaseAdmitted {
            case: case.into(),
            tick,
            reason: reason.map(str::to_string),
        }
    }

    #[test]
    fn admissions_flatten_in_trace_order() {
        let q = TraceQuery::new(vec![
            rec(0, admitted("a", 0, None)),
            rec(1, dispatched("A1")),
            rec(2, admitted("b", 1, Some("priority=3"))),
        ]);
        let adm = q.admissions();
        assert_eq!(adm.len(), 2);
        assert_eq!(adm[0].case, "a");
        assert_eq!(adm[0].reason, None);
        assert_eq!(adm[1].tick, 1);
        assert_eq!(adm[1].reason.as_deref(), Some("priority=3"));
        assert_eq!(q.admission_sequence(), vec!["a".to_string(), "b".into()]);
    }

    #[test]
    fn admission_priority_discipline_is_same_tick_only() {
        let priorities = BTreeMap::from([("hi".to_string(), 5i64), ("lo".to_string(), 1)]);
        // Same tick, high first: fine.
        let ok = TraceQuery::new(vec![
            rec(0, admitted("hi", 0, None)),
            rec(1, admitted("lo", 0, None)),
        ]);
        ok.assert_admission_priority(&priorities);
        // Same tick, low first: violation.
        let bad = TraceQuery::new(vec![
            rec(0, admitted("lo", 0, None)),
            rec(1, admitted("hi", 0, None)),
        ]);
        match bad.check_admission_priority(&priorities) {
            Err(TraceViolation::AdmissionOrderViolated { earlier, later, .. }) => {
                assert_eq!((earlier.as_str(), later.as_str()), ("lo", "hi"));
            }
            other => panic!("expected AdmissionOrderViolated, got {other:?}"),
        }
        // Different ticks: a late-arriving high-priority case admitting
        // after an earlier low one is legal (it wasn't waiting yet).
        let staggered = TraceQuery::new(vec![
            rec(0, admitted("lo", 0, None)),
            rec(1, admitted("hi", 1, None)),
        ]);
        staggered.assert_admission_priority(&priorities);
    }

    #[test]
    fn admission_deadline_discipline_is_edf_with_none_last() {
        let deadlines = BTreeMap::from([("soon".to_string(), 10u64), ("late".to_string(), 90)]);
        let ok = TraceQuery::new(vec![
            rec(0, admitted("soon", 0, None)),
            rec(1, admitted("late", 0, None)),
            rec(2, admitted("never", 0, None)), // no deadline sorts last
        ]);
        ok.assert_admission_deadlines(&deadlines);
        let bad = TraceQuery::new(vec![
            rec(0, admitted("never", 0, None)),
            rec(1, admitted("soon", 0, None)),
        ]);
        let msg = bad
            .check_admission_deadlines(&deadlines)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("against the admission policy"), "{msg}");
    }

    #[test]
    fn retry_count_counts_failures() {
        let q = TraceQuery::new(vec![
            rec(0, dispatched("A1")),
            rec(1, failed("A1", 0)),
            rec(2, dispatched("A1")),
            rec(3, failed("A1", 1)),
            rec(4, dispatched("A1")),
            rec(5, completed("A1")),
        ]);
        assert_eq!(q.retry_count("A1"), 2);
        q.assert_retry_count("A1", 2);
        assert!(matches!(
            q.check_retry_count("A1", 1),
            Err(TraceViolation::RetryCountMismatch {
                expected: 1,
                observed: 2,
                ..
            })
        ));
    }

    fn generation0() -> TraceEvent {
        TraceEvent::PlanGeneration {
            generation: 0,
            best_overall: 1.0,
            mean_overall: 0.5,
            mean_size: 3.0,
        }
    }

    #[test]
    fn plan_cache_counters_and_run_counting() {
        // With cache events: runs are counted by misses, even when
        // replayed generation-0 events accompany every hit.
        let q = TraceQuery::new(vec![
            rec(0, TraceEvent::PlanCacheMiss { key: "k1".into() }),
            rec(1, generation0()),
            rec(2, TraceEvent::PlanCacheHit { key: "k1".into() }),
            rec(3, generation0()),
            rec(4, TraceEvent::PlanCoalesced { key: "k1".into() }),
            rec(5, generation0()),
        ]);
        assert_eq!(q.plan_cache_hits(), 1);
        assert_eq!(q.plan_coalesced(), 1);
        assert_eq!(q.plan_runs(), 1);
        q.assert_plans_at_most_once_per_key();

        // Fully warm trace: hits only, zero actual runs.
        let warm = TraceQuery::new(vec![
            rec(0, TraceEvent::PlanCacheHit { key: "k1".into() }),
            rec(1, generation0()),
        ]);
        assert_eq!(warm.plan_runs(), 0);

        // No cache events: fall back to generation-0 counting.
        let uncached = TraceQuery::new(vec![rec(0, generation0()), rec(1, generation0())]);
        assert_eq!(uncached.plan_runs(), 2);
        assert_eq!(uncached.plan_cache_hits(), 0);
        uncached.assert_plans_at_most_once_per_key();
    }

    #[test]
    fn duplicate_plan_runs_are_flagged_per_key() {
        let q = TraceQuery::new(vec![
            rec(0, TraceEvent::PlanCacheMiss { key: "k1".into() }),
            rec(1, TraceEvent::PlanCacheMiss { key: "k2".into() }),
            rec(2, TraceEvent::PlanCacheMiss { key: "k1".into() }),
        ]);
        assert_eq!(q.plan_runs(), 3);
        match q.check_plans_at_most_once_per_key() {
            Err(TraceViolation::DuplicatePlanRun { key, miss_seqs }) => {
                assert_eq!(key, "k1");
                assert_eq!(miss_seqs, vec![0, 2]);
            }
            other => panic!("expected DuplicatePlanRun, got {other:?}"),
        }
    }
}
