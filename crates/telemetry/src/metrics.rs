//! Metrics derived from traces: counters and virtual-time histograms.
//!
//! A [`MetricsRegistry`] is built *from* a trace (never sampled live),
//! so it inherits the trace's determinism: identical seeds produce
//! identical registries.  Latency histograms bucket virtual durations —
//! the simulated `duration_s` carried by `ActivityCompleted` events —
//! not wall time.

use crate::event::{TraceEvent, TraceRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Fixed bucket upper bounds (virtual seconds) for latency histograms.
/// The last implicit bucket is `+inf`.
pub const LATENCY_BUCKETS_S: [f64; 8] = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// A fixed-bucket histogram over virtual durations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Counts per bucket of [`LATENCY_BUCKETS_S`], plus one overflow
    /// bucket at the end.
    pub buckets: Vec<u64>,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (virtual seconds).
    pub sum_s: f64,
    /// Smallest observation.
    pub min_s: f64,
    /// Largest observation.
    pub max_s: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; LATENCY_BUCKETS_S.len() + 1],
            count: 0,
            sum_s: 0.0,
            min_s: f64::INFINITY,
            max_s: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Record one virtual duration.
    pub fn observe(&mut self, v: f64) {
        let idx = LATENCY_BUCKETS_S
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(LATENCY_BUCKETS_S.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_s += v;
        self.min_s = self.min_s.min(v);
        self.max_s = self.max_s.max(v);
    }

    /// Mean observation, or `None` if empty.
    pub fn mean_s(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_s / self.count as f64)
    }
}

/// Counters and latency histograms aggregated from a trace.
///
/// Counter keys are event labels (`"message.dropped"`,
/// `"activity.completed"`, …) plus per-service derivatives
/// (`"service.cook.completed"`, `"service.cook.failed"`) and
/// per-transition-kind counts (`"transition.Fork"`).  Histogram keys
/// are `"latency.<service>"`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    /// Monotone event counters, keyed as described above.
    pub counters: BTreeMap<String, u64>,
    /// Virtual-time latency histograms per service.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Aggregate a registry from trace records.
    pub fn from_trace(records: &[TraceRecord]) -> Self {
        let mut m = MetricsRegistry::default();
        for r in records {
            m.count(r.event.label());
            match &r.event {
                TraceEvent::ActivityCompleted {
                    service,
                    duration_s,
                    ..
                } => {
                    m.count(&format!("service.{service}.completed"));
                    m.histograms
                        .entry(format!("latency.{service}"))
                        .or_default()
                        .observe(*duration_s);
                }
                TraceEvent::ActivityFailed { service, .. } => {
                    m.count(&format!("service.{service}.failed"));
                }
                TraceEvent::TransitionFired { kind, .. } => {
                    m.count(&format!("transition.{kind}"));
                }
                _ => {}
            }
        }
        m
    }

    fn count(&mut self, key: &str) {
        *self.counters.entry(key.to_string()).or_insert(0) += 1;
    }

    /// A counter's value (0 if never incremented).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// A latency histogram by service name, if any completions were
    /// observed for it.
    pub fn latency(&self, service: &str) -> Option<&Histogram> {
        self.histograms.get(&format!("latency.{service}"))
    }

    /// Fraction of sent messages that a fault decision touched
    /// (dropped, duplicated, or delayed); `0.0` when nothing was sent.
    pub fn message_fault_ratio(&self) -> f64 {
        let sent = self.counter("message.sent");
        if sent == 0 {
            return 0.0;
        }
        let faulted = self.counter("message.dropped")
            + self.counter("message.duplicated")
            + self.counter("message.delayed");
        faulted as f64 / sent as f64
    }

    /// A compact multi-line rendering (sorted keys, stable across runs)
    /// for logs and CI artifacts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k} = {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k}: count={} sum={:.3}s min={:.3}s max={:.3}s\n",
                h.count, h.sum_s, h.min_s, h.max_s
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(event: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq: 0,
            tick: 0,
            at_s: 0.0,
            source: "test".into(),
            event,
        }
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        h.observe(0.4);
        h.observe(3.0);
        h.observe(100.0);
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1); // 0.4 <= 0.5
        assert_eq!(h.buckets[3], 1); // 3.0 <= 4.0
        assert_eq!(*h.buckets.last().unwrap(), 1); // overflow
        assert_eq!(h.min_s, 0.4);
        assert_eq!(h.max_s, 100.0);
        assert!((h.mean_s().unwrap() - 34.466_666).abs() < 1e-3);
    }

    #[test]
    fn registry_aggregates_counters_and_latency() {
        let recs = vec![
            rec(TraceEvent::ActivityCompleted {
                activity: "A1".into(),
                service: "cook".into(),
                container: "ac-h2".into(),
                duration_s: 2.0,
                cost: 1.0,
            }),
            rec(TraceEvent::ActivityFailed {
                activity: "A1".into(),
                service: "cook".into(),
                container: "ac-h3".into(),
                attempt: 0,
            }),
            rec(TraceEvent::TransitionFired {
                kind: "Fork".into(),
                node: "F1".into(),
            }),
        ];
        let m = MetricsRegistry::from_trace(&recs);
        assert_eq!(m.counter("activity.completed"), 1);
        assert_eq!(m.counter("service.cook.completed"), 1);
        assert_eq!(m.counter("service.cook.failed"), 1);
        assert_eq!(m.counter("transition.Fork"), 1);
        assert_eq!(m.latency("cook").unwrap().count, 1);
        assert!(m.latency("plate").is_none());
        assert_eq!(m.counter("never"), 0);
    }

    #[test]
    fn fault_ratio_counts_touched_messages() {
        let mk = |event| rec(event);
        let recs = vec![
            mk(TraceEvent::MessageSent {
                id: 1,
                performative: "request".into(),
                sender: "a".into(),
                receiver: "b".into(),
                in_reply_to: None,
            }),
            mk(TraceEvent::MessageSent {
                id: 2,
                performative: "request".into(),
                sender: "a".into(),
                receiver: "b".into(),
                in_reply_to: None,
            }),
            mk(TraceEvent::MessageDropped {
                id: 2,
                sender: "a".into(),
                receiver: "b".into(),
            }),
        ];
        let m = MetricsRegistry::from_trace(&recs);
        assert_eq!(m.message_fault_ratio(), 0.5);
        assert_eq!(MetricsRegistry::default().message_fault_ratio(), 0.0);
    }

    #[test]
    fn render_is_stable_and_sorted() {
        let recs = vec![rec(TraceEvent::TransitionFired {
            kind: "Join".into(),
            node: "J1".into(),
        })];
        let m = MetricsRegistry::from_trace(&recs);
        let text = m.render();
        assert!(text.contains("transition.Join = 1"));
        assert_eq!(text, MetricsRegistry::from_trace(&recs).render());
    }
}
