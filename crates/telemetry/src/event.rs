//! The typed event vocabulary of the telemetry layer.
//!
//! One [`TraceEvent`] describes one thing that *happened* somewhere in
//! the stack — a message routed (or dropped), an activity dispatched, a
//! flow-control transition fired, a checkpoint captured, a fault
//! injected.  Events carry only simulation-derived data (virtual
//! durations, seeded decisions), never wall-clock readings, so a
//! serialized log replays byte-identically.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// An interned trace-source label (`"enactor"`, `"case:dinner-3/enactor"`,
/// …).
///
/// A merged multi-case trace repeats the same handful of source strings
/// hundreds of thousands of times; storing each record's source as an
/// owned `String` made every emission allocate.  `Label` wraps an
/// `Arc<str>` so the sink can intern each distinct source once and stamp
/// records with a reference-counted clone — no allocation on the hot
/// emit path.
///
/// The type is string-shaped everywhere it matters: it derefs to `str`,
/// compares against `&str`/`String`, displays as the bare string, and
/// serializes as a plain JSON string — so JSONL dumps are byte-identical
/// to the previous `String` representation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(Arc<str>);

impl Label {
    /// Intern `s` as a label (one allocation; clones are free).
    pub fn new(s: &str) -> Self {
        Label(Arc::from(s))
    }

    /// The label's text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for Label {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Label {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::borrow::Borrow<str> for Label {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label(Arc::from(s))
    }
}

impl From<&String> for Label {
    fn from(s: &String) -> Self {
        Label::new(s)
    }
}

impl PartialEq<str> for Label {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Label {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Label {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<Label> for str {
    fn eq(&self, other: &Label) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Label> for &str {
    fn eq(&self, other: &Label) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Label> for String {
    fn eq(&self, other: &Label) -> bool {
        self == other.as_str()
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::fmt::Debug for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&*self.0, f)
    }
}

impl Serialize for Label {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::String(self.0.to_string())
    }
}

impl Deserialize for Label {
    fn from_json_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        v.as_str()
            .map(Label::new)
            .ok_or_else(|| serde::Error::custom(format!("expected string label, got {v:?}")))
    }
}

/// One thing that happened during a run.
///
/// Grouped by emitting layer: the agent substrate (`Message*`,
/// `Request*`), the coordination enactor (`Enactment*`, `Activity*`,
/// `TransitionFired`, `CheckpointCaptured`, `Replan*`), the planning
/// service (`PlanGeneration`), and the scenario runner (`PhaseStarted`,
/// `NodeLost`, `CoordinatorCrashed`, `ResumeStarted`).
///
/// Serializes externally tagged — `{"MessageSent": {...}}` — the
/// vendored serde's (and serde's default) enum representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    // ------------------------------------------------ agent substrate
    /// A message entered the directory's delivery path.
    MessageSent {
        /// Message id (correlation anchor).
        id: u64,
        /// FIPA performative, rendered (`"request"`, `"inform"`, …).
        performative: String,
        /// Sending agent.
        sender: String,
        /// Receiving agent.
        receiver: String,
        /// For replies: the id of the message being answered.
        in_reply_to: Option<u64>,
    },
    /// A message reached its receiver's mailbox.
    MessageDelivered {
        /// Message id.
        id: u64,
        /// Receiving agent.
        receiver: String,
    },
    /// The fault-injecting transport swallowed a message.
    MessageDropped {
        /// Message id.
        id: u64,
        /// Sending agent.
        sender: String,
        /// Receiving agent.
        receiver: String,
    },
    /// The fault-injecting transport delivered a message twice.
    MessageDuplicated {
        /// Message id.
        id: u64,
        /// Sending agent.
        sender: String,
        /// Receiving agent.
        receiver: String,
    },
    /// The fault-injecting transport held a message back.
    MessageDelayed {
        /// Message id.
        id: u64,
        /// Sending agent.
        sender: String,
        /// Receiving agent.
        receiver: String,
        /// Tick at which the message re-enters the stream.
        until_tick: u64,
    },
    /// A previously delayed message re-entered the delivery stream.
    MessageReleased {
        /// Message id.
        id: u64,
        /// Receiving agent.
        receiver: String,
    },
    /// A synchronous request timed out (recorded by the driver that
    /// observed the timeout — cause sits next to effect in the log).
    RequestTimedOut {
        /// The agent that failed to answer in time.
        agent: String,
    },
    /// A synchronous request was answered.
    RequestAnswered {
        /// The answering agent.
        agent: String,
        /// Did the reply carry a correct result (driver-checked)?
        correct: bool,
    },

    // ------------------------------------------------ enactment
    /// An enactment began.
    EnactmentStarted {
        /// Workflow (process graph) name.
        workflow: String,
        /// Was this a resume from a checkpoint?
        resumed: bool,
    },
    /// An activity was handed to a container for execution (one event
    /// per candidate attempt).
    ActivityDispatched {
        /// Activity id in the process graph.
        activity: String,
        /// Service executed.
        service: String,
        /// Candidate container.
        container: String,
        /// Attempt index within this execution (0 = first candidate).
        attempt: usize,
    },
    /// An activity execution succeeded.
    ActivityCompleted {
        /// Activity id.
        activity: String,
        /// Service executed.
        service: String,
        /// Container it ran on.
        container: String,
        /// Virtual duration (seconds).
        duration_s: f64,
        /// Market cost.
        cost: f64,
    },
    /// An activity execution failed on a container (the enactor retries
    /// the next candidate, so a `Failed` followed by a `Dispatched` for
    /// the same activity *is* the retry).
    ActivityFailed {
        /// Activity id.
        activity: String,
        /// Service executed.
        service: String,
        /// Container that failed.
        container: String,
        /// Attempt index within this execution.
        attempt: usize,
    },
    // ------------------------------------------------ recovery layer
    /// The recovery layer scheduled a backoff retry on the same
    /// candidate (the wait elapses on the virtual clock, never wall
    /// time).
    RetryScheduled {
        /// Activity id.
        activity: String,
        /// Service executed.
        service: String,
        /// Candidate container being retried.
        container: String,
        /// Attempt index the retry will carry.
        attempt: usize,
        /// Backoff length, in virtual ticks.
        backoff_ticks: u64,
        /// Recovery-clock tick at which the retry dispatches.
        resume_tick: u64,
    },
    /// A dispatched execution was granted a tick-deadline lease.
    LeaseGranted {
        /// Activity id.
        activity: String,
        /// Container executing it.
        container: String,
        /// Lease length, in virtual ticks.
        lease_ticks: u64,
        /// Recovery-clock tick at which the lease expires.
        deadline_tick: u64,
    },
    /// An execution outlived its lease: its result is discarded and the
    /// attempt counts as a failure.
    LeaseExpired {
        /// Activity id.
        activity: String,
        /// Container that overran.
        container: String,
        /// Lease length that was granted, in virtual ticks.
        lease_ticks: u64,
        /// Ticks the execution actually took.
        took_ticks: u64,
    },
    /// A container's circuit breaker tripped open: the container is
    /// quarantined from matchmaking until its cooldown elapses.
    BreakerOpened {
        /// Quarantined container.
        container: String,
        /// Consecutive failures that tripped it.
        consecutive_failures: usize,
        /// Recovery-clock tick at which the cooldown ends.
        until_tick: u64,
    },
    /// An open breaker served its cooldown and now admits one probe.
    BreakerHalfOpen {
        /// Probing container.
        container: String,
    },
    /// A half-open probe succeeded: the container is readmitted.
    BreakerClosed {
        /// Readmitted container.
        container: String,
    },

    /// A flow-control node of the ATN fired (Begin, End, Fork, Join,
    /// Choice, Merge — ITERATIVE loops lower to Choice/Merge pairs, so
    /// loop iterations show as repeated Merge/Choice firings).
    TransitionFired {
        /// Node kind (`"Fork"`, `"Join"`, `"Choice"`, `"Merge"`,
        /// `"Begin"`, `"End"`).
        kind: String,
        /// Node id in the process graph.
        node: String,
    },
    /// A resumable checkpoint was captured.
    CheckpointCaptured {
        /// Index of the checkpoint within this report (0-based).
        index: usize,
        /// Successful executions covered by the checkpoint.
        executions: usize,
    },
    /// An enactment resumed from a checkpoint.
    ResumeStarted {
        /// Phase index (1 = first resume).
        phase: usize,
        /// Executions already completed before the resume.
        completed_executions: usize,
    },
    /// Every candidate failed for an activity and the enactor escalated
    /// to the planning service.
    ReplanTriggered {
        /// Activity whose failure triggered the escalation.
        activity: String,
        /// Its service.
        service: String,
        /// Services excluded from the new plan.
        excluded: Vec<String>,
        /// Re-planning round (1-based).
        round: usize,
    },
    /// The re-planned graph was installed (or rejected).
    ReplanInstalled {
        /// Was the fresh plan viable (perfect fitness)?
        viable: bool,
    },
    /// One GP generation completed inside the planning service.
    PlanGeneration {
        /// Generation index (0-based).
        generation: usize,
        /// Overall fitness of the generation's best individual.
        best_overall: f64,
        /// Mean overall fitness of the population.
        mean_overall: f64,
        /// Mean plan-tree size of the population.
        mean_size: f64,
    },
    /// A planning request was served from the shared plan cache: the GP
    /// run was skipped and the cached (byte-identical) plan reused.
    PlanCacheHit {
        /// Content-addressed plan key (32 lowercase hex digits).
        key: String,
    },
    /// A planning request missed the shared plan cache; a fresh GP run
    /// follows and its result will populate the cache.
    PlanCacheMiss {
        /// Content-addressed plan key (32 lowercase hex digits).
        key: String,
    },
    /// A planning request found a same-key GP run already in flight and
    /// coalesced onto it (single-flight), reusing its result instead of
    /// starting another run.
    PlanCoalesced {
        /// Content-addressed plan key (32 lowercase hex digits).
        key: String,
    },
    /// An enactment ended.
    EnactmentFinished {
        /// Did the workflow reach End with all case goals met?
        success: bool,
        /// Why it aborted, if it did.
        abort_reason: Option<String>,
    },

    // ------------------------------------------------ scenario runner
    /// A scenario phase began (phase 0 = initial run, ≥1 = resumes).
    PhaseStarted {
        /// Phase index.
        phase: usize,
    },
    /// A scripted node loss struck.
    NodeLost {
        /// Container taken down.
        container: String,
        /// Execution-history length at which the loss fired.
        after_executions: usize,
    },
    /// The scripted coordinator crash was applied: everything past the
    /// chosen checkpoint is discarded.
    CoordinatorCrashed {
        /// The checkpoint index the run was cut at.
        after_checkpoints: usize,
    },
    /// Free-form driver annotation (kept out of invariant checks).
    Custom {
        /// Short machine-matchable label.
        label: String,
        /// Human-readable detail.
        detail: String,
    },

    // ------------------------------------------------ multi-case engine
    /// The case scheduler began a new virtual tick.
    TickStarted {
        /// Scheduler tick index (0-based).
        tick: u64,
    },
    /// Admission control accepted a case into the running set.
    CaseAdmitted {
        /// The case's label in the scheduler.
        case: String,
        /// Tick at which it was admitted.
        tick: u64,
        /// Why the admission policy picked this case now (e.g.
        /// `"priority=3"`), when a non-FIFO policy is active.  `None`
        /// under FIFO, and omitted from the serialized event so legacy
        /// FIFO traces stay byte-identical.
        #[serde(skip_serializing_if = "Option::is_none")]
        reason: Option<String>,
    },
    /// Admission control rejected a case outright (it never runs).
    CaseRejected {
        /// The case's label in the scheduler.
        case: String,
        /// Why admission refused it.
        reason: String,
    },
    /// A case could not make progress this tick because every candidate
    /// container it matched was already reserved (busy ≠ broken: no
    /// failure is recorded, the case retries next tick).
    CaseBlocked {
        /// The blocked case's label.
        case: String,
        /// The service it was trying to dispatch.
        service: String,
    },
    /// A case left the running set with a final report.
    CaseCompleted {
        /// The case's label in the scheduler.
        case: String,
        /// Did its enactment succeed?
        success: bool,
    },
    /// A case reserved a container slot for the current tick.
    SlotReserved {
        /// The reserving case's label.
        case: String,
        /// The reserved container.
        container: String,
    },
    /// A tick-scoped container reservation was released.
    SlotReleased {
        /// The case that held the slot.
        case: String,
        /// The released container.
        container: String,
    },

    // ------------------------------------------ transport substrate
    /// The chaos middleware held a message back so its successor would
    /// overtake it (an explicit swap, distinct from a tick delay).
    MessageReordered {
        /// Message id.
        id: u64,
        /// Sending agent.
        sender: String,
        /// Receiving agent.
        receiver: String,
    },
    /// A scheduled network partition opened between two endpoints:
    /// traffic crossing the pair is dropped until the heal.
    PartitionStarted {
        /// One side of the partitioned pair.
        a: String,
        /// The other side.
        b: String,
        /// Tick at which the partition is scheduled to heal.
        heal_tick: u64,
    },
    /// A scheduled network partition healed: traffic between the pair
    /// flows again.
    PartitionHealed {
        /// One side of the healed pair.
        a: String,
        /// The other side.
        b: String,
    },

    // ------------------------------------------ service wake substrate
    /// A cold service was woken on demand.  Concurrent requests during
    /// the wake coalesce: exactly one event fires per cold→running
    /// transition, carrying how many requesters shared it.
    ServiceWoken {
        /// The woken service (container or agent name).
        service: String,
        /// Requesters that coalesced onto this single wake (≥ 1).
        waiters: usize,
    },
    /// An idle service was put back to sleep by the idle-timeout reaper.
    ServiceSlept {
        /// The slept service.
        service: String,
        /// Ticks it sat idle before the reaper fired.
        idle_ticks: u64,
    },
}

impl TraceEvent {
    /// The activity id this event concerns, if any.
    pub fn activity(&self) -> Option<&str> {
        match self {
            TraceEvent::ActivityDispatched { activity, .. }
            | TraceEvent::ActivityCompleted { activity, .. }
            | TraceEvent::ActivityFailed { activity, .. }
            | TraceEvent::RetryScheduled { activity, .. }
            | TraceEvent::LeaseGranted { activity, .. }
            | TraceEvent::LeaseExpired { activity, .. }
            | TraceEvent::ReplanTriggered { activity, .. } => Some(activity),
            _ => None,
        }
    }

    /// The scheduler case label this event concerns, if any.
    pub fn case_label(&self) -> Option<&str> {
        match self {
            TraceEvent::CaseAdmitted { case, .. }
            | TraceEvent::CaseRejected { case, .. }
            | TraceEvent::CaseBlocked { case, .. }
            | TraceEvent::CaseCompleted { case, .. }
            | TraceEvent::SlotReserved { case, .. }
            | TraceEvent::SlotReleased { case, .. } => Some(case),
            _ => None,
        }
    }

    /// The message id this event concerns, if any.
    pub fn message_id(&self) -> Option<u64> {
        match self {
            TraceEvent::MessageSent { id, .. }
            | TraceEvent::MessageDelivered { id, .. }
            | TraceEvent::MessageDropped { id, .. }
            | TraceEvent::MessageDuplicated { id, .. }
            | TraceEvent::MessageDelayed { id, .. }
            | TraceEvent::MessageReleased { id, .. }
            | TraceEvent::MessageReordered { id, .. } => Some(*id),
            _ => None,
        }
    }

    /// The content-addressed plan key carried by the `plan.cache_hit` /
    /// `plan.cache_miss` / `plan.coalesced` events, if any.
    pub fn plan_key(&self) -> Option<&str> {
        match self {
            TraceEvent::PlanCacheHit { key }
            | TraceEvent::PlanCacheMiss { key }
            | TraceEvent::PlanCoalesced { key } => Some(key),
            _ => None,
        }
    }

    /// A short stable label for the event kind (used as a metrics key
    /// component and in compact renderings).
    pub fn label(&self) -> &'static str {
        match self {
            TraceEvent::MessageSent { .. } => "message.sent",
            TraceEvent::MessageDelivered { .. } => "message.delivered",
            TraceEvent::MessageDropped { .. } => "message.dropped",
            TraceEvent::MessageDuplicated { .. } => "message.duplicated",
            TraceEvent::MessageDelayed { .. } => "message.delayed",
            TraceEvent::MessageReleased { .. } => "message.released",
            TraceEvent::RequestTimedOut { .. } => "request.timeout",
            TraceEvent::RequestAnswered { .. } => "request.answered",
            TraceEvent::EnactmentStarted { .. } => "enactment.started",
            TraceEvent::ActivityDispatched { .. } => "activity.dispatched",
            TraceEvent::ActivityCompleted { .. } => "activity.completed",
            TraceEvent::ActivityFailed { .. } => "activity.failed",
            TraceEvent::RetryScheduled { .. } => "retry.scheduled",
            TraceEvent::LeaseGranted { .. } => "lease.granted",
            TraceEvent::LeaseExpired { .. } => "lease.expired",
            TraceEvent::BreakerOpened { .. } => "breaker.opened",
            TraceEvent::BreakerHalfOpen { .. } => "breaker.half_open",
            TraceEvent::BreakerClosed { .. } => "breaker.closed",
            TraceEvent::TransitionFired { .. } => "transition.fired",
            TraceEvent::CheckpointCaptured { .. } => "checkpoint.captured",
            TraceEvent::ResumeStarted { .. } => "resume.started",
            TraceEvent::ReplanTriggered { .. } => "replan.triggered",
            TraceEvent::ReplanInstalled { .. } => "replan.installed",
            TraceEvent::PlanGeneration { .. } => "plan.generation",
            TraceEvent::PlanCacheHit { .. } => "plan.cache_hit",
            TraceEvent::PlanCacheMiss { .. } => "plan.cache_miss",
            TraceEvent::PlanCoalesced { .. } => "plan.coalesced",
            TraceEvent::EnactmentFinished { .. } => "enactment.finished",
            TraceEvent::PhaseStarted { .. } => "phase.started",
            TraceEvent::NodeLost { .. } => "fault.node_lost",
            TraceEvent::CoordinatorCrashed { .. } => "fault.crash",
            TraceEvent::Custom { .. } => "custom",
            TraceEvent::TickStarted { .. } => "engine.tick",
            TraceEvent::CaseAdmitted { .. } => "case.admitted",
            TraceEvent::CaseRejected { .. } => "case.rejected",
            TraceEvent::CaseBlocked { .. } => "case.blocked",
            TraceEvent::CaseCompleted { .. } => "case.completed",
            TraceEvent::SlotReserved { .. } => "slot.reserved",
            TraceEvent::SlotReleased { .. } => "slot.released",
            TraceEvent::MessageReordered { .. } => "message.reordered",
            TraceEvent::PartitionStarted { .. } => "transport.partitioned",
            TraceEvent::PartitionHealed { .. } => "transport.healed",
            TraceEvent::ServiceWoken { .. } => "wake.woken",
            TraceEvent::ServiceSlept { .. } => "wake.slept",
        }
    }

    /// Is this one of the fault-injection events (`MessageDropped`,
    /// `MessageDuplicated`, `MessageDelayed`, `MessageReordered`,
    /// `PartitionStarted`, `NodeLost`, `CoordinatorCrashed`)?
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            TraceEvent::MessageDropped { .. }
                | TraceEvent::MessageDuplicated { .. }
                | TraceEvent::MessageDelayed { .. }
                | TraceEvent::MessageReordered { .. }
                | TraceEvent::PartitionStarted { .. }
                | TraceEvent::NodeLost { .. }
                | TraceEvent::CoordinatorCrashed { .. }
        )
    }
}

/// One record of a trace: an event plus its deterministic coordinates —
/// a per-log sequence number and the virtual-clock reading at emission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Position in the log (0-based, assigned by the sink).
    pub seq: u64,
    /// Virtual-clock tick at emission (one tick per intercepted
    /// message; 0 when no message traffic drives the clock).
    pub tick: u64,
    /// Virtual seconds at emission (advanced by simulated execution
    /// time, never wall time).
    pub at_s: f64,
    /// Emitting component (`"enactor"`, `"transport"`, `"runner"`,
    /// `"directory"`, `"planner"`, `"client"`, …), interned — see
    /// [`Label`].
    pub source: Label,
    /// The event itself.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_unique_per_variant() {
        let a = TraceEvent::MessageDropped {
            id: 1,
            sender: "a".into(),
            receiver: "b".into(),
        };
        let b = TraceEvent::ActivityCompleted {
            activity: "A1".into(),
            service: "cook".into(),
            container: "ac-h2".into(),
            duration_s: 1.0,
            cost: 2.0,
        };
        assert_eq!(a.label(), "message.dropped");
        assert_eq!(b.label(), "activity.completed");
        assert!(a.is_fault());
        assert!(!b.is_fault());
    }

    #[test]
    fn plan_cache_events_have_labels_and_key_accessor() {
        let key = "00000000000000000000000000000abc".to_string();
        let hit = TraceEvent::PlanCacheHit { key: key.clone() };
        let miss = TraceEvent::PlanCacheMiss { key: key.clone() };
        let coalesced = TraceEvent::PlanCoalesced { key: key.clone() };
        assert_eq!(hit.label(), "plan.cache_hit");
        assert_eq!(miss.label(), "plan.cache_miss");
        assert_eq!(coalesced.label(), "plan.coalesced");
        for e in [&hit, &miss, &coalesced] {
            assert_eq!(e.plan_key(), Some(key.as_str()));
            assert!(!e.is_fault());
            assert_eq!(e.activity(), None);
        }
        assert_eq!(
            TraceEvent::PlanGeneration {
                generation: 0,
                best_overall: 1.0,
                mean_overall: 0.5,
                mean_size: 3.0,
            }
            .plan_key(),
            None
        );
    }

    #[test]
    fn activity_and_message_accessors() {
        let e = TraceEvent::ActivityFailed {
            activity: "A1".into(),
            service: "cook".into(),
            container: "c".into(),
            attempt: 0,
        };
        assert_eq!(e.activity(), Some("A1"));
        assert_eq!(e.message_id(), None);
        let m = TraceEvent::MessageDelayed {
            id: 9,
            sender: "a".into(),
            receiver: "b".into(),
            until_tick: 12,
        };
        assert_eq!(m.message_id(), Some(9));
        assert_eq!(m.activity(), None);
    }

    #[test]
    fn recovery_events_have_labels_and_activity_accessors() {
        let r = TraceEvent::RetryScheduled {
            activity: "A2".into(),
            service: "cook".into(),
            container: "ac-h2".into(),
            attempt: 1,
            backoff_ticks: 4,
            resume_tick: 9,
        };
        assert_eq!(r.label(), "retry.scheduled");
        assert_eq!(r.activity(), Some("A2"));
        assert!(!r.is_fault());
        let l = TraceEvent::LeaseExpired {
            activity: "A2".into(),
            container: "ac-h2".into(),
            lease_ticks: 30,
            took_ticks: 150,
        };
        assert_eq!(l.label(), "lease.expired");
        assert_eq!(l.activity(), Some("A2"));
        let b = TraceEvent::BreakerOpened {
            container: "ac-h2".into(),
            consecutive_failures: 3,
            until_tick: 200,
        };
        assert_eq!(b.label(), "breaker.opened");
        assert_eq!(b.activity(), None);
        assert_eq!(
            TraceEvent::BreakerHalfOpen {
                container: "c".into()
            }
            .label(),
            "breaker.half_open"
        );
        assert_eq!(
            TraceEvent::BreakerClosed {
                container: "c".into()
            }
            .label(),
            "breaker.closed"
        );
    }

    #[test]
    fn engine_events_have_labels_and_case_accessors() {
        let t = TraceEvent::TickStarted { tick: 3 };
        assert_eq!(t.label(), "engine.tick");
        assert_eq!(t.case_label(), None);
        assert!(!t.is_fault());
        let r = TraceEvent::SlotReserved {
            case: "case-1".into(),
            container: "ac-h2".into(),
        };
        assert_eq!(r.label(), "slot.reserved");
        assert_eq!(r.case_label(), Some("case-1"));
        let b = TraceEvent::CaseBlocked {
            case: "case-1".into(),
            service: "cook".into(),
        };
        assert_eq!(b.label(), "case.blocked");
        assert_eq!(b.case_label(), Some("case-1"));
        let c = TraceEvent::CaseCompleted {
            case: "case-0".into(),
            success: true,
        };
        assert_eq!(c.label(), "case.completed");
        // Engine events round-trip through the externally tagged JSON
        // representation like every other variant.
        let json = serde_json::to_string(&r).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn records_round_trip_through_json() {
        let r = TraceRecord {
            seq: 3,
            tick: 7,
            at_s: 1.25,
            source: "enactor".into(),
            event: TraceEvent::CheckpointCaptured {
                index: 0,
                executions: 1,
            },
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
