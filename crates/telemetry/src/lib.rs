//! Deterministic telemetry for the GridFlow stack.
//!
//! The paper's architecture pairs a *monitoring service* ("to monitor
//! the status of the system") with an *information service* that
//! archives execution records.  This crate is the recording half of
//! that pair, built for testability first: every layer of the stack —
//! the agent substrate, the coordination enactor, the GP planner, the
//! fault-injection harness — reports typed [`TraceEvent`]s into a
//! shared [`TraceSink`], producing one ordered log of *what actually
//! happened* during an enactment.
//!
//! Three properties make the log useful for deterministic-simulation
//! testing rather than just debugging:
//!
//! - **Virtual time only.**  Records are stamped from a [`TraceClock`]
//!   (the harness's virtual clock) — a `(tick, seconds)` pair advanced
//!   by simulated message traffic and simulated execution durations.
//!   Wall-clock never appears, so a seeded scenario run twice yields
//!   byte-identical [`TraceLog::to_jsonl`] dumps.
//! - **Typed events, ordered log.**  Each [`TraceRecord`] carries a
//!   per-log sequence number; causality assertions reduce to integer
//!   comparisons over one stream.
//! - **Trace-then-assert.**  [`TraceQuery`] turns the log into
//!   execution invariants (no double dispatch after crash/resume,
//!   every drop resolved by timeout-or-retry, happens-before edges,
//!   retry counts), and [`MetricsRegistry`] folds it into counters and
//!   virtual-time latency histograms for the monitoring service.
//!
//! Determinism scope: byte-identical replay holds on the
//! single-threaded scenario-runner path.  The live agent stack is
//! multi-threaded and draws message ids from a process-global counter,
//! so its traces support invariant assertions but not byte equality.

#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod query;
pub mod sink;

pub use event::{Label, TraceEvent, TraceRecord};
pub use metrics::{Histogram, MetricsRegistry, LATENCY_BUCKETS_S};
pub use query::{AdmissionRecord, TraceQuery, TraceViolation};
pub use sink::{
    BufferedOp, FrozenClock, NullSink, ScopedSink, TeeSink, TraceBuffer, TraceClock, TraceHandle,
    TraceLog, TraceSink, TraceSlot,
};
