//! Property-based tests for the telemetry layer: event/record serde
//! round trips, JSONL log round trips, and metrics consistency.

use gridflow_telemetry::{MetricsRegistry, TraceEvent, TraceLog, TraceRecord, TraceSink};
use proptest::prelude::*;

fn name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,8}".prop_map(|s| s)
}

fn event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (
            any::<u64>(),
            name(),
            name(),
            name(),
            any::<bool>(),
            any::<u64>()
        )
            .prop_map(
                |(id, performative, sender, receiver, has_reply, reply_id)| {
                    TraceEvent::MessageSent {
                        id,
                        performative,
                        sender,
                        receiver,
                        in_reply_to: has_reply.then_some(reply_id),
                    }
                }
            ),
        (any::<u64>(), name(), name()).prop_map(|(id, sender, receiver)| {
            TraceEvent::MessageDropped {
                id,
                sender,
                receiver,
            }
        }),
        (any::<u64>(), name(), name(), any::<u64>()).prop_map(
            |(id, sender, receiver, until_tick)| TraceEvent::MessageDelayed {
                id,
                sender,
                receiver,
                until_tick,
            }
        ),
        (name(), name(), name(), 0usize..8).prop_map(|(activity, service, container, attempt)| {
            TraceEvent::ActivityDispatched {
                activity,
                service,
                container,
                attempt,
            }
        }),
        (name(), name(), name(), 0.0f64..1.0e4, 0.0f64..1.0e4).prop_map(
            |(activity, service, container, duration_s, cost)| TraceEvent::ActivityCompleted {
                activity,
                service,
                container,
                duration_s,
                cost,
            }
        ),
        (name(), name()).prop_map(|(kind, node)| TraceEvent::TransitionFired { kind, node }),
        (0usize..16, 0usize..16).prop_map(|(index, executions)| {
            TraceEvent::CheckpointCaptured { index, executions }
        }),
        (
            name(),
            name(),
            prop::collection::vec(name(), 0..3),
            1usize..4
        )
            .prop_map(
                |(activity, service, excluded, round)| TraceEvent::ReplanTriggered {
                    activity,
                    service,
                    excluded,
                    round,
                }
            ),
        (any::<bool>(), any::<bool>()).prop_map(|(success, has_reason)| {
            TraceEvent::EnactmentFinished {
                success,
                abort_reason: has_reason.then(|| "all candidates failed".to_string()),
            }
        }),
    ]
}

fn record() -> impl Strategy<Value = TraceRecord> {
    (any::<u64>(), any::<u64>(), 0.0f64..1.0e6, name(), event()).prop_map(
        |(seq, tick, at_s, source, event)| TraceRecord {
            seq,
            tick,
            at_s,
            source: source.into(),
            event,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every event survives a JSON round trip exactly.
    #[test]
    fn event_serde_round_trip(e in event()) {
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, e);
    }

    /// A whole log survives the JSONL round trip, and serializing twice
    /// is byte-identical.
    #[test]
    fn log_jsonl_round_trip(events in prop::collection::vec(event(), 0..12)) {
        let log = TraceLog::new();
        for e in &events {
            log.emit("prop", e.clone());
        }
        let dump = log.to_jsonl();
        prop_assert_eq!(dump.clone(), log.to_jsonl(), "serialization must be stable");
        let back = TraceLog::from_jsonl(&dump).unwrap();
        prop_assert_eq!(back, log.records());
    }

    /// Each record contributes exactly 1 to its own label's counter:
    /// the registry's per-label counts equal a direct tally.
    #[test]
    fn metrics_counters_match_direct_tally(records in prop::collection::vec(record(), 0..24)) {
        let m = MetricsRegistry::from_trace(&records);
        let mut expected: std::collections::BTreeMap<&str, u64> = Default::default();
        for r in &records {
            *expected.entry(r.event.label()).or_insert(0) += 1;
        }
        for (label, count) in expected {
            prop_assert_eq!(m.counter(label), count, "label {}", label);
        }
        // Histogram observations equal completed-activity events.
        let completions = records
            .iter()
            .filter(|r| r.event.label() == "activity.completed")
            .count() as u64;
        let observed: u64 = m.histograms.values().map(|h| h.count).sum();
        prop_assert_eq!(observed, completions);
    }
}
