//! The flattened activity/transition graph form of a process description.
//!
//! This is the form of Figure 10: a set of activities — end-user
//! activities plus the six flow-control activities Begin, End, Choice,
//! Fork, Join, Merge (§3.1) — connected by directed transitions (TR1 …
//! TR15 in the figure).  The coordination service enacts this form; the
//! planner's plan trees convert to and from it.

use crate::condition::Condition;
use crate::error::{ProcessError, Result};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The kind of an activity (the paper's six flow-control activities plus
/// end-user activities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivityKind {
    /// Every plan starts with exactly one Begin.
    Begin,
    /// Every plan concludes with exactly one End.
    End,
    /// An end-user activity backed by a computing service.
    EndUser,
    /// One predecessor, multiple successors, all triggered.
    Fork,
    /// Multiple predecessors, one successor; fires when *all* predecessors
    /// complete.
    Join,
    /// One predecessor, multiple successors, exactly one triggered
    /// (selected by the condition set on its outgoing transitions).
    Choice,
    /// Multiple predecessors, one successor; fires when *any* predecessor
    /// completes.
    Merge,
}

impl ActivityKind {
    /// The `Type` string used in the ontology instances of Fig. 13.
    pub fn ontology_type(&self) -> &'static str {
        match self {
            ActivityKind::Begin => "Begin",
            ActivityKind::End => "End",
            ActivityKind::EndUser => "End-user",
            ActivityKind::Fork => "Fork",
            ActivityKind::Join => "Join",
            ActivityKind::Choice => "Choice",
            ActivityKind::Merge => "Merge",
        }
    }

    /// Is this one of the six flow-control kinds?
    pub fn is_flow_control(&self) -> bool {
        !matches!(self, ActivityKind::EndUser)
    }
}

/// One activity of the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityDecl {
    /// Unique identifier within the graph (e.g. `P3DR1`).
    pub id: String,
    /// Activity kind.
    pub kind: ActivityKind,
    /// For end-user activities: the name of the computing service that
    /// executes it (e.g. `P3DR` for all of `P3DR1`…`P3DR4`).  `None` for
    /// flow-control activities.
    pub service: Option<String>,
}

impl ActivityDecl {
    /// An end-user activity whose service name equals its id.
    pub fn end_user(id: impl Into<String>) -> Self {
        let id = id.into();
        ActivityDecl {
            service: Some(id.clone()),
            id,
            kind: ActivityKind::EndUser,
        }
    }

    /// An end-user activity with an explicit service name.
    pub fn end_user_with_service(id: impl Into<String>, service: impl Into<String>) -> Self {
        ActivityDecl {
            id: id.into(),
            kind: ActivityKind::EndUser,
            service: Some(service.into()),
        }
    }

    /// A flow-control activity.
    pub fn flow(id: impl Into<String>, kind: ActivityKind) -> Self {
        ActivityDecl {
            id: id.into(),
            kind,
            service: None,
        }
    }
}

/// A directed transition between two activities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Unique identifier (e.g. `TR12`).
    pub id: String,
    /// Source activity id.
    pub source: String,
    /// Destination activity id.
    pub dest: String,
    /// Guard on the transition.  Only meaningful on transitions leaving a
    /// Choice activity; `None` there means "default/else branch".
    pub condition: Option<Condition>,
}

/// A process description in activity/transition form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessGraph {
    /// Name of the process description (`PD-3DSD` in Fig. 13).
    pub name: String,
    activities: Vec<ActivityDecl>,
    index: BTreeMap<String, usize>,
    transitions: Vec<Transition>,
    next_transition: usize,
}

impl ProcessGraph {
    /// An empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        ProcessGraph {
            name: name.into(),
            activities: Vec::new(),
            index: BTreeMap::new(),
            transitions: Vec::new(),
            next_transition: 1,
        }
    }

    /// Add an activity; ids must be unique.
    pub fn add_activity(&mut self, decl: ActivityDecl) -> Result<()> {
        if self.index.contains_key(&decl.id) {
            return Err(ProcessError::Structure(format!(
                "duplicate activity id `{}`",
                decl.id
            )));
        }
        self.index.insert(decl.id.clone(), self.activities.len());
        self.activities.push(decl);
        Ok(())
    }

    /// Add a transition with an auto-generated id (`TR1`, `TR2`, …).
    pub fn add_transition(
        &mut self,
        source: impl Into<String>,
        dest: impl Into<String>,
        condition: Option<Condition>,
    ) -> Result<&Transition> {
        let id = format!("TR{}", self.next_transition);
        self.add_transition_with_id(id, source, dest, condition)
    }

    /// Add a transition with an explicit id.
    pub fn add_transition_with_id(
        &mut self,
        id: impl Into<String>,
        source: impl Into<String>,
        dest: impl Into<String>,
        condition: Option<Condition>,
    ) -> Result<&Transition> {
        let id = id.into();
        let source = source.into();
        let dest = dest.into();
        if self.transitions.iter().any(|t| t.id == id) {
            return Err(ProcessError::Structure(format!(
                "duplicate transition id `{id}`"
            )));
        }
        for endpoint in [&source, &dest] {
            if !self.index.contains_key(endpoint) {
                return Err(ProcessError::Structure(format!(
                    "transition `{id}` references unknown activity `{endpoint}`"
                )));
            }
        }
        self.next_transition += 1;
        self.transitions.push(Transition {
            id,
            source,
            dest,
            condition,
        });
        Ok(self.transitions.last().expect("just pushed"))
    }

    /// Look up an activity by id.
    pub fn activity(&self, id: &str) -> Option<&ActivityDecl> {
        self.index.get(id).map(|&i| &self.activities[i])
    }

    /// All activities, in insertion order.
    pub fn activities(&self) -> &[ActivityDecl] {
        &self.activities
    }

    /// All transitions, in insertion order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The end-user activities, in insertion order.
    pub fn end_user_activities(&self) -> impl Iterator<Item = &ActivityDecl> {
        self.activities
            .iter()
            .filter(|a| a.kind == ActivityKind::EndUser)
    }

    /// Transitions leaving `id`, in insertion order (the order is the
    /// priority order of Choice conditions).
    pub fn outgoing(&self, id: &str) -> Vec<&Transition> {
        self.transitions.iter().filter(|t| t.source == id).collect()
    }

    /// Transitions entering `id`, in insertion order.
    pub fn incoming(&self, id: &str) -> Vec<&Transition> {
        self.transitions.iter().filter(|t| t.dest == id).collect()
    }

    /// Successor activity ids of `id`.
    pub fn successors(&self, id: &str) -> Vec<&str> {
        self.outgoing(id).iter().map(|t| t.dest.as_str()).collect()
    }

    /// Predecessor activity ids of `id`.
    pub fn predecessors(&self, id: &str) -> Vec<&str> {
        self.incoming(id)
            .iter()
            .map(|t| t.source.as_str())
            .collect()
    }

    /// The unique successor of a single-successor activity.
    pub fn sole_successor(&self, id: &str) -> Result<&str> {
        let succs = self.successors(id);
        match succs.as_slice() {
            [s] => Ok(s),
            _ => Err(ProcessError::Structure(format!(
                "activity `{id}` has {} successors, expected exactly 1",
                succs.len()
            ))),
        }
    }

    /// The Begin activity, if present.
    pub fn begin(&self) -> Option<&ActivityDecl> {
        self.activities
            .iter()
            .find(|a| a.kind == ActivityKind::Begin)
    }

    /// The End activity, if present.
    pub fn end(&self) -> Option<&ActivityDecl> {
        self.activities.iter().find(|a| a.kind == ActivityKind::End)
    }

    /// Ids reachable from `from` by following transitions (not including
    /// `from` itself unless it lies on a cycle through itself).
    pub fn reachable_from(&self, from: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<&str> = self.successors(from).into_iter().collect();
        while let Some(id) = queue.pop_front() {
            if seen.insert(id.to_owned()) {
                queue.extend(self.successors(id));
            }
        }
        seen
    }

    /// Structural validation per §3.1 of the paper:
    ///
    /// 1. exactly one Begin and one End; "these two activities cannot
    ///    occur anywhere else in a plan";
    /// 2. Begin has no predecessor and one successor; End has no successor;
    /// 3. end-user activities have exactly one predecessor and one
    ///    successor;
    /// 4. Fork: one predecessor, at least two successors;
    ///    Join: at least two predecessors, one successor;
    ///    Choice: one predecessor, at least two successors;
    ///    Merge: at least two predecessors, one successor;
    /// 5. every activity is reachable from Begin, and End is reachable
    ///    from every activity;
    /// 6. on each Choice, at most one outgoing transition may lack a
    ///    condition (the default branch), and only Choice transitions may
    ///    carry conditions.
    pub fn validate(&self) -> Result<()> {
        let begins: Vec<_> = self
            .activities
            .iter()
            .filter(|a| a.kind == ActivityKind::Begin)
            .collect();
        let ends: Vec<_> = self
            .activities
            .iter()
            .filter(|a| a.kind == ActivityKind::End)
            .collect();
        if begins.len() != 1 {
            return Err(ProcessError::Structure(format!(
                "expected exactly one Begin activity, found {}",
                begins.len()
            )));
        }
        if ends.len() != 1 {
            return Err(ProcessError::Structure(format!(
                "expected exactly one End activity, found {}",
                ends.len()
            )));
        }
        let begin_id = begins[0].id.clone();
        let end_id = ends[0].id.clone();

        for a in &self.activities {
            let preds = self.predecessors(&a.id).len();
            let succs = self.successors(&a.id).len();
            let ok = match a.kind {
                ActivityKind::Begin => preds == 0 && succs == 1,
                ActivityKind::End => preds >= 1 && succs == 0,
                ActivityKind::EndUser => preds == 1 && succs == 1,
                ActivityKind::Fork | ActivityKind::Choice => preds == 1 && succs >= 2,
                ActivityKind::Join | ActivityKind::Merge => preds >= 2 && succs == 1,
            };
            if !ok {
                return Err(ProcessError::Structure(format!(
                    "activity `{}` ({:?}) has {preds} predecessors and {succs} successors",
                    a.id, a.kind
                )));
            }
        }

        // Condition placement.
        for t in &self.transitions {
            let source_kind = self.activity(&t.source).expect("endpoint checked").kind;
            if t.condition.is_some() && source_kind != ActivityKind::Choice {
                return Err(ProcessError::Structure(format!(
                    "transition `{}` carries a condition but its source `{}` is not a Choice",
                    t.id, t.source
                )));
            }
        }
        for a in &self.activities {
            if a.kind == ActivityKind::Choice {
                let defaults = self
                    .outgoing(&a.id)
                    .iter()
                    .filter(|t| t.condition.is_none())
                    .count();
                if defaults > 1 {
                    return Err(ProcessError::Structure(format!(
                        "Choice `{}` has {defaults} default (unconditioned) branches",
                        a.id
                    )));
                }
            }
        }

        // Reachability.
        let from_begin = self.reachable_from(&begin_id);
        for a in &self.activities {
            if a.id != begin_id && !from_begin.contains(&a.id) {
                return Err(ProcessError::Structure(format!(
                    "activity `{}` is unreachable from Begin",
                    a.id
                )));
            }
        }
        for a in &self.activities {
            if a.id != end_id && !self.reachable_from(&a.id).contains(&end_id) {
                return Err(ProcessError::Structure(format!(
                    "End is unreachable from activity `{}`",
                    a.id
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// BEGIN -> A -> END
    fn linear() -> ProcessGraph {
        let mut g = ProcessGraph::new("linear");
        g.add_activity(ActivityDecl::flow("BEGIN", ActivityKind::Begin))
            .unwrap();
        g.add_activity(ActivityDecl::end_user("A")).unwrap();
        g.add_activity(ActivityDecl::flow("END", ActivityKind::End))
            .unwrap();
        g.add_transition("BEGIN", "A", None).unwrap();
        g.add_transition("A", "END", None).unwrap();
        g
    }

    #[test]
    fn linear_graph_validates() {
        linear().validate().unwrap();
    }

    #[test]
    fn transition_ids_auto_increment() {
        let g = linear();
        let ids: Vec<&str> = g.transitions().iter().map(|t| t.id.as_str()).collect();
        assert_eq!(ids, vec!["TR1", "TR2"]);
    }

    #[test]
    fn duplicate_activity_rejected() {
        let mut g = linear();
        assert!(g.add_activity(ActivityDecl::end_user("A")).is_err());
    }

    #[test]
    fn transition_to_unknown_activity_rejected() {
        let mut g = linear();
        assert!(g.add_transition("A", "NOPE", None).is_err());
    }

    #[test]
    fn missing_begin_fails_validation() {
        let mut g = ProcessGraph::new("bad");
        g.add_activity(ActivityDecl::end_user("A")).unwrap();
        g.add_activity(ActivityDecl::flow("END", ActivityKind::End))
            .unwrap();
        g.add_transition("A", "END", None).unwrap();
        assert!(matches!(g.validate(), Err(ProcessError::Structure(_))));
    }

    #[test]
    fn fork_requires_two_successors() {
        let mut g = ProcessGraph::new("bad");
        g.add_activity(ActivityDecl::flow("BEGIN", ActivityKind::Begin))
            .unwrap();
        g.add_activity(ActivityDecl::flow("FORK", ActivityKind::Fork))
            .unwrap();
        g.add_activity(ActivityDecl::end_user("A")).unwrap();
        g.add_activity(ActivityDecl::flow("END", ActivityKind::End))
            .unwrap();
        g.add_transition("BEGIN", "FORK", None).unwrap();
        g.add_transition("FORK", "A", None).unwrap();
        g.add_transition("A", "END", None).unwrap();
        let err = g.validate().unwrap_err();
        assert!(err.to_string().contains("FORK"));
    }

    #[test]
    fn condition_outside_choice_rejected() {
        // A structurally sound chain whose only defect is a guard on a
        // transition leaving a non-Choice activity.
        let mut g = ProcessGraph::new("bad-guard");
        g.add_activity(ActivityDecl::flow("BEGIN", ActivityKind::Begin))
            .unwrap();
        g.add_activity(ActivityDecl::end_user("A")).unwrap();
        g.add_activity(ActivityDecl::flow("END", ActivityKind::End))
            .unwrap();
        g.add_transition("BEGIN", "A", Some(Condition::True))
            .unwrap();
        g.add_transition("A", "END", None).unwrap();
        let err = g.validate().unwrap_err();
        assert!(err.to_string().contains("not a Choice"));
    }

    #[test]
    fn unreachable_activity_detected() {
        // An isolated two-node cycle has valid local degree counts but is
        // unreachable from Begin.
        let mut g = linear();
        g.add_activity(ActivityDecl::end_user("ORPHAN")).unwrap();
        g.add_activity(ActivityDecl::end_user("ORPHAN2")).unwrap();
        g.add_transition("ORPHAN", "ORPHAN2", None).unwrap();
        g.add_transition("ORPHAN2", "ORPHAN", None).unwrap();
        let err = g.validate().unwrap_err();
        assert!(err.to_string().contains("unreachable"));
    }

    #[test]
    fn fork_join_diamond_validates() {
        let mut g = ProcessGraph::new("diamond");
        for (id, kind) in [
            ("BEGIN", ActivityKind::Begin),
            ("FORK", ActivityKind::Fork),
            ("JOIN", ActivityKind::Join),
            ("END", ActivityKind::End),
        ] {
            g.add_activity(ActivityDecl::flow(id, kind)).unwrap();
        }
        g.add_activity(ActivityDecl::end_user("A")).unwrap();
        g.add_activity(ActivityDecl::end_user("B")).unwrap();
        g.add_transition("BEGIN", "FORK", None).unwrap();
        g.add_transition("FORK", "A", None).unwrap();
        g.add_transition("FORK", "B", None).unwrap();
        g.add_transition("A", "JOIN", None).unwrap();
        g.add_transition("B", "JOIN", None).unwrap();
        g.add_transition("JOIN", "END", None).unwrap();
        g.validate().unwrap();
        assert_eq!(g.successors("FORK"), vec!["A", "B"]);
        assert_eq!(g.predecessors("JOIN"), vec!["A", "B"]);
        assert_eq!(g.sole_successor("JOIN").unwrap(), "END");
        assert!(g.sole_successor("FORK").is_err());
    }

    #[test]
    fn reachability() {
        let g = linear();
        let r = g.reachable_from("BEGIN");
        assert!(r.contains("A"));
        assert!(r.contains("END"));
        assert!(g.reachable_from("END").is_empty());
    }

    #[test]
    fn end_user_activities_and_service_names() {
        let mut g = ProcessGraph::new("svc");
        g.add_activity(ActivityDecl::end_user_with_service("P3DR1", "P3DR"))
            .unwrap();
        let a = g.activity("P3DR1").unwrap();
        assert_eq!(a.service.as_deref(), Some("P3DR"));
        assert_eq!(g.end_user_activities().count(), 1);
        assert!(ActivityKind::Fork.is_flow_control());
        assert!(!ActivityKind::EndUser.is_flow_control());
        assert_eq!(ActivityKind::EndUser.ontology_type(), "End-user");
    }
}
