//! Recursive-descent parser for the process-description language.
//!
//! Concrete syntax (our rendering of the paper's BNF, which the paper
//! gives only in OCR-damaged form; the constructs and keywords are the
//! paper's own):
//!
//! ```text
//! process   := "BEGIN" stmt_list "END"
//! stmt_list := (stmt ";")*
//! stmt      := IDENT                                        -- end-user activity
//!            | "FORK" "{" block ("," block)+ "}" "JOIN"     -- concurrent
//!            | "CHOICE" "{" guarded ("," guarded)* "}" "MERGE"
//!            | "ITERATIVE" "{" "COND" "{" cond "}" "}" block
//! block     := "{" stmt_list "}"
//! guarded   := "COND" "{" cond "}" block
//!
//! cond      := and_expr ("or" and_expr)*
//! and_expr  := unary ("and" unary)*
//! unary     := "not" unary | "(" cond ")" | atom
//! atom      := "true" | "false" | "exists" IDENT
//!            | IDENT "." IDENT op literal                   -- the paper's atom
//! op        := "<" | ">" | "=" | "!=" | "<=" | ">="
//! literal   := INT | FLOAT | STRING | "true" | "false" | IDENT
//! ```
//!
//! The pretty-printer in [`crate::printer`] emits exactly this syntax, and
//! print→parse is the identity (tested property-style in the crate tests).

use crate::ast::{ProcessAst, Stmt};
use crate::condition::{CompareOp, Condition};
use crate::error::{ProcessError, Result};
use crate::lexer::{lex, Token, TokenKind};
use gridflow_ontology::Value;

/// Parse a complete process description (`BEGIN … END`).
pub fn parse_process(source: &str) -> Result<ProcessAst> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    p.expect(&TokenKind::Begin)?;
    let body = p.stmt_list()?;
    p.expect(&TokenKind::End)?;
    p.expect(&TokenKind::Eof)?;
    Ok(ProcessAst::new(body))
}

/// Parse a condition expression on its own (used for case-description
/// goals and constraints).
pub fn parse_condition(source: &str) -> Result<Condition> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let cond = p.condition()?;
    p.expect(&TokenKind::Eof)?;
    Ok(cond)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(ProcessError::Parse {
                offset: self.offset(),
                message: format!("expected {kind}, found {}", self.peek()),
            })
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => Err(ProcessError::Parse {
                offset: self.offset(),
                message: format!("expected identifier, found {other}"),
            }),
        }
    }

    // ---- statements -------------------------------------------------

    fn stmt_list(&mut self) -> Result<Vec<Stmt>> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Ident(_)
                | TokenKind::Fork
                | TokenKind::Choice
                | TokenKind::Iterative => {
                    let stmt = self.stmt()?;
                    self.expect(&TokenKind::Semi)?;
                    out.push(stmt);
                }
                _ => return Ok(out),
            }
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(Stmt::Activity(name))
            }
            TokenKind::Fork => {
                self.advance();
                self.expect(&TokenKind::LBrace)?;
                let mut branches = vec![self.block()?];
                while self.peek() == &TokenKind::Comma {
                    self.advance();
                    branches.push(self.block()?);
                }
                self.expect(&TokenKind::RBrace)?;
                self.expect(&TokenKind::Join)?;
                if branches.len() < 2 {
                    return Err(ProcessError::Parse {
                        offset: self.offset(),
                        message: "FORK requires at least two branches".into(),
                    });
                }
                Ok(Stmt::Concurrent(branches))
            }
            TokenKind::Choice => {
                self.advance();
                self.expect(&TokenKind::LBrace)?;
                let mut branches = vec![self.guarded()?];
                while self.peek() == &TokenKind::Comma {
                    self.advance();
                    branches.push(self.guarded()?);
                }
                self.expect(&TokenKind::RBrace)?;
                self.expect(&TokenKind::Merge)?;
                if branches.len() < 2 {
                    return Err(ProcessError::Parse {
                        offset: self.offset(),
                        message: "CHOICE requires at least two branches".into(),
                    });
                }
                Ok(Stmt::Selective(branches))
            }
            TokenKind::Iterative => {
                self.advance();
                self.expect(&TokenKind::LBrace)?;
                self.expect(&TokenKind::Cond)?;
                self.expect(&TokenKind::LBrace)?;
                let cond = self.condition()?;
                self.expect(&TokenKind::RBrace)?;
                self.expect(&TokenKind::RBrace)?;
                let body = self.block()?;
                Ok(Stmt::Iterative { cond, body })
            }
            other => Err(ProcessError::Parse {
                offset: self.offset(),
                message: format!("expected a statement, found {other}"),
            }),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(&TokenKind::LBrace)?;
        let body = self.stmt_list()?;
        self.expect(&TokenKind::RBrace)?;
        Ok(body)
    }

    fn guarded(&mut self) -> Result<(Condition, Vec<Stmt>)> {
        self.expect(&TokenKind::Cond)?;
        self.expect(&TokenKind::LBrace)?;
        let cond = self.condition()?;
        self.expect(&TokenKind::RBrace)?;
        let body = self.block()?;
        Ok((cond, body))
    }

    // ---- conditions --------------------------------------------------

    fn condition(&mut self) -> Result<Condition> {
        let mut left = self.and_expr()?;
        while self.peek() == &TokenKind::Or {
            self.advance();
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Condition> {
        let mut left = self.unary()?;
        while self.peek() == &TokenKind::And {
            self.advance();
            let right = self.unary()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Condition> {
        match self.peek() {
            TokenKind::Not => {
                self.advance();
                Ok(self.unary()?.negate())
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.condition()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Condition> {
        match self.peek().clone() {
            TokenKind::True => {
                self.advance();
                Ok(Condition::True)
            }
            TokenKind::False => {
                self.advance();
                Ok(Condition::True.negate())
            }
            TokenKind::Exists => {
                self.advance();
                Ok(Condition::Exists(self.ident()?))
            }
            TokenKind::Ident(data) => {
                self.advance();
                self.expect(&TokenKind::Dot)?;
                let property = self.ident()?;
                let op = self.compare_op()?;
                let value = self.literal()?;
                Ok(Condition::Compare {
                    data,
                    property,
                    op,
                    value,
                })
            }
            other => Err(ProcessError::Parse {
                offset: self.offset(),
                message: format!("expected a condition, found {other}"),
            }),
        }
    }

    fn compare_op(&mut self) -> Result<CompareOp> {
        let op = match self.peek() {
            TokenKind::Lt => CompareOp::Lt,
            TokenKind::Gt => CompareOp::Gt,
            TokenKind::Eq => CompareOp::Eq,
            TokenKind::Ne => CompareOp::Ne,
            TokenKind::Le => CompareOp::Le,
            TokenKind::Ge => CompareOp::Ge,
            other => {
                return Err(ProcessError::Parse {
                    offset: self.offset(),
                    message: format!("expected a comparison operator, found {other}"),
                })
            }
        };
        self.advance();
        Ok(op)
    }

    fn literal(&mut self) -> Result<Value> {
        let value = match self.peek().clone() {
            TokenKind::Int(v) => Value::Int(v),
            TokenKind::Float(v) => Value::Float(v),
            TokenKind::Str(s) => Value::Str(s),
            TokenKind::True => Value::Bool(true),
            TokenKind::False => Value::Bool(false),
            // A bare identifier is a bare-word string (the paper writes
            // e.g. `Classification = Text` without quotes in places).
            TokenKind::Ident(s) => Value::Str(s),
            other => {
                return Err(ProcessError::Parse {
                    offset: self.offset(),
                    message: format!("expected a literal, found {other}"),
                })
            }
        };
        self.advance();
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_process() {
        let ast = parse_process("BEGIN END").unwrap();
        assert!(ast.body.is_empty());
    }

    #[test]
    fn sequence() {
        let ast = parse_process("BEGIN POD; P3DR1; END").unwrap();
        assert_eq!(ast.activities(), vec!["POD", "P3DR1"]);
    }

    #[test]
    fn fork_join() {
        let ast = parse_process("BEGIN FORK { { A; }, { B; C; } } JOIN; END").unwrap();
        match &ast.body[0] {
            Stmt::Concurrent(branches) => {
                assert_eq!(branches.len(), 2);
                assert_eq!(branches[1].len(), 2);
            }
            other => panic!("expected Concurrent, got {other:?}"),
        }
    }

    #[test]
    fn fork_needs_two_branches() {
        assert!(parse_process("BEGIN FORK { { A; } } JOIN; END").is_err());
    }

    #[test]
    fn choice_merge_with_conditions() {
        let src = r#"BEGIN CHOICE {
            COND { D1.Classification = "3D Model" } { A; },
            COND { true } { B; }
        } MERGE; END"#;
        let ast = parse_process(src).unwrap();
        match &ast.body[0] {
            Stmt::Selective(branches) => {
                assert_eq!(branches.len(), 2);
                assert_eq!(branches[1].0, Condition::True);
            }
            other => panic!("expected Selective, got {other:?}"),
        }
    }

    #[test]
    fn iterative_do_while() {
        let src = "BEGIN ITERATIVE { COND { D10.Value > 8 } } { POR; PSF; }; END";
        let ast = parse_process(src).unwrap();
        match &ast.body[0] {
            Stmt::Iterative { cond, body } => {
                assert_eq!(body.len(), 2);
                assert_eq!(cond.to_string(), "D10.Value > 8");
            }
            other => panic!("expected Iterative, got {other:?}"),
        }
    }

    #[test]
    fn nested_constructs() {
        let src = "BEGIN ITERATIVE { COND { true } } { FORK { { A; }, { B; } } JOIN; }; END";
        let ast = parse_process(src).unwrap();
        assert_eq!(ast.depth(), 3);
        assert_eq!(ast.node_count(), 4);
    }

    #[test]
    fn condition_precedence_and_over_or() {
        let c = parse_condition("true or true and not true").unwrap();
        // Parses as: true or (true and (not true))
        match c {
            Condition::Or(_, rhs) => match *rhs {
                Condition::And(_, _) => {}
                other => panic!("expected And under Or, got {other:?}"),
            },
            other => panic!("expected Or at top, got {other:?}"),
        }
    }

    #[test]
    fn parenthesised_condition() {
        let c = parse_condition("(true or true) and exists D1").unwrap();
        match c {
            Condition::And(lhs, _) => match *lhs {
                Condition::Or(_, _) => {}
                other => panic!("expected Or under And, got {other:?}"),
            },
            other => panic!("expected And at top, got {other:?}"),
        }
    }

    #[test]
    fn condition_literals() {
        assert_eq!(
            parse_condition("D.X = 5").unwrap(),
            Condition::compare("D", "X", CompareOp::Eq, 5i64)
        );
        assert_eq!(
            parse_condition("D.X >= 2.5").unwrap(),
            Condition::compare("D", "X", CompareOp::Ge, 2.5)
        );
        assert_eq!(
            parse_condition("D.X != \"s\"").unwrap(),
            Condition::compare("D", "X", CompareOp::Ne, Value::str("s"))
        );
        assert_eq!(
            parse_condition("D.X = Text").unwrap(),
            Condition::compare("D", "X", CompareOp::Eq, Value::str("Text"))
        );
        assert_eq!(
            parse_condition("D.Flag = true").unwrap(),
            Condition::compare("D", "Flag", CompareOp::Eq, true)
        );
    }

    #[test]
    fn errors_carry_offsets() {
        match parse_process("BEGIN POD P3DR1; END") {
            Err(ProcessError::Parse { offset, message }) => {
                assert_eq!(offset, 10); // at `P3DR1`, expecting `;`
                assert!(message.contains("`;`"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_end_is_an_error() {
        assert!(parse_process("BEGIN POD;").is_err());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse_process("BEGIN END extra").is_err());
        assert!(parse_condition("true extra").is_err());
    }

    #[test]
    fn statement_requires_semicolon() {
        assert!(parse_process("BEGIN FORK { { A; }, { B; } } JOIN END").is_err());
    }
}
