//! Error type shared by the process-description machinery.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ProcessError>;

/// Errors raised while parsing, validating, lowering, recovering or
/// enacting process descriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset in the source text.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// Byte offset in the source text.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// The activity/transition graph violates a structural rule.
    Structure(String),
    /// A graph could not be recovered into a structured AST.
    Unstructured(String),
    /// The ATN machine was driven incorrectly (e.g. completing an activity
    /// that is not running).
    Enactment(String),
    /// A condition referenced a data item or property that does not exist
    /// (only raised in strict evaluation mode).
    UnknownData(String),
}

impl fmt::Display for ProcessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lex { offset, message } => write!(f, "lex error at byte {offset}: {message}"),
            Self::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            Self::Structure(msg) => write!(f, "structural error: {msg}"),
            Self::Unstructured(msg) => write!(f, "cannot recover structure: {msg}"),
            Self::Enactment(msg) => write!(f, "enactment error: {msg}"),
            Self::UnknownData(msg) => write!(f, "unknown data: {msg}"),
        }
    }
}

impl std::error::Error for ProcessError {}

impl ProcessError {
    /// The byte offset carried by lexer/parser errors, if any.
    pub fn offset(&self) -> Option<usize> {
        match self {
            Self::Lex { offset, .. } | Self::Parse { offset, .. } => Some(*offset),
            _ => None,
        }
    }

    /// Render the error with a 1-based `line:column` position computed
    /// against the original source text — what the CLI shows users.
    pub fn with_position(&self, source: &str) -> String {
        match self.offset() {
            Some(offset) => {
                let (line, column) = offset_to_line_col(source, offset);
                format!("{self} (at line {line}, column {column})")
            }
            None => self.to_string(),
        }
    }
}

/// Convert a byte offset into 1-based `(line, column)` coordinates.
/// Offsets past the end report the position after the last character.
pub fn offset_to_line_col(source: &str, offset: usize) -> (usize, usize) {
    let clamped = offset.min(source.len());
    let before = &source[..clamped];
    let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let column = before
        .rsplit_once('\n')
        .map(|(_, tail)| tail.chars().count())
        .unwrap_or_else(|| before.chars().count())
        + 1;
    (line, column)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offsets() {
        let e = ProcessError::Parse {
            offset: 12,
            message: "expected `;`".into(),
        };
        assert_eq!(e.to_string(), "parse error at byte 12: expected `;`");
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error>(_: &E) {}
        takes_err(&ProcessError::Structure("x".into()));
    }

    #[test]
    fn offset_to_line_col_basics() {
        let src = "BEGIN\n  POD;\n  P3DR;\nEND";
        assert_eq!(offset_to_line_col(src, 0), (1, 1));
        assert_eq!(offset_to_line_col(src, 5), (1, 6)); // end of BEGIN
        assert_eq!(offset_to_line_col(src, 6), (2, 1)); // first char of line 2
        assert_eq!(offset_to_line_col(src, 8), (2, 3)); // `P` of POD
        assert_eq!(offset_to_line_col(src, 100), (4, 4)); // clamped to end
        assert_eq!(offset_to_line_col("", 0), (1, 1));
    }

    #[test]
    fn with_position_decorates_parse_errors() {
        let src = "BEGIN\n  POD\nEND"; // missing semicolon: error at END
        let err = crate::parser::parse_process(src).unwrap_err();
        let rendered = err.with_position(src);
        assert!(rendered.contains("line 3, column 1"), "{rendered}");
        // Non-positioned errors render unchanged.
        let plain = ProcessError::Structure("x".into());
        assert_eq!(plain.with_position(src), plain.to_string());
        assert_eq!(plain.offset(), None);
    }
}
