//! Case descriptions.
//!
//! "A case description provides additional information for a particular
//! instance of the process the user wishes to perform, e.g., it provides
//! the location of the actual data for the computation, additional
//! constraints, and conditions" (§2).  In Fig. 13 the case description
//! `CD-3DSD` names the initial data set `{D1 … D7}`, the goal result set
//! `{D12}`, and the constraint `Cons1` steering the refinement loop.

use crate::condition::Condition;
use crate::data::{DataItem, DataState};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A case description: the per-run instantiation of a process description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseDescription {
    /// Name (e.g. `CD-3DSD`).
    pub name: String,
    /// The initial data items available when enactment starts.
    pub initial_data: DataState,
    /// Goal specifications: conditions that must hold on the final data
    /// state.  Each has a label for reporting (e.g. `G1`).
    pub goals: Vec<(String, Condition)>,
    /// Named constraints (e.g. `Cons1`) that the coordination service
    /// consults; loop and choice conditions in the process description may
    /// reference the same data these constrain.
    pub constraints: BTreeMap<String, Condition>,
    /// Data ids the user designates as results.
    pub result_set: Vec<String>,
}

impl CaseDescription {
    /// An empty case description.
    pub fn new(name: impl Into<String>) -> Self {
        CaseDescription {
            name: name.into(),
            initial_data: DataState::new(),
            goals: Vec::new(),
            constraints: BTreeMap::new(),
            result_set: Vec::new(),
        }
    }

    /// Add an initial data item (builder style).
    pub fn with_data(mut self, id: impl Into<String>, item: DataItem) -> Self {
        self.initial_data.insert(id, item);
        self
    }

    /// Add a goal specification (builder style).
    pub fn with_goal(mut self, label: impl Into<String>, cond: Condition) -> Self {
        self.goals.push((label.into(), cond));
        self
    }

    /// Add a named constraint (builder style).
    pub fn with_constraint(mut self, name: impl Into<String>, cond: Condition) -> Self {
        self.constraints.insert(name.into(), cond);
        self
    }

    /// Designate a result data id (builder style).
    pub fn with_result(mut self, id: impl Into<String>) -> Self {
        self.result_set.push(id.into());
        self
    }

    /// How many of the goal specifications hold in `state`?
    pub fn satisfied_goals(&self, state: &DataState) -> usize {
        self.goals.iter().filter(|(_, c)| c.eval(state)).count()
    }

    /// Do all goal specifications hold in `state`?
    pub fn goals_met(&self, state: &DataState) -> bool {
        self.satisfied_goals(state) == self.goals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::CompareOp;
    use gridflow_ontology::Value;

    fn case() -> CaseDescription {
        CaseDescription::new("CD-3DSD")
            .with_data("D1", DataItem::classified("POD-Parameter"))
            .with_data("D7", DataItem::classified("2D Image"))
            .with_goal("G1", Condition::classified("D12", "Resolution File"))
            .with_goal("G2", Condition::compare("D10", "Value", CompareOp::Le, 8.0))
            .with_constraint(
                "Cons1",
                Condition::classified("D10", "Resolution File").and(Condition::compare(
                    "D10",
                    "Value",
                    CompareOp::Gt,
                    8i64,
                )),
            )
            .with_result("D12")
    }

    #[test]
    fn builder_populates_fields() {
        let c = case();
        assert_eq!(c.initial_data.len(), 2);
        assert_eq!(c.goals.len(), 2);
        assert!(c.constraints.contains_key("Cons1"));
        assert_eq!(c.result_set, vec!["D12"]);
    }

    #[test]
    fn satisfied_goals_counts() {
        let c = case();
        let mut state = DataState::new();
        assert_eq!(c.satisfied_goals(&state), 0);
        state.insert("D12", DataItem::classified("Resolution File"));
        assert_eq!(c.satisfied_goals(&state), 1);
        state.insert(
            "D10",
            DataItem::classified("Resolution File").with("Value", Value::Float(7.5)),
        );
        assert_eq!(c.satisfied_goals(&state), 2);
        assert!(c.goals_met(&state));
    }

    #[test]
    fn no_goals_means_trivially_met() {
        let c = CaseDescription::new("empty");
        assert!(c.goals_met(&DataState::new()));
    }

    #[test]
    fn serde_round_trip() {
        let c = case();
        let json = serde_json::to_string(&c).unwrap();
        let back: CaseDescription = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
