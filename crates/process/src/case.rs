//! Case descriptions.
//!
//! "A case description provides additional information for a particular
//! instance of the process the user wishes to perform, e.g., it provides
//! the location of the actual data for the computation, additional
//! constraints, and conditions" (§2).  In Fig. 13 the case description
//! `CD-3DSD` names the initial data set `{D1 … D7}`, the goal result set
//! `{D12}`, and the constraint `Cons1` steering the refinement loop.

use crate::condition::{AnyClassifiedGoal, Condition};
use crate::data::{DataItem, DataState};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// A case description: the per-run instantiation of a process description.
///
/// Goal evaluation carries a lazily-built compiled cache (see
/// [`Condition::compile_any_classified`]) so fleet-scale `Or`-chain
/// goals cost O(|state|) instead of O(fleet) per check.  The cache is
/// invisible: skipped by serde, ignored by `PartialEq`, reset by the
/// goal builder.  The fields stay public for construction ergonomics —
/// code that mutates `goals` directly (none in this workspace does;
/// [`CaseDescription::with_goal`] is the only writer) must construct a
/// fresh value instead of editing in place, or the cache goes stale.
#[derive(Debug, Clone)]
pub struct CaseDescription {
    /// Name (e.g. `CD-3DSD`).
    pub name: String,
    /// The initial data items available when enactment starts.
    pub initial_data: DataState,
    /// Goal specifications: conditions that must hold on the final data
    /// state.  Each has a label for reporting (e.g. `G1`).
    pub goals: Vec<(String, Condition)>,
    /// Named constraints (e.g. `Cons1`) that the coordination service
    /// consults; loop and choice conditions in the process description may
    /// reference the same data these constrain.
    pub constraints: BTreeMap<String, Condition>,
    /// Data ids the user designates as results.
    pub result_set: Vec<String>,
    /// Per-goal compiled fast paths, built on first evaluation.  `None`
    /// entries fall back to [`Condition::eval`].
    compiled_goals: OnceLock<Vec<Option<AnyClassifiedGoal>>>,
}

// Hand-written serde impls (the derive has no way to skip the cache):
// the wire format is exactly the historical five-field object, and
// deserialization rebuilds with an empty cache.
impl Serialize for CaseDescription {
    fn to_json_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("name".to_string(), self.name.to_json_value());
        m.insert(
            "initial_data".to_string(),
            self.initial_data.to_json_value(),
        );
        m.insert("goals".to_string(), self.goals.to_json_value());
        m.insert("constraints".to_string(), self.constraints.to_json_value());
        m.insert("result_set".to_string(), self.result_set.to_json_value());
        serde::Value::Object(m)
    }
}

impl Deserialize for CaseDescription {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v.as_object().ok_or_else(|| {
            serde::Error::custom(format!(
                "expected object for struct CaseDescription, got {v:?}"
            ))
        })?;
        Ok(CaseDescription {
            name: serde::__field(obj, "name", "CaseDescription")?,
            initial_data: serde::__field(obj, "initial_data", "CaseDescription")?,
            goals: serde::__field(obj, "goals", "CaseDescription")?,
            constraints: serde::__field(obj, "constraints", "CaseDescription")?,
            result_set: serde::__field(obj, "result_set", "CaseDescription")?,
            compiled_goals: OnceLock::new(),
        })
    }
}

impl PartialEq for CaseDescription {
    /// Semantic equality only — the compiled-goal cache is derived
    /// state and two descriptions differing only in whether the cache
    /// has been populated are the same description.
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.initial_data == other.initial_data
            && self.goals == other.goals
            && self.constraints == other.constraints
            && self.result_set == other.result_set
    }
}

impl CaseDescription {
    /// An empty case description.
    pub fn new(name: impl Into<String>) -> Self {
        CaseDescription {
            name: name.into(),
            initial_data: DataState::new(),
            goals: Vec::new(),
            constraints: BTreeMap::new(),
            result_set: Vec::new(),
            compiled_goals: OnceLock::new(),
        }
    }

    /// Add an initial data item (builder style).
    pub fn with_data(mut self, id: impl Into<String>, item: DataItem) -> Self {
        self.initial_data.insert(id, item);
        self
    }

    /// Add a goal specification (builder style).
    pub fn with_goal(mut self, label: impl Into<String>, cond: Condition) -> Self {
        self.goals.push((label.into(), cond));
        // The cache indexes goals positionally; a new goal invalidates it.
        self.compiled_goals = OnceLock::new();
        self
    }

    /// Add a named constraint (builder style).
    pub fn with_constraint(mut self, name: impl Into<String>, cond: Condition) -> Self {
        self.constraints.insert(name.into(), cond);
        self
    }

    /// Designate a result data id (builder style).
    pub fn with_result(mut self, id: impl Into<String>) -> Self {
        self.result_set.push(id.into());
        self
    }

    /// The per-goal compiled fast paths, building them on first use.
    /// Shared across a fleet through `Arc<CaseDescription>`: the whole
    /// fleet compiles each goal once.
    fn compiled(&self) -> &[Option<AnyClassifiedGoal>] {
        self.compiled_goals.get_or_init(|| {
            self.goals
                .iter()
                .map(|(_, c)| c.compile_any_classified())
                .collect()
        })
    }

    /// How many of the goal specifications hold in `state`?
    pub fn satisfied_goals(&self, state: &DataState) -> usize {
        self.compiled()
            .iter()
            .zip(self.goals.iter())
            .filter(|(fast, (_, cond))| match fast {
                Some(g) => g.eval(state),
                None => cond.eval(state),
            })
            .count()
    }

    /// Do all goal specifications hold in `state`?
    pub fn goals_met(&self, state: &DataState) -> bool {
        self.satisfied_goals(state) == self.goals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::CompareOp;
    use gridflow_ontology::Value;

    fn case() -> CaseDescription {
        CaseDescription::new("CD-3DSD")
            .with_data("D1", DataItem::classified("POD-Parameter"))
            .with_data("D7", DataItem::classified("2D Image"))
            .with_goal("G1", Condition::classified("D12", "Resolution File"))
            .with_goal("G2", Condition::compare("D10", "Value", CompareOp::Le, 8.0))
            .with_constraint(
                "Cons1",
                Condition::classified("D10", "Resolution File").and(Condition::compare(
                    "D10",
                    "Value",
                    CompareOp::Gt,
                    8i64,
                )),
            )
            .with_result("D12")
    }

    #[test]
    fn builder_populates_fields() {
        let c = case();
        assert_eq!(c.initial_data.len(), 2);
        assert_eq!(c.goals.len(), 2);
        assert!(c.constraints.contains_key("Cons1"));
        assert_eq!(c.result_set, vec!["D12"]);
    }

    #[test]
    fn satisfied_goals_counts() {
        let c = case();
        let mut state = DataState::new();
        assert_eq!(c.satisfied_goals(&state), 0);
        state.insert("D12", DataItem::classified("Resolution File"));
        assert_eq!(c.satisfied_goals(&state), 1);
        state.insert(
            "D10",
            DataItem::classified("Resolution File").with("Value", Value::Float(7.5)),
        );
        assert_eq!(c.satisfied_goals(&state), 2);
        assert!(c.goals_met(&state));
    }

    #[test]
    fn no_goals_means_trivially_met() {
        let c = CaseDescription::new("empty");
        assert!(c.goals_met(&DataState::new()));
    }

    #[test]
    fn serde_round_trip() {
        let c = case();
        let json = serde_json::to_string(&c).unwrap();
        let back: CaseDescription = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn compiled_or_chain_goal_matches_naive_eval() {
        // The fleet shape: any of D101..D140 classified "Plated".
        let chain = (101..=140)
            .map(|i| Condition::classified(format!("D{i}"), "Plated"))
            .reduce(Condition::or)
            .unwrap();
        let c = CaseDescription::new("fleet").with_goal("G", chain.clone());
        let mut state = DataState::new();
        state.insert("D1", DataItem::classified("Raw"));
        assert_eq!(c.goals_met(&state), chain.eval(&state));
        assert!(!c.goals_met(&state));
        // An id outside the watched range does not satisfy it.
        state.insert("D999", DataItem::classified("Plated"));
        assert!(!c.goals_met(&state));
        // A watched id with the wrong class does not satisfy it.
        state.insert("D105", DataItem::classified("Raw"));
        assert!(!c.goals_met(&state));
        // A watched id with the right class does.
        state.insert("D117", DataItem::classified("Plated"));
        assert_eq!(c.goals_met(&state), chain.eval(&state));
        assert!(c.goals_met(&state));
    }

    #[test]
    fn mixed_shape_goals_fall_back_to_naive_eval() {
        // Not a pure same-class Or-chain: must not compile, must still
        // evaluate correctly.
        let cond = Condition::classified("D1", "A").or(Condition::classified("D2", "B"));
        assert!(cond.compile_any_classified().is_none());
        let c = CaseDescription::new("mixed").with_goal("G", cond);
        let state = DataState::new().with("D2", DataItem::classified("B"));
        assert!(c.goals_met(&state));
    }
}
