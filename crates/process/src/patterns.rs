//! Workflow pattern builders: programmatic constructors for the
//! composition shapes the paper's §1 motivates ("iterative execution
//! with a number of cycles that cannot be pre-determined, concurrent
//! execution of coarse grain or fine grain computations, and multiple
//! choices").
//!
//! Each builder produces a [`ProcessAst`] (or statement) that lowers to a
//! well-formed graph; they compose freely:
//!
//! ```
//! use gridflow_process::patterns;
//! use gridflow_process::{lower::lower, Condition};
//!
//! // stage-in → (analysis ∥ rendering) → publish, retried while a
//! // quality condition fails:
//! let body = patterns::sequence([
//!     patterns::activity("stage-in"),
//!     patterns::fan_out(["analyze", "render"]),
//!     patterns::activity("publish"),
//! ]);
//! let ast = patterns::process([patterns::do_while(
//!     Condition::compare("Q", "Value", gridflow_process::CompareOp::Lt, 0.9),
//!     body,
//! )]);
//! lower("pipeline", &ast).unwrap().validate().unwrap();
//! ```

use crate::ast::{ProcessAst, Stmt};
use crate::condition::Condition;

/// One end-user activity.
pub fn activity(name: impl Into<String>) -> Stmt {
    Stmt::Activity(name.into())
}

/// A sequential pipeline of statements (helper for readability; a
/// statement list *is* a sequence).
pub fn sequence<I: IntoIterator<Item = Stmt>>(stages: I) -> Vec<Stmt> {
    stages.into_iter().collect()
}

/// Fan-out: run one activity per name concurrently and join
/// (scatter/gather over services).
pub fn fan_out<I, S>(names: I) -> Stmt
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    Stmt::Concurrent(names.into_iter().map(|n| vec![activity(n)]).collect())
}

/// Concurrent branches, each a full statement list.
pub fn concurrent<I: IntoIterator<Item = Vec<Stmt>>>(branches: I) -> Stmt {
    Stmt::Concurrent(branches.into_iter().collect())
}

/// A guarded if/else: run `then_branch` when `cond` holds, otherwise
/// `else_branch`.
pub fn if_else(cond: Condition, then_branch: Vec<Stmt>, else_branch: Vec<Stmt>) -> Stmt {
    Stmt::Selective(vec![(cond, then_branch), (Condition::True, else_branch)])
}

/// A guarded multi-way choice; the final branch is the unguarded default.
pub fn choose<I: IntoIterator<Item = (Condition, Vec<Stmt>)>>(
    guarded: I,
    default: Vec<Stmt>,
) -> Stmt {
    let mut branches: Vec<(Condition, Vec<Stmt>)> = guarded.into_iter().collect();
    branches.push((Condition::True, default));
    Stmt::Selective(branches)
}

/// Do-while: execute the body, repeat while `cond` holds afterwards —
/// the Fig. 10 refinement-loop shape.
pub fn do_while<I: IntoIterator<Item = Stmt>>(cond: Condition, body: I) -> Stmt {
    Stmt::Iterative {
        cond,
        body: body.into_iter().collect(),
    }
}

/// Replicated fan-out: `copies` concurrent executions of the same
/// service (the two-stream / odd-even reconstruction idiom of §4).
pub fn replicate(name: impl Into<String>, copies: usize) -> Stmt {
    let name = name.into();
    Stmt::Concurrent(
        (0..copies.max(2))
            .map(|_| vec![activity(name.clone())])
            .collect(),
    )
}

/// Wrap a body as a full process description.
pub fn process<I: IntoIterator<Item = Stmt>>(body: I) -> ProcessAst {
    ProcessAst::new(body.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{DataItem, DataState};
    use crate::lower::lower;
    use crate::{AtnMachine, CompareOp};
    use gridflow_ontology::Value;

    fn validates(ast: &ProcessAst) -> crate::graph::ProcessGraph {
        let g = lower("pattern", ast).expect("lowers");
        g.validate().expect("valid");
        g
    }

    #[test]
    fn pipeline_with_fan_out() {
        let ast = process(sequence([
            activity("stage-in"),
            fan_out(["analyze", "render", "index"]),
            activity("publish"),
        ]));
        let g = validates(&ast);
        assert_eq!(g.end_user_activities().count(), 5);
        assert_eq!(ast.depth(), 2);
    }

    #[test]
    fn replicate_builds_n_concurrent_copies() {
        let ast = process([replicate("P3DR", 3)]);
        let g = validates(&ast);
        assert_eq!(g.end_user_activities().count(), 3);
        // All three share the service name.
        assert!(g
            .end_user_activities()
            .all(|a| a.service.as_deref() == Some("P3DR")));
        // Degenerate copy counts clamp to 2 (a 1-branch Fork is invalid).
        let ast = process([replicate("X", 0)]);
        validates(&ast);
    }

    #[test]
    fn if_else_takes_the_right_branch() {
        let cond = Condition::compare("D", "Size", CompareOp::Gt, 100i64);
        let ast = process([if_else(
            cond,
            vec![activity("big-path")],
            vec![activity("small-path")],
        )]);
        let g = validates(&ast);
        let mut state = DataState::new();
        state.insert("D", DataItem::new().with("Size", Value::Int(500)));
        let mut m = AtnMachine::new(&g).unwrap();
        m.start(&state).unwrap();
        assert_eq!(m.ready(), &["big-path".to_owned()]);

        state.set_property("D", "Size", Value::Int(5));
        let mut m = AtnMachine::new(&g).unwrap();
        m.start(&state).unwrap();
        assert_eq!(m.ready(), &["small-path".to_owned()]);
    }

    #[test]
    fn choose_falls_through_to_default() {
        let ast = process([choose(
            [
                (Condition::Exists("A".into()), vec![activity("on-a")]),
                (Condition::Exists("B".into()), vec![activity("on-b")]),
            ],
            vec![activity("fallback")],
        )]);
        let g = validates(&ast);
        let mut m = AtnMachine::new(&g).unwrap();
        m.start(&DataState::new()).unwrap();
        assert_eq!(m.ready(), &["fallback".to_owned()]);
        let state = DataState::new().with("B", DataItem::new());
        let mut m = AtnMachine::new(&g).unwrap();
        m.start(&state).unwrap();
        assert_eq!(m.ready(), &["on-b".to_owned()]);
    }

    #[test]
    fn do_while_loops_until_quality_reached() {
        let ast = process([do_while(
            Condition::compare("Q", "Value", CompareOp::Lt, 3i64),
            [activity("improve")],
        )]);
        let g = validates(&ast);
        let mut state = DataState::new().with("Q", DataItem::new().with("Value", Value::Int(0)));
        let mut m = AtnMachine::new(&g).unwrap();
        m.start(&state).unwrap();
        let mut rounds = 0;
        while let Some(id) = m.ready().first().cloned() {
            m.begin_activity(&id).unwrap();
            rounds += 1;
            state.set_property("Q", "Value", Value::Int(rounds));
            m.complete_activity(&id, &state).unwrap();
        }
        assert!(m.is_finished());
        assert_eq!(rounds, 3);
    }

    #[test]
    fn patterns_compose_and_round_trip() {
        let ast = process([do_while(
            Condition::Exists("retry".into()).negate(),
            sequence([
                activity("fetch"),
                if_else(
                    Condition::classified("D", "fresh"),
                    vec![fan_out(["parse", "validate"])],
                    vec![activity("refresh")],
                ),
            ]),
        )]);
        let g = validates(&ast);
        let back = crate::recover::recover(&g).unwrap();
        assert_eq!(back, ast);
    }
}
