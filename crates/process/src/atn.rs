//! The abstract ATN machine.
//!
//! "The coordination service implements an abstract ATN machine" (§2): it
//! receives a case description and "controls the enactment of the
//! workflow".  [`AtnMachine`] is that machine, decoupled from any agent
//! runtime: it holds tokens on a [`ProcessGraph`], exposes the set of
//! end-user activities that are ready to execute, and — when the caller
//! reports an activity complete — propagates tokens through the
//! flow-control activities (Fork triggers all successors, Join waits for
//! all predecessors, Choice selects one successor by evaluating its
//! condition set against the current [`DataState`], Merge fires on any
//! predecessor).
//!
//! The driver loop (the coordination service, the plan simulator, or a
//! test) is:
//!
//! ```
//! use gridflow_process::{parser::parse_process, lower::lower, AtnMachine, DataState};
//!
//! let ast = parse_process("BEGIN A; B; END").unwrap();
//! let graph = lower("demo", &ast).unwrap();
//! let mut machine = AtnMachine::new(&graph).unwrap();
//! let state = DataState::new();
//! machine.start(&state).unwrap();
//! while let Some(id) = machine.ready().first().cloned() {
//!     machine.begin_activity(&id).unwrap();
//!     // … run the service, update the data state …
//!     machine.complete_activity(&id, &state).unwrap();
//! }
//! assert!(machine.is_finished());
//! ```

use crate::data::DataState;
use crate::error::{ProcessError, Result};
use crate::graph::{ActivityKind, ProcessGraph, Transition};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Overall status of an enactment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AtnStatus {
    /// Not yet started.
    NotStarted,
    /// Started; activities are ready or running.
    Active,
    /// The End activity fired; enactment is complete.
    Finished,
    /// No activities are ready or running but End has not fired — the
    /// workflow is stuck (e.g. a Join waiting on a branch that can no
    /// longer deliver).  A well-formed graph never reaches this.
    Stuck,
}

/// One event of the enactment trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EnactmentEvent {
    /// Enactment started (Begin fired).
    Started,
    /// An end-user activity became ready.
    Enabled(String),
    /// The caller started a ready activity.
    ActivityStarted(String),
    /// The caller completed a running activity.
    ActivityCompleted(String),
    /// A Fork triggered all of its successors.
    ForkTriggered(String),
    /// A Join received its final missing predecessor and fired.
    JoinFired(String),
    /// A Merge fired on an arriving predecessor.
    MergeFired(String),
    /// A Choice selected a transition (by transition id).
    ChoiceTaken {
        /// The Choice activity.
        choice: String,
        /// The selected transition.
        transition: String,
    },
    /// The End activity fired.
    Finished,
}

/// A serializable snapshot of an [`AtnMachine`]'s mutable state —
/// everything except the borrowed graph.  Supports the checkpointing
/// §1 of the paper calls for on long-lasting tasks: snapshot between
/// activity completions, persist, and [`AtnMachine::restore`] later
/// against the same graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtnSnapshot {
    /// Join id → ids of incoming *transitions* whose tokens have arrived.
    join_arrivals: BTreeMap<String, BTreeSet<String>>,
    ready: Vec<String>,
    running: BTreeSet<String>,
    started: bool,
    finished: bool,
    executions: BTreeMap<String, usize>,
    trace: Vec<EnactmentEvent>,
}

/// Token-game interpreter over a process graph.
#[derive(Debug, Clone)]
pub struct AtnMachine<'g> {
    graph: &'g ProcessGraph,
    /// Join id → set of incoming *transition* ids whose tokens have
    /// arrived.  Tracking transitions (not predecessor activities) keeps
    /// the count right when several parallel edges share endpoints —
    /// e.g. a Fork with two empty branches has two distinct FORK→JOIN
    /// transitions.
    join_arrivals: BTreeMap<String, BTreeSet<String>>,
    /// End-user activities ready to run (duplicates possible across loop
    /// iterations, though never simultaneously for well-formed graphs).
    ready: Vec<String>,
    /// End-user activities currently running.
    running: BTreeSet<String>,
    started: bool,
    finished: bool,
    /// Number of times each activity has executed (for loop statistics).
    executions: BTreeMap<String, usize>,
    trace: Vec<EnactmentEvent>,
}

impl<'g> AtnMachine<'g> {
    /// Build a machine over a validated graph.
    pub fn new(graph: &'g ProcessGraph) -> Result<Self> {
        graph.validate()?;
        Ok(AtnMachine {
            graph,
            join_arrivals: BTreeMap::new(),
            ready: Vec::new(),
            running: BTreeSet::new(),
            started: false,
            finished: false,
            executions: BTreeMap::new(),
            trace: Vec::new(),
        })
    }

    /// Fire the Begin activity and propagate.
    pub fn start(&mut self, state: &DataState) -> Result<()> {
        if self.started {
            return Err(ProcessError::Enactment("machine already started".into()));
        }
        self.started = true;
        self.trace.push(EnactmentEvent::Started);
        let begin = self.graph.begin().expect("validated").id.clone();
        self.record_execution(&begin);
        let out = self.sole_outgoing(&begin)?;
        self.fire(&out, state)
    }

    /// The unique outgoing transition of a single-successor activity.
    fn sole_outgoing(&self, id: &str) -> Result<Transition> {
        let out = self.graph.outgoing(id);
        match out.as_slice() {
            [t] => Ok((*t).clone()),
            _ => Err(ProcessError::Enactment(format!(
                "activity `{id}` has {} outgoing transitions, expected exactly 1",
                out.len()
            ))),
        }
    }

    /// End-user activities currently ready to run.
    pub fn ready(&self) -> &[String] {
        &self.ready
    }

    /// End-user activities currently running.
    pub fn running(&self) -> impl Iterator<Item = &str> {
        self.running.iter().map(String::as_str)
    }

    /// Has the End activity fired?
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Overall status.
    pub fn status(&self) -> AtnStatus {
        if !self.started {
            AtnStatus::NotStarted
        } else if self.finished {
            AtnStatus::Finished
        } else if self.ready.is_empty() && self.running.is_empty() {
            AtnStatus::Stuck
        } else {
            AtnStatus::Active
        }
    }

    /// The enactment trace so far.
    pub fn trace(&self) -> &[EnactmentEvent] {
        &self.trace
    }

    /// Number of times `id` has executed (flow-control activities
    /// included).
    pub fn executions(&self, id: &str) -> usize {
        self.executions.get(id).copied().unwrap_or(0)
    }

    /// Total number of activity executions so far.
    pub fn total_executions(&self) -> usize {
        self.executions.values().sum()
    }

    /// Capture the machine's mutable state for checkpointing.
    pub fn snapshot(&self) -> AtnSnapshot {
        AtnSnapshot {
            join_arrivals: self.join_arrivals.clone(),
            ready: self.ready.clone(),
            running: self.running.clone(),
            started: self.started,
            finished: self.finished,
            executions: self.executions.clone(),
            trace: self.trace.clone(),
        }
    }

    /// Capture the machine's mutable state by consuming the machine —
    /// [`AtnMachine::snapshot`] without the clones.  The hot path for
    /// drivers that are done stepping the machine and only need its
    /// state back (the per-tick restore → fire → snapshot cycle).
    pub fn into_snapshot(self) -> AtnSnapshot {
        AtnSnapshot {
            join_arrivals: self.join_arrivals,
            ready: self.ready,
            running: self.running,
            started: self.started,
            finished: self.finished,
            executions: self.executions,
            trace: self.trace,
        }
    }

    /// Rebuild a machine from a snapshot against the same (validated)
    /// graph.  The caller is responsible for pairing snapshots with the
    /// graph they were taken from; a mismatched graph surfaces as
    /// enactment errors on the next step.
    pub fn restore(graph: &'g ProcessGraph, snapshot: AtnSnapshot) -> Result<Self> {
        graph.validate()?;
        Ok(Self::restore_prevalidated(graph, snapshot))
    }

    /// [`AtnMachine::restore`] minus the graph validation: pure field
    /// moves, no allocation.  Only for callers that have already
    /// validated this exact graph (e.g. a prepare pass that built a
    /// machine over it earlier in the same step); pairing it with an
    /// unvalidated graph surfaces as enactment errors on the next step.
    pub fn restore_prevalidated(graph: &'g ProcessGraph, snapshot: AtnSnapshot) -> Self {
        AtnMachine {
            graph,
            join_arrivals: snapshot.join_arrivals,
            ready: snapshot.ready,
            running: snapshot.running,
            started: snapshot.started,
            finished: snapshot.finished,
            executions: snapshot.executions,
            trace: snapshot.trace,
        }
    }

    /// Move a ready activity into the running set.
    pub fn begin_activity(&mut self, id: &str) -> Result<()> {
        let Some(pos) = self.ready.iter().position(|r| r == id) else {
            return Err(ProcessError::Enactment(format!(
                "activity `{id}` is not ready"
            )));
        };
        self.ready.remove(pos);
        self.running.insert(id.to_owned());
        self.trace
            .push(EnactmentEvent::ActivityStarted(id.to_owned()));
        Ok(())
    }

    /// Report a running activity complete and propagate its token.  The
    /// `state` parameter is the data state *after* the activity's outputs
    /// have been applied; Choice conditions downstream observe it.
    pub fn complete_activity(&mut self, id: &str, state: &DataState) -> Result<()> {
        if !self.running.remove(id) {
            return Err(ProcessError::Enactment(format!(
                "activity `{id}` is not running"
            )));
        }
        self.trace
            .push(EnactmentEvent::ActivityCompleted(id.to_owned()));
        self.record_execution(id);
        let out = self.sole_outgoing(id)?;
        self.fire(&out, state)
    }

    /// Convenience: start + complete in one call (for drivers that do not
    /// model activity duration).
    pub fn run_activity(&mut self, id: &str, state: &DataState) -> Result<()> {
        self.begin_activity(id)?;
        self.complete_activity(id, state)
    }

    fn record_execution(&mut self, id: &str) {
        *self.executions.entry(id.to_owned()).or_insert(0) += 1;
    }

    /// A token travels along transition `via` and arrives at its
    /// destination.
    fn fire(&mut self, via: &Transition, state: &DataState) -> Result<()> {
        let node = via.dest.as_str();
        let decl = self
            .graph
            .activity(node)
            .ok_or_else(|| ProcessError::Enactment(format!("missing activity `{node}`")))?;
        match decl.kind {
            ActivityKind::Begin => Err(ProcessError::Enactment("token arrived at Begin".into())),
            ActivityKind::End => {
                self.record_execution(node);
                self.finished = true;
                self.trace.push(EnactmentEvent::Finished);
                Ok(())
            }
            ActivityKind::EndUser => {
                self.ready.push(node.to_owned());
                self.trace.push(EnactmentEvent::Enabled(node.to_owned()));
                Ok(())
            }
            ActivityKind::Fork => {
                self.record_execution(node);
                self.trace
                    .push(EnactmentEvent::ForkTriggered(node.to_owned()));
                let outs: Vec<Transition> =
                    self.graph.outgoing(node).into_iter().cloned().collect();
                for out in outs {
                    self.fire(&out, state)?;
                }
                Ok(())
            }
            ActivityKind::Join => {
                let arrivals = self.join_arrivals.entry(node.to_owned()).or_default();
                arrivals.insert(via.id.clone());
                let expected: BTreeSet<String> = self
                    .graph
                    .incoming(node)
                    .into_iter()
                    .map(|t| t.id.clone())
                    .collect();
                if *arrivals == expected {
                    self.join_arrivals.remove(node);
                    self.record_execution(node);
                    self.trace.push(EnactmentEvent::JoinFired(node.to_owned()));
                    let out = self.sole_outgoing(node)?;
                    self.fire(&out, state)
                } else {
                    Ok(())
                }
            }
            ActivityKind::Merge => {
                self.record_execution(node);
                self.trace.push(EnactmentEvent::MergeFired(node.to_owned()));
                let out = self.sole_outgoing(node)?;
                self.fire(&out, state)
            }
            ActivityKind::Choice => {
                self.record_execution(node);
                let chosen = self
                    .graph
                    .outgoing(node)
                    .into_iter()
                    .find(|t| t.condition.as_ref().map(|c| c.eval(state)).unwrap_or(true))
                    .cloned();
                match chosen {
                    Some(t) => {
                        self.trace.push(EnactmentEvent::ChoiceTaken {
                            choice: node.to_owned(),
                            transition: t.id.clone(),
                        });
                        self.fire(&t, state)
                    }
                    None => Err(ProcessError::Enactment(format!(
                        "no viable branch at Choice `{node}`"
                    ))),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataItem;
    use crate::lower::lower;
    use crate::parser::parse_process;
    use gridflow_ontology::Value;

    fn machine_for(src: &str) -> (ProcessGraph, DataState) {
        let ast = parse_process(src).unwrap();
        (lower("t", &ast).unwrap(), DataState::new())
    }

    /// Drive an enactment to completion, running ready activities FIFO and
    /// applying `update` after each.
    fn drive(
        graph: &ProcessGraph,
        mut state: DataState,
        mut update: impl FnMut(&str, &mut DataState),
    ) -> Vec<String> {
        let mut m = AtnMachine::new(graph).unwrap();
        m.start(&state).unwrap();
        let mut order = Vec::new();
        while let Some(id) = m.ready().first().cloned() {
            m.begin_activity(&id).unwrap();
            update(&id, &mut state);
            m.complete_activity(&id, &state).unwrap();
            order.push(id);
        }
        assert!(
            m.is_finished(),
            "machine did not finish; status {:?}",
            m.status()
        );
        order
    }

    #[test]
    fn sequence_executes_in_order() {
        let (g, s) = machine_for("BEGIN A; B; C; END");
        let order = drive(&g, s, |_, _| {});
        assert_eq!(order, vec!["A", "B", "C"]);
    }

    #[test]
    fn fork_enables_all_branches_join_waits_for_all() {
        let (g, s) = machine_for("BEGIN FORK { { A; }, { B; } } JOIN; C; END");
        let mut m = AtnMachine::new(&g).unwrap();
        m.start(&s).unwrap();
        // Both branches enabled simultaneously.
        assert_eq!(m.ready().len(), 2);
        m.run_activity("A", &s).unwrap();
        // Join must not have fired yet: C not enabled.
        assert_eq!(m.ready(), &["B".to_owned()]);
        m.run_activity("B", &s).unwrap();
        assert_eq!(m.ready(), &["C".to_owned()]);
        m.run_activity("C", &s).unwrap();
        assert!(m.is_finished());
    }

    #[test]
    fn choice_takes_first_true_branch() {
        let (g, mut s) = machine_for(
            "BEGIN CHOICE { COND { D.X = 1 } { A; }, COND { true } { B; } } MERGE; END",
        );
        s.insert("D", DataItem::new().with("X", Value::Int(1)));
        let order = drive(&g, s.clone(), |_, _| {});
        assert_eq!(order, vec!["A"]);

        s.set_property("D", "X", Value::Int(2));
        let order = drive(&g, s, |_, _| {});
        assert_eq!(order, vec!["B"]);
    }

    #[test]
    fn choice_with_no_viable_branch_errors() {
        let (g, s) = machine_for(
            "BEGIN CHOICE { COND { D.X = 1 } { A; }, COND { D.X = 2 } { B; } } MERGE; END",
        );
        let mut m = AtnMachine::new(&g).unwrap();
        let err = m.start(&s).unwrap_err();
        assert!(err.to_string().contains("no viable branch"));
    }

    #[test]
    fn iterative_loops_until_condition_false() {
        // Loop body increments D.N; continue while D.N < 3.
        let (g, mut s) = machine_for("BEGIN ITERATIVE { COND { D.N < 3 } } { A; }; END");
        s.insert("D", DataItem::new().with("N", Value::Int(0)));
        let order = drive(&g, s, |id, state| {
            if id == "A" {
                let n = state.property("D", "N").unwrap().as_int().unwrap();
                state.set_property("D", "N", Value::Int(n + 1));
            }
        });
        // Executes at N=0,1,2 and exits when N=3.
        assert_eq!(order, vec!["A", "A", "A"]);
    }

    #[test]
    fn execution_counts_track_loop_iterations() {
        let (g, mut s) = machine_for("BEGIN ITERATIVE { COND { D.N < 2 } } { A; }; END");
        s.insert("D", DataItem::new().with("N", Value::Int(0)));
        let mut m = AtnMachine::new(&g).unwrap();
        m.start(&s).unwrap();
        let mut state = s;
        while let Some(id) = m.ready().first().cloned() {
            m.begin_activity(&id).unwrap();
            let n = state.property("D", "N").unwrap().as_int().unwrap();
            state.set_property("D", "N", Value::Int(n + 1));
            m.complete_activity(&id, &state).unwrap();
        }
        assert!(m.is_finished());
        assert_eq!(m.executions("A"), 2);
        assert!(m.total_executions() >= 2 + 2); // + flow control + begin/end
    }

    #[test]
    fn protocol_violations_are_rejected() {
        let (g, s) = machine_for("BEGIN A; END");
        let mut m = AtnMachine::new(&g).unwrap();
        assert!(m.begin_activity("A").is_err()); // not started yet
        m.start(&s).unwrap();
        assert!(m.start(&s).is_err()); // double start
        assert!(m.complete_activity("A", &s).is_err()); // not running
        m.begin_activity("A").unwrap();
        assert!(m.begin_activity("A").is_err()); // already running
        m.complete_activity("A", &s).unwrap();
        assert!(m.is_finished());
    }

    #[test]
    fn trace_records_flow_events() {
        let (g, s) = machine_for("BEGIN FORK { { A; }, { B; } } JOIN; END");
        let mut m = AtnMachine::new(&g).unwrap();
        m.start(&s).unwrap();
        m.run_activity("A", &s).unwrap();
        m.run_activity("B", &s).unwrap();
        let trace = m.trace();
        assert!(trace
            .iter()
            .any(|e| matches!(e, EnactmentEvent::ForkTriggered(_))));
        assert!(trace
            .iter()
            .any(|e| matches!(e, EnactmentEvent::JoinFired(_))));
        assert!(matches!(trace.last(), Some(EnactmentEvent::Finished)));
    }

    #[test]
    fn status_transitions() {
        let (g, s) = machine_for("BEGIN A; END");
        let mut m = AtnMachine::new(&g).unwrap();
        assert_eq!(m.status(), AtnStatus::NotStarted);
        m.start(&s).unwrap();
        assert_eq!(m.status(), AtnStatus::Active);
        m.run_activity("A", &s).unwrap();
        assert_eq!(m.status(), AtnStatus::Finished);
    }

    #[test]
    fn snapshot_restore_resumes_mid_workflow() {
        let (g, s) = machine_for("BEGIN FORK { { A; }, { B; } } JOIN; C; END");
        let mut m = AtnMachine::new(&g).unwrap();
        m.start(&s).unwrap();
        m.run_activity("A", &s).unwrap();
        // Checkpoint with B still pending and the Join half-armed.
        let snapshot = m.snapshot();
        let json = serde_json::to_string(&snapshot).unwrap();
        drop(m);
        let restored: AtnSnapshot = serde_json::from_str(&json).unwrap();
        let mut m2 = AtnMachine::restore(&g, restored).unwrap();
        assert_eq!(m2.ready(), &["B".to_owned()]);
        assert_eq!(m2.executions("A"), 1);
        m2.run_activity("B", &s).unwrap();
        m2.run_activity("C", &s).unwrap();
        assert!(m2.is_finished());
        // The Join fired exactly once across the checkpoint boundary.
        let joins = m2
            .trace()
            .iter()
            .filter(|e| matches!(e, EnactmentEvent::JoinFired(_)))
            .count();
        assert_eq!(joins, 1);
    }

    #[test]
    fn restore_validates_the_graph() {
        let (g, s) = machine_for("BEGIN A; END");
        let mut m = AtnMachine::new(&g).unwrap();
        m.start(&s).unwrap();
        let snapshot = m.snapshot();
        let bad = ProcessGraph::new("empty");
        assert!(AtnMachine::restore(&bad, snapshot).is_err());
    }

    #[test]
    fn figure_10_workflow_enacts_with_two_refinement_iterations() {
        let src = "BEGIN POD; P3DR1; \
             ITERATIVE { COND { D10.Value > 8 } } { \
                POR; FORK { { P3DR2; }, { P3DR3; }, { P3DR4; } } JOIN; PSF; \
             }; END";
        let (g, mut s) = machine_for(src);
        // Resolution starts coarse (12 Å) and refines by 3 Å per PSF pass;
        // the loop continues while resolution > 8.
        s.insert("D10", DataItem::new().with("Value", Value::Float(12.0)));
        let order = drive(&g, s, |id, state| {
            if id == "PSF" {
                let v = state.property("D10", "Value").unwrap().as_float().unwrap();
                state.set_property("D10", "Value", Value::Float(v - 3.0));
            }
        });
        // POD, P3DR1, then 2 loop iterations (12→9 loops since 9>8; 9→6 exits).
        let psf_count = order.iter().filter(|a| *a == "PSF").count();
        assert_eq!(psf_count, 2);
        assert_eq!(order[0], "POD");
        assert_eq!(order[1], "P3DR1");
    }
}
