//! Structure recovery: activity/transition graph → structured AST.
//!
//! This is the right-to-left direction of the conversions in Figures 4–7:
//! Fork/Join pairs become concurrent statements, Choice/Merge pairs become
//! selective statements, and a Merge entered from upstream whose other
//! predecessor is a downstream Choice (a back edge) becomes an iterative
//! statement — the loop shape of Figures 7 and 10.
//!
//! Recovery succeeds on every graph produced by [`crate::lower`]
//! (round-trip tested); on graphs that are not block-structured it fails
//! with [`ProcessError::Unstructured`] rather than guessing.

use crate::ast::{ProcessAst, Stmt};
use crate::condition::Condition;
use crate::error::{ProcessError, Result};
use crate::graph::{ActivityKind, ProcessGraph};
use std::collections::{BTreeMap, BTreeSet};

/// Recover the structured form of a graph.
pub fn recover(graph: &ProcessGraph) -> Result<ProcessAst> {
    graph.validate()?;
    let ctx = Ctx::analyze(graph);
    let begin = graph.begin().expect("validated");
    let start = graph.sole_successor(&begin.id)?.to_owned();
    let mut walker = Walker {
        graph,
        ctx,
        steps: 0,
    };
    let (body, terminal) = walker.walk(start, None)?;
    match terminal {
        Terminal::ReachedEnd => Ok(ProcessAst::new(body)),
        Terminal::ReachedStop => Err(ProcessError::Unstructured(
            "top-level walk stopped before reaching End".into(),
        )),
    }
}

/// Loop classification: which Merges are loop headers and which Choice
/// closes each loop.
struct Ctx {
    /// Merge id → the Choice id whose back transition feeds it.
    loop_choice_of: BTreeMap<String, String>,
    /// The set of loop-closing Choice ids.
    loop_choices: BTreeSet<String>,
}

impl Ctx {
    fn analyze(graph: &ProcessGraph) -> Ctx {
        // An edge `p → m` is a back edge iff `m` dominates `p`: every path
        // from Begin to the loop-closing Choice runs through the loop-header
        // Merge.  Plain reachability is not enough — a Merge nested inside
        // an outer loop can reach its own predecessors through the *outer*
        // back edge without heading any loop itself.
        let dominators = Self::dominators(graph);
        let mut loop_choice_of = BTreeMap::new();
        let mut loop_choices = BTreeSet::new();
        for merge in graph
            .activities()
            .iter()
            .filter(|a| a.kind == ActivityKind::Merge)
        {
            for pred in graph.predecessors(&merge.id) {
                let dominated = dominators
                    .get(pred)
                    .map(|d| d.contains(&merge.id))
                    .unwrap_or(false);
                if dominated {
                    loop_choice_of.insert(merge.id.clone(), pred.to_owned());
                    loop_choices.insert(pred.to_owned());
                }
            }
        }
        Ctx {
            loop_choice_of,
            loop_choices,
        }
    }

    /// Classic iterative dominator dataflow: `dom(n) = {n} ∪ ⋂ dom(preds)`.
    /// Graphs here are small (tens of activities), so the quadratic
    /// fixpoint is fine.
    fn dominators(graph: &ProcessGraph) -> BTreeMap<String, BTreeSet<String>> {
        let all: BTreeSet<String> = graph.activities().iter().map(|a| a.id.clone()).collect();
        let begin = graph.begin().expect("validated").id.clone();
        let mut dom: BTreeMap<String, BTreeSet<String>> = graph
            .activities()
            .iter()
            .map(|a| {
                if a.id == begin {
                    (a.id.clone(), BTreeSet::from([begin.clone()]))
                } else {
                    (a.id.clone(), all.clone())
                }
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for a in graph.activities() {
                if a.id == begin {
                    continue;
                }
                let preds = graph.predecessors(&a.id);
                let mut new: Option<BTreeSet<String>> = None;
                for p in preds {
                    let pd = &dom[p];
                    new = Some(match new {
                        None => pd.clone(),
                        Some(acc) => acc.intersection(pd).cloned().collect(),
                    });
                }
                let mut new = new.unwrap_or_default();
                new.insert(a.id.clone());
                if new != dom[&a.id] {
                    dom.insert(a.id.clone(), new);
                    changed = true;
                }
            }
        }
        dom
    }

    fn is_loop_header(&self, merge: &str) -> bool {
        self.loop_choice_of.contains_key(merge)
    }

    fn is_loop_choice(&self, choice: &str) -> bool {
        self.loop_choices.contains(choice)
    }
}

/// How a walk terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Terminal {
    /// The walk hit the requested stop node (not consumed).
    ReachedStop,
    /// The walk hit the End activity.
    ReachedEnd,
}

struct Walker<'g> {
    graph: &'g ProcessGraph,
    ctx: Ctx,
    steps: usize,
}

impl<'g> Walker<'g> {
    fn bump(&mut self) -> Result<()> {
        self.steps += 1;
        // Each visit consumes at least one activity of a finite graph;
        // anything quadratic-plus means we are looping.
        let limit = self.graph.activities().len() * self.graph.activities().len() + 16;
        if self.steps > limit {
            return Err(ProcessError::Unstructured(
                "recovery did not terminate; graph is not block-structured".into(),
            ));
        }
        Ok(())
    }

    /// Walk from `current` until `stop` (exclusive) or End, producing the
    /// statement list of that region.
    fn walk(&mut self, mut current: String, stop: Option<&str>) -> Result<(Vec<Stmt>, Terminal)> {
        let mut stmts = Vec::new();
        loop {
            self.bump()?;
            if stop == Some(current.as_str()) {
                return Ok((stmts, Terminal::ReachedStop));
            }
            let decl = self.graph.activity(&current).ok_or_else(|| {
                ProcessError::Unstructured(format!("missing activity `{current}`"))
            })?;
            match decl.kind {
                ActivityKind::End => return Ok((stmts, Terminal::ReachedEnd)),
                ActivityKind::Begin => {
                    return Err(ProcessError::Unstructured(
                        "encountered Begin mid-walk".into(),
                    ))
                }
                ActivityKind::EndUser => {
                    let name = decl.service.clone().unwrap_or_else(|| decl.id.clone());
                    stmts.push(Stmt::Activity(name));
                    current = self.graph.sole_successor(&current)?.to_owned();
                }
                ActivityKind::Fork => {
                    let join = self
                        .find_convergence(self.graph.successors(&current)[0], ActivityKind::Join)?;
                    let mut branches = Vec::new();
                    for t in self.graph.outgoing(&current) {
                        let (branch, terminal) = self.walk(t.dest.clone(), Some(&join))?;
                        if terminal != Terminal::ReachedStop {
                            return Err(ProcessError::Unstructured(format!(
                                "Fork `{current}` branch did not converge at Join `{join}`"
                            )));
                        }
                        branches.push(branch);
                    }
                    stmts.push(Stmt::Concurrent(branches));
                    current = self.graph.sole_successor(&join)?.to_owned();
                }
                ActivityKind::Choice => {
                    if self.ctx.is_loop_choice(&current) {
                        return Err(ProcessError::Unstructured(format!(
                            "loop-closing Choice `{current}` reached outside its loop body"
                        )));
                    }
                    let merge = self.find_convergence(
                        self.graph.successors(&current)[0],
                        ActivityKind::Merge,
                    )?;
                    let mut branches = Vec::new();
                    for t in self.graph.outgoing(&current) {
                        let cond = t.condition.clone().unwrap_or(Condition::True);
                        let (branch, terminal) = self.walk(t.dest.clone(), Some(&merge))?;
                        if terminal != Terminal::ReachedStop {
                            return Err(ProcessError::Unstructured(format!(
                                "Choice `{current}` branch did not converge at Merge `{merge}`"
                            )));
                        }
                        branches.push((cond, branch));
                    }
                    stmts.push(Stmt::Selective(branches));
                    current = self.graph.sole_successor(&merge)?.to_owned();
                }
                ActivityKind::Join => {
                    return Err(ProcessError::Unstructured(format!(
                        "Join `{current}` reached without a matching Fork"
                    )))
                }
                ActivityKind::Merge => {
                    let Some(choice) = self.ctx.loop_choice_of.get(&current).cloned() else {
                        return Err(ProcessError::Unstructured(format!(
                            "Merge `{current}` reached without a matching Choice or loop"
                        )));
                    };
                    let body_start = self.graph.sole_successor(&current)?.to_owned();
                    let (body, terminal) = self.walk(body_start, Some(&choice))?;
                    if terminal != Terminal::ReachedStop {
                        return Err(ProcessError::Unstructured(format!(
                            "loop body of Merge `{current}` did not reach its Choice `{choice}`"
                        )));
                    }
                    let out = self.graph.outgoing(&choice);
                    if out.len() != 2 {
                        return Err(ProcessError::Unstructured(format!(
                            "loop-closing Choice `{choice}` must have exactly 2 successors, has {}",
                            out.len()
                        )));
                    }
                    let back = out
                        .iter()
                        .find(|t| t.dest == current)
                        .expect("classified as loop choice");
                    let exit = out.iter().find(|t| t.dest != current).ok_or_else(|| {
                        ProcessError::Unstructured(format!(
                            "loop-closing Choice `{choice}` has no exit transition"
                        ))
                    })?;
                    let cond = back.condition.clone().unwrap_or(Condition::True);
                    stmts.push(Stmt::Iterative { cond, body });
                    current = exit.dest.clone();
                }
            }
        }
    }

    /// Skim forward from `start` at the current nesting level until
    /// reaching a convergence activity of kind `target` (Join or Merge);
    /// nested constructs are skipped over wholesale.
    fn find_convergence(&mut self, start: &str, target: ActivityKind) -> Result<String> {
        let mut node = start.to_owned();
        loop {
            self.bump()?;
            let decl = self
                .graph
                .activity(&node)
                .ok_or_else(|| ProcessError::Unstructured(format!("missing activity `{node}`")))?;
            match decl.kind {
                k if k == target
                    && !(k == ActivityKind::Merge && self.ctx.is_loop_header(&node)) =>
                {
                    return Ok(node)
                }
                ActivityKind::EndUser => {
                    node = self.graph.sole_successor(&node)?.to_owned();
                }
                ActivityKind::Fork => {
                    let join =
                        self.find_convergence(self.graph.successors(&node)[0], ActivityKind::Join)?;
                    node = self.graph.sole_successor(&join)?.to_owned();
                }
                ActivityKind::Choice => {
                    if self.ctx.is_loop_choice(&node) {
                        return Err(ProcessError::Unstructured(format!(
                            "loop-closing Choice `{node}` encountered while scanning for convergence"
                        )));
                    }
                    let merge = self
                        .find_convergence(self.graph.successors(&node)[0], ActivityKind::Merge)?;
                    node = self.graph.sole_successor(&merge)?.to_owned();
                }
                ActivityKind::Merge if self.ctx.is_loop_header(&node) => {
                    // Skip the whole loop: continue at the exit of its
                    // closing Choice.
                    let choice = self.ctx.loop_choice_of[&node].clone();
                    let exit = self
                        .graph
                        .outgoing(&choice)
                        .into_iter()
                        .find(|t| t.dest != node)
                        .ok_or_else(|| {
                            ProcessError::Unstructured(format!(
                                "loop-closing Choice `{choice}` has no exit transition"
                            ))
                        })?;
                    node = exit.dest.clone();
                }
                other => {
                    return Err(ProcessError::Unstructured(format!(
                        "expected convergence at a {target:?}, found `{node}` ({other:?})"
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse_process;

    /// parse → lower → recover must reproduce the AST.
    fn round_trip(src: &str) {
        let ast = parse_process(src).unwrap();
        let graph = lower("rt", &ast).unwrap();
        let back = recover(&graph).unwrap_or_else(|e| panic!("recover failed: {e}"));
        assert_eq!(back, ast, "round trip changed the AST for {src}");
    }

    #[test]
    fn sequence_round_trips_figure_4() {
        round_trip("BEGIN A; B; C; END");
    }

    #[test]
    fn concurrent_round_trips_figure_5() {
        round_trip("BEGIN FORK { { A; }, { B; } } JOIN; END");
    }

    #[test]
    fn selective_round_trips_figure_6() {
        round_trip("BEGIN CHOICE { COND { D.X = 1 } { A; }, COND { true } { B; } } MERGE; END");
    }

    #[test]
    fn iterative_round_trips_figure_7() {
        round_trip("BEGIN ITERATIVE { COND { D.X > 8 } } { A; B; }; END");
    }

    #[test]
    fn figure_10_shape_round_trips() {
        round_trip(
            "BEGIN POD; P3DR; \
             ITERATIVE { COND { D10.Value > 8 } } { \
                POR; FORK { { P3DR; }, { P3DR; }, { P3DR; } } JOIN; PSF; \
             }; END",
        );
    }

    #[test]
    fn deeply_nested_round_trips() {
        round_trip(
            "BEGIN \
               ITERATIVE { COND { D.X > 0 } } { \
                 FORK { \
                   { CHOICE { COND { D.Y = 1 } { A; }, COND { true } { } } MERGE; }, \
                   { ITERATIVE { COND { D.Z < 5 } } { B; }; C; } \
                 } JOIN; \
               }; \
               D; \
             END",
        );
    }

    #[test]
    fn empty_bodies_round_trip() {
        round_trip("BEGIN END");
        round_trip("BEGIN ITERATIVE { COND { D.X > 0 } } { }; END");
        round_trip("BEGIN FORK { { }, { A; } } JOIN; END");
        round_trip("BEGIN CHOICE { COND { true } { }, COND { D.X = 1 } { } } MERGE; END");
    }

    #[test]
    fn consecutive_loops_round_trip() {
        round_trip(
            "BEGIN ITERATIVE { COND { D.X > 0 } } { A; }; \
             ITERATIVE { COND { D.Y > 0 } } { B; }; END",
        );
    }

    #[test]
    fn fork_inside_fork_round_trips() {
        round_trip("BEGIN FORK { { FORK { { A; }, { B; } } JOIN; }, { C; } } JOIN; END");
    }

    #[test]
    fn unstructured_graph_is_rejected() {
        use crate::graph::{ActivityDecl, ProcessGraph};
        // Two forks converging on a single shared join (not block
        // structured).
        let mut g = ProcessGraph::new("bad");
        for (id, kind) in [
            ("BEGIN", ActivityKind::Begin),
            ("F1", ActivityKind::Fork),
            ("J1", ActivityKind::Join),
            ("END", ActivityKind::End),
        ] {
            g.add_activity(ActivityDecl::flow(id, kind)).unwrap();
        }
        for id in ["A", "B", "C"] {
            g.add_activity(ActivityDecl::end_user(id)).unwrap();
        }
        g.add_transition("BEGIN", "F1", None).unwrap();
        g.add_transition("F1", "A", None).unwrap();
        g.add_transition("F1", "B", None).unwrap();
        g.add_transition("F1", "C", None).unwrap();
        g.add_transition("A", "J1", None).unwrap();
        g.add_transition("B", "J1", None).unwrap();
        // C bypasses the join and goes straight to END alongside J1:
        // gives J1 only 2 preds and END 2 preds -> violates END pred count?
        // END may have >=1 pred; but C->END makes the fork non-structured.
        g.add_transition("C", "END", None).unwrap();
        g.add_transition("J1", "END", None).unwrap();
        // Structural validation itself may pass (END with 2 preds is
        // tolerated), but recovery must refuse.
        if g.validate().is_ok() {
            assert!(matches!(recover(&g), Err(ProcessError::Unstructured(_))));
        }
    }
}
