//! Lowering: structured AST → activity/transition graph.
//!
//! This is the left-to-right direction of the conversions in Figures 4–7
//! of the paper: each `FORK…JOIN` statement becomes a Fork/Join activity
//! pair, each `CHOICE…MERGE` a Choice/Merge pair, and each `ITERATIVE` a
//! Merge (loop entry) / Choice (loop test) pair with a back transition —
//! exactly the loop shape of Figure 10, where the resolution-refinement
//! loop is entered through MERGE and closed by CHOICE.

use crate::ast::{ProcessAst, Stmt};
use crate::condition::Condition;
use crate::error::Result;
use crate::graph::{ActivityDecl, ActivityKind, ProcessGraph};
use std::collections::BTreeMap;

/// Lower a structured process description into graph form.
///
/// End-user activity ids are taken from the AST names; when a name occurs
/// more than once, later occurrences get `#2`, `#3`, … suffixes while the
/// *service* name stays the base name (mirroring the paper's `P3DR1` …
/// `P3DR4` which all invoke service `P3DR`).
pub fn lower(name: impl Into<String>, ast: &ProcessAst) -> Result<ProcessGraph> {
    let mut ctx = Lowering {
        graph: ProcessGraph::new(name),
        used_names: BTreeMap::new(),
        flow_counter: 0,
    };
    ctx.graph
        .add_activity(ActivityDecl::flow("BEGIN", ActivityKind::Begin))?;
    let last = ctx.lower_stmts(&ast.body, "BEGIN".to_owned(), None)?;
    ctx.graph
        .add_activity(ActivityDecl::flow("END", ActivityKind::End))?;
    ctx.graph.add_transition(last, "END", None)?;
    Ok(ctx.graph)
}

struct Lowering {
    graph: ProcessGraph,
    used_names: BTreeMap<String, usize>,
    flow_counter: usize,
}

impl Lowering {
    fn fresh_flow_id(&mut self, base: &str) -> String {
        self.flow_counter += 1;
        format!("{base}{}", self.flow_counter)
    }

    fn fresh_activity_id(&mut self, name: &str) -> String {
        let count = self.used_names.entry(name.to_owned()).or_insert(0);
        *count += 1;
        if *count == 1 {
            name.to_owned()
        } else {
            format!("{name}#{count}")
        }
    }

    /// Lower a statement list, linking from `prev` with an optional guard
    /// on the very first transition; returns the id of the last activity.
    fn lower_stmts(
        &mut self,
        stmts: &[Stmt],
        prev: String,
        mut first_guard: Option<Condition>,
    ) -> Result<String> {
        let mut current = prev;
        for stmt in stmts {
            let guard = first_guard.take();
            current = self.lower_stmt(stmt, current, guard)?;
        }
        Ok(current)
    }

    /// Lower one statement; `guard` is attached to the entering
    /// transition (used for Choice branches).  Returns the exit activity.
    fn lower_stmt(
        &mut self,
        stmt: &Stmt,
        prev: String,
        guard: Option<Condition>,
    ) -> Result<String> {
        match stmt {
            Stmt::Activity(name) => {
                let id = self.fresh_activity_id(name);
                self.graph
                    .add_activity(ActivityDecl::end_user_with_service(&id, name))?;
                self.graph.add_transition(prev, &id, guard)?;
                Ok(id)
            }
            Stmt::Concurrent(branches) => {
                if branches.len() < 2 {
                    return Err(crate::error::ProcessError::Structure(
                        "a concurrent statement requires at least two branches".into(),
                    ));
                }
                let fork = self.fresh_flow_id("FORK");
                let join = self.fresh_flow_id("JOIN");
                self.graph
                    .add_activity(ActivityDecl::flow(&fork, ActivityKind::Fork))?;
                self.graph.add_transition(prev, &fork, guard)?;
                self.graph
                    .add_activity(ActivityDecl::flow(&join, ActivityKind::Join))?;
                for branch in branches {
                    let last = self.lower_stmts(branch, fork.clone(), None)?;
                    self.graph.add_transition(last, &join, None)?;
                }
                Ok(join)
            }
            Stmt::Selective(branches) => {
                if branches.len() < 2 {
                    return Err(crate::error::ProcessError::Structure(
                        "a selective statement requires at least two branches".into(),
                    ));
                }
                let choice = self.fresh_flow_id("CHOICE");
                let merge = self.fresh_flow_id("MERGE");
                self.graph
                    .add_activity(ActivityDecl::flow(&choice, ActivityKind::Choice))?;
                self.graph.add_transition(prev, &choice, guard)?;
                self.graph
                    .add_activity(ActivityDecl::flow(&merge, ActivityKind::Merge))?;
                for (cond, branch) in branches {
                    let last = self.lower_stmts(branch, choice.clone(), Some(cond.clone()))?;
                    // An empty branch means the Choice connects straight to
                    // the Merge; lower_stmts returned `choice` itself.
                    if last == choice {
                        self.graph
                            .add_transition(&choice, &merge, Some(cond.clone()))?;
                    } else {
                        self.graph.add_transition(last, &merge, None)?;
                    }
                }
                Ok(merge)
            }
            Stmt::Iterative { cond, body } => {
                // Loop entry: a Merge fed by the incoming transition and by
                // the Choice's back transition (Fig. 10 shape).
                let merge = self.fresh_flow_id("MERGE");
                let choice = self.fresh_flow_id("CHOICE");
                self.graph
                    .add_activity(ActivityDecl::flow(&merge, ActivityKind::Merge))?;
                self.graph.add_transition(prev, &merge, guard)?;
                let last = self.lower_stmts(body, merge.clone(), None)?;
                self.graph
                    .add_activity(ActivityDecl::flow(&choice, ActivityKind::Choice))?;
                self.graph.add_transition(last, &choice, None)?;
                // Back transition carries the continue condition; the
                // forward (exit) transition is the default branch.
                self.graph
                    .add_transition(&choice, &merge, Some(cond.clone()))?;
                Ok(choice)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{CompareOp, Condition};
    use crate::parser::parse_process;

    fn lower_src(src: &str) -> ProcessGraph {
        let ast = parse_process(src).unwrap();
        let g = lower("test", &ast).unwrap();
        g.validate()
            .unwrap_or_else(|e| panic!("invalid graph: {e}"));
        g
    }

    #[test]
    fn sequence_lowers_to_chain() {
        let g = lower_src("BEGIN A; B; C; END");
        assert_eq!(g.sole_successor("BEGIN").unwrap(), "A");
        assert_eq!(g.sole_successor("A").unwrap(), "B");
        assert_eq!(g.sole_successor("B").unwrap(), "C");
        assert_eq!(g.sole_successor("C").unwrap(), "END");
        assert_eq!(g.activities().len(), 5);
        assert_eq!(g.transitions().len(), 4);
    }

    #[test]
    fn fork_join_shape_matches_figure_5() {
        let g = lower_src("BEGIN FORK { { A; }, { B; } } JOIN; END");
        let fork = g
            .activities()
            .iter()
            .find(|a| a.kind == ActivityKind::Fork)
            .unwrap();
        let join = g
            .activities()
            .iter()
            .find(|a| a.kind == ActivityKind::Join)
            .unwrap();
        assert_eq!(g.successors(&fork.id), vec!["A", "B"]);
        assert_eq!(g.predecessors(&join.id), vec!["A", "B"]);
    }

    #[test]
    fn choice_merge_shape_matches_figure_6() {
        let g =
            lower_src("BEGIN CHOICE { COND { D.X = 1 } { A; }, COND { true } { B; } } MERGE; END");
        let choice = g
            .activities()
            .iter()
            .find(|a| a.kind == ActivityKind::Choice)
            .unwrap();
        let out = g.outgoing(&choice.id);
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0].condition,
            Some(Condition::compare("D", "X", CompareOp::Eq, 1i64))
        );
        assert_eq!(out[1].condition, Some(Condition::True));
    }

    #[test]
    fn iterative_lowers_to_merge_choice_loop_matching_figure_7() {
        let g = lower_src("BEGIN ITERATIVE { COND { D.X > 8 } } { A; B; }; END");
        let merge = g
            .activities()
            .iter()
            .find(|a| a.kind == ActivityKind::Merge)
            .unwrap();
        let choice = g
            .activities()
            .iter()
            .find(|a| a.kind == ActivityKind::Choice)
            .unwrap();
        // Merge is fed by BEGIN and by the Choice (back edge).
        let preds = g.predecessors(&merge.id);
        assert!(preds.contains(&"BEGIN"));
        assert!(preds.contains(&choice.id.as_str()));
        // Choice leads back to the Merge (guarded) and on to END (default).
        let out = g.outgoing(&choice.id);
        assert_eq!(out.len(), 2);
        let back = out.iter().find(|t| t.dest == merge.id).unwrap();
        assert!(back.condition.is_some());
        let exit = out.iter().find(|t| t.dest == "END").unwrap();
        assert!(exit.condition.is_none());
    }

    #[test]
    fn duplicate_activity_names_are_uniquified() {
        let g = lower_src("BEGIN A; A; A; END");
        let ids: Vec<&str> = g.end_user_activities().map(|a| a.id.as_str()).collect();
        assert_eq!(ids, vec!["A", "A#2", "A#3"]);
        for a in g.end_user_activities() {
            assert_eq!(a.service.as_deref(), Some("A"));
        }
    }

    #[test]
    fn empty_selective_branch_connects_choice_to_merge() {
        let g = lower_src("BEGIN CHOICE { COND { D.X = 1 } { A; }, COND { true } { } } MERGE; END");
        let choice = g
            .activities()
            .iter()
            .find(|a| a.kind == ActivityKind::Choice)
            .unwrap();
        let merge = g
            .activities()
            .iter()
            .find(|a| a.kind == ActivityKind::Merge)
            .unwrap();
        assert!(g
            .outgoing(&choice.id)
            .iter()
            .any(|t| t.dest == merge.id && t.condition == Some(Condition::True)));
    }

    #[test]
    fn empty_iterative_body_connects_merge_to_choice() {
        let g = lower_src("BEGIN ITERATIVE { COND { D.X > 0 } } { }; END");
        g.validate().unwrap();
        let merge = g
            .activities()
            .iter()
            .find(|a| a.kind == ActivityKind::Merge)
            .unwrap();
        let choice = g
            .activities()
            .iter()
            .find(|a| a.kind == ActivityKind::Choice)
            .unwrap();
        assert_eq!(g.sole_successor(&merge.id).unwrap(), choice.id);
    }

    #[test]
    fn nested_constructs_validate() {
        let g = lower_src(
            "BEGIN ITERATIVE { COND { D.X > 8 } } { \
                FORK { { A; CHOICE { COND { true } { B; } , COND { D.Y = 1 } { } } MERGE; }, { C; } } JOIN; \
             }; END",
        );
        assert!(g.activities().len() > 8);
    }

    #[test]
    fn virus_workflow_of_figure_10_lowers_to_13_activities_and_15_transitions() {
        // Fig. 10: POD; P3DR1; loop( POR; FORK{P3DR2,P3DR3,P3DR4}JOIN; PSF )
        // = 7 end-user + BEGIN,END,MERGE,FORK,JOIN,CHOICE = 13 activities,
        //   TR1..TR15 = 15 transitions.
        let g = lower_src(
            "BEGIN POD; P3DR; \
             ITERATIVE { COND { D10.Value > 8 } } { \
                POR; FORK { { P3DR; }, { P3DR; }, { P3DR; } } JOIN; PSF; \
             }; END",
        );
        assert_eq!(g.activities().len(), 13);
        assert_eq!(g.transitions().len(), 15);
        assert_eq!(g.end_user_activities().count(), 7);
    }
}
