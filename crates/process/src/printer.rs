//! Pretty-printer for process descriptions.
//!
//! Emits the concrete syntax documented in [`crate::parser`], indented two
//! spaces per nesting level.  The printer is the inverse of the parser:
//! `parse_process(&print(ast)) == ast` (exercised by the crate's property
//! tests).

use crate::ast::{ProcessAst, Stmt};
use std::fmt::Write as _;

/// Render a process description in canonical concrete syntax.
pub fn print(ast: &ProcessAst) -> String {
    let mut out = String::from("BEGIN\n");
    for stmt in &ast.body {
        print_stmt(stmt, 1, &mut out);
    }
    out.push_str("END\n");
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match stmt {
        Stmt::Activity(name) => {
            let _ = writeln!(out, "{name};");
        }
        Stmt::Concurrent(branches) => {
            out.push_str("FORK {\n");
            for (i, branch) in branches.iter().enumerate() {
                indent(level + 1, out);
                out.push_str("{\n");
                for s in branch {
                    print_stmt(s, level + 2, out);
                }
                indent(level + 1, out);
                out.push('}');
                if i + 1 < branches.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(level, out);
            out.push_str("} JOIN;\n");
        }
        Stmt::Selective(branches) => {
            out.push_str("CHOICE {\n");
            for (i, (cond, branch)) in branches.iter().enumerate() {
                indent(level + 1, out);
                let _ = writeln!(out, "COND {{ {cond} }} {{");
                for s in branch {
                    print_stmt(s, level + 2, out);
                }
                indent(level + 1, out);
                out.push('}');
                if i + 1 < branches.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(level, out);
            out.push_str("} MERGE;\n");
        }
        Stmt::Iterative { cond, body } => {
            let _ = writeln!(out, "ITERATIVE {{ COND {{ {cond} }} }} {{");
            for s in body {
                print_stmt(s, level + 1, out);
            }
            indent(level, out);
            out.push_str("};\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{CompareOp, Condition};
    use crate::parser::parse_process;

    fn round_trip(ast: &ProcessAst) {
        let text = print(ast);
        let back = parse_process(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(&back, ast, "print→parse changed the AST:\n{text}");
    }

    #[test]
    fn empty_process_round_trips() {
        round_trip(&ProcessAst::default());
    }

    #[test]
    fn sequence_round_trips() {
        round_trip(&ProcessAst::new(vec![
            Stmt::Activity("POD".into()),
            Stmt::Activity("P3DR1".into()),
        ]));
    }

    #[test]
    fn all_constructs_round_trip() {
        let ast = ProcessAst::new(vec![
            Stmt::Activity("POD".into()),
            Stmt::Iterative {
                cond: Condition::compare("D10", "Value", CompareOp::Gt, 8i64),
                body: vec![
                    Stmt::Activity("POR".into()),
                    Stmt::Concurrent(vec![
                        vec![Stmt::Activity("P3DR2".into())],
                        vec![
                            Stmt::Activity("P3DR3".into()),
                            Stmt::Activity("P3DR4".into()),
                        ],
                    ]),
                    Stmt::Selective(vec![
                        (
                            Condition::classified("D9", "3D Model"),
                            vec![Stmt::Activity("PSF".into())],
                        ),
                        (Condition::True, vec![]),
                    ]),
                ],
            },
        ]);
        round_trip(&ast);
    }

    #[test]
    fn printed_text_is_indented() {
        let ast = ProcessAst::new(vec![Stmt::Iterative {
            cond: Condition::True,
            body: vec![Stmt::Activity("A".into())],
        }]);
        let text = print(&ast);
        assert!(text.contains("  ITERATIVE"), "{text}");
        assert!(text.contains("    A;"), "{text}");
    }

    #[test]
    fn empty_branches_round_trip() {
        round_trip(&ProcessAst::new(vec![Stmt::Concurrent(vec![
            vec![],
            vec![Stmt::Activity("B".into())],
        ])]));
    }
}
