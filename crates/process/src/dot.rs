//! Graphviz (DOT) export for process graphs.
//!
//! Used by the figure-regeneration binaries to render the process
//! description of Figure 10 and its relatives.  Flow-control activities
//! render as diamonds/bars following common workflow-notation conventions;
//! end-user activities as boxes.

use crate::graph::{ActivityKind, ProcessGraph};
use std::fmt::Write as _;

/// Render a graph in DOT syntax.
pub fn to_dot(graph: &ProcessGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&graph.name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    for a in graph.activities() {
        let (shape, style) = match a.kind {
            ActivityKind::Begin | ActivityKind::End => ("circle", ", style=bold"),
            ActivityKind::EndUser => ("box", ""),
            ActivityKind::Fork | ActivityKind::Join => {
                ("box", ", style=filled, fillcolor=gray85, height=0.2")
            }
            ActivityKind::Choice | ActivityKind::Merge => ("diamond", ""),
        };
        let _ = writeln!(
            out,
            "  \"{}\" [shape={shape}{style}, label=\"{}\"];",
            escape(&a.id),
            escape(&a.id)
        );
    }
    for t in graph.transitions() {
        let label = match &t.condition {
            Some(c) => format!("{}\\n[{}]", t.id, escape(&c.to_string())),
            None => t.id.clone(),
        };
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{label}\", fontsize=9];",
            escape(&t.source),
            escape(&t.dest)
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse_process;

    #[test]
    fn dot_contains_all_activities_and_transitions() {
        let ast = parse_process(
            "BEGIN A; CHOICE { COND { D.X = 1 } { B; }, COND { true } { } } MERGE; END",
        )
        .unwrap();
        let g = lower("demo", &ast).unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"demo\""));
        for a in g.activities() {
            assert!(dot.contains(&format!("\"{}\"", a.id)), "missing {}", a.id);
        }
        for t in g.transitions() {
            assert!(dot.contains(&t.id), "missing {}", t.id);
        }
        // Condition label appears on the guarded transition.
        assert!(dot.contains("D.X = 1"));
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let ast = parse_process(
            "BEGIN CHOICE { COND { D.X = \"a\" } { A; }, COND { true } { } } MERGE; END",
        )
        .unwrap();
        let g = lower("d", &ast).unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("\\\"a\\\""));
    }
}
