//! The condition sub-language of the process-description grammar.
//!
//! The paper's BNF defines conditions as `<data>.<property> <op> <value>`
//! with `<op> ::= < | > | =` and properties such as `Classification`,
//! `Size`, `Location`.  The case-study constraint `Cons1` combines atoms
//! with `and`:  `if (D10.Classification = "Resolution File" and
//! D10.Value > 8) then Merge else End`.  [`Condition`] models that
//! language (with the natural extensions `!=`, `<=`, `>=`, `or`, `not`,
//! and an existence atom) and evaluates against a
//! [`DataState`] values.

use crate::data::DataState;
use crate::error::{ProcessError, Result};
use gridflow_ontology::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operator of a condition atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// Apply the operator to an ordered comparison result.
    fn holds(&self, ord: Option<Ordering>, eq: bool) -> bool {
        match self {
            CompareOp::Eq => eq,
            CompareOp::Ne => !eq,
            CompareOp::Lt => ord == Some(Ordering::Less),
            CompareOp::Gt => ord == Some(Ordering::Greater),
            CompareOp::Le => eq || ord == Some(Ordering::Less),
            CompareOp::Ge => eq || ord == Some(Ordering::Greater),
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Lt => "<",
            CompareOp::Gt => ">",
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Le => "<=",
            CompareOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean condition over data properties.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// Always true (the "else"/default branch of a Choice).
    True,
    /// `<data>.<property> <op> <value>` — the paper's atom.
    Compare {
        /// Data-item identifier (e.g. `D10`).
        data: String,
        /// Property name (e.g. `Classification`).
        property: String,
        /// Comparison operator.
        op: CompareOp,
        /// Right-hand side literal.
        value: Value,
    },
    /// The data item exists in the state (written `exists <data>`).
    Exists(String),
    /// Conjunction.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction.
    Or(Box<Condition>, Box<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

impl Condition {
    /// Convenience constructor for a comparison atom.
    pub fn compare(
        data: impl Into<String>,
        property: impl Into<String>,
        op: CompareOp,
        value: impl Into<Value>,
    ) -> Self {
        Condition::Compare {
            data: data.into(),
            property: property.into(),
            op,
            value: value.into(),
        }
    }

    /// `<data>.Classification = <classification>` — the dominant atom in
    /// the paper's service signatures (C1–C8 of Fig. 13).
    pub fn classified(data: impl Into<String>, classification: impl Into<String>) -> Self {
        Condition::compare(
            data,
            "Classification",
            CompareOp::Eq,
            Value::str(classification),
        )
    }

    /// Conjunction (builder style).
    pub fn and(self, other: Condition) -> Self {
        Condition::And(Box::new(self), Box::new(other))
    }

    /// Disjunction (builder style).
    pub fn or(self, other: Condition) -> Self {
        Condition::Or(Box::new(self), Box::new(other))
    }

    /// Negation (builder style).
    pub fn negate(self) -> Self {
        Condition::Not(Box::new(self))
    }

    /// Conjunction of an iterator of conditions; empty yields [`Condition::True`].
    pub fn all<I: IntoIterator<Item = Condition>>(conds: I) -> Self {
        let mut iter = conds.into_iter();
        match iter.next() {
            None => Condition::True,
            Some(first) => iter.fold(first, |acc, c| acc.and(c)),
        }
    }

    /// Lenient evaluation: a comparison on a missing data item or property
    /// is simply false (the environment "does not yet satisfy" the
    /// condition).  This is the semantics the planner's validity simulation
    /// needs: preconditions on absent data fail rather than abort.
    pub fn eval(&self, state: &DataState) -> bool {
        match self {
            Condition::True => true,
            Condition::Exists(data) => state.contains(data),
            Condition::Compare {
                data,
                property,
                op,
                value,
            } => match state.property(data, property) {
                Some(actual) => op.holds(actual.partial_cmp_value(value), actual.loose_eq(value)),
                None => false,
            },
            Condition::And(a, b) => a.eval(state) && b.eval(state),
            Condition::Or(a, b) => a.eval(state) || b.eval(state),
            Condition::Not(c) => !c.eval(state),
        }
    }

    /// Strict evaluation: referencing a missing data item or property is an
    /// error.  Used by the coordination service, where a constraint naming
    /// data that was never produced indicates a broken plan.
    pub fn eval_strict(&self, state: &DataState) -> Result<bool> {
        match self {
            Condition::True => Ok(true),
            Condition::Exists(data) => Ok(state.contains(data)),
            Condition::Compare {
                data,
                property,
                op,
                value,
            } => {
                let item = state
                    .get(data)
                    .ok_or_else(|| ProcessError::UnknownData(format!("data item `{data}`")))?;
                let actual = item.get(property).ok_or_else(|| {
                    ProcessError::UnknownData(format!("property `{data}.{property}`"))
                })?;
                Ok(op.holds(actual.partial_cmp_value(value), actual.loose_eq(value)))
            }
            Condition::And(a, b) => Ok(a.eval_strict(state)? && b.eval_strict(state)?),
            Condition::Or(a, b) => Ok(a.eval_strict(state)? || b.eval_strict(state)?),
            Condition::Not(c) => Ok(!c.eval_strict(state)?),
        }
    }

    /// Recognize the fleet-goal shape — an `Or`-chain whose every leaf
    /// is `<data>.Classification = "<class>"` for one shared class —
    /// and compile it to a set-membership test.  The naive [`eval`] of
    /// such a chain walks every leaf (one per fleet data item), so a
    /// goal over an N-case fleet costs O(N) per evaluation; the
    /// compiled form answers in O(|state|) by scanning the (small) live
    /// data state instead.  Returns `None` for any other shape; the
    /// compiled evaluation is exactly equivalent to [`eval`] (`Or` has
    /// no evaluation-order effects and the atoms are pure).
    ///
    /// [`eval`]: Condition::eval
    pub fn compile_any_classified(&self) -> Option<AnyClassifiedGoal> {
        let mut ids = BTreeSet::new();
        let mut value: Option<&Value> = None;
        let mut stack = vec![self];
        while let Some(c) = stack.pop() {
            match c {
                Condition::Or(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Condition::Compare {
                    data,
                    property,
                    op: CompareOp::Eq,
                    value: v,
                } if property == "Classification" && v.as_str().is_some() => {
                    match value {
                        None => value = Some(v),
                        Some(prev) if prev == v => {}
                        Some(_) => return None,
                    }
                    ids.insert(data.clone());
                }
                _ => return None,
            }
        }
        Some(AnyClassifiedGoal {
            value: value?.clone(),
            ids,
        })
    }

    /// All data-item identifiers mentioned by the condition.
    pub fn referenced_data(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Condition::True => {}
            Condition::Exists(d) => out.push(d),
            Condition::Compare { data, .. } => out.push(data),
            Condition::And(a, b) | Condition::Or(a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            Condition::Not(c) => c.collect_refs(out),
        }
    }
}

/// The compiled form of a fleet-scale "any item of this class" goal —
/// see [`Condition::compile_any_classified`].  Holds the shared
/// classification literal and the set of data-item ids the `Or`-chain
/// named; evaluation scans the live state once and answers membership
/// against the set.
#[derive(Debug, Clone, PartialEq)]
pub struct AnyClassifiedGoal {
    /// The classification literal every leaf compared against.
    value: Value,
    /// The data-item ids the chain's leaves named.
    ids: BTreeSet<String>,
}

impl AnyClassifiedGoal {
    /// Evaluate against a data state, exactly as the source `Or`-chain
    /// would under [`Condition::eval`]: true iff any named item exists
    /// and its `Classification` property loosely equals the class.
    pub fn eval(&self, state: &DataState) -> bool {
        state.iter().any(|(id, item)| {
            self.ids.contains(id)
                && item
                    .get("Classification")
                    .is_some_and(|actual| actual.loose_eq(&self.value))
        })
    }

    /// Number of data-item ids the compiled goal watches.
    pub fn watched_ids(&self) -> usize {
        self.ids.len()
    }
}

impl fmt::Display for Condition {
    /// Precedence-aware rendering: `and` binds tighter than `or`; `not`
    /// and atoms are primary.  The output is re-parseable by the PDL
    /// parser (print→parse round-trips).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write(c: &Condition, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match c {
                Condition::True => write!(f, "true"),
                Condition::Exists(d) => write!(f, "exists {d}"),
                Condition::Compare {
                    data,
                    property,
                    op,
                    value,
                } => write!(f, "{data}.{property} {op} {value}"),
                Condition::And(a, b) => {
                    // The parser is left-associative; parenthesise the
                    // right child when it is itself a binary node so the
                    // printed form re-parses to the identical tree.
                    for (i, side) in [a, b].into_iter().enumerate() {
                        if i > 0 {
                            write!(f, " and ")?;
                        }
                        let parens = matches!(side.as_ref(), Condition::Or(_, _))
                            || (i == 1 && matches!(side.as_ref(), Condition::And(_, _)));
                        if parens {
                            write!(f, "(")?;
                            write(side, f)?;
                            write!(f, ")")?;
                        } else {
                            write(side, f)?;
                        }
                    }
                    Ok(())
                }
                Condition::Or(a, b) => {
                    for (i, side) in [a, b].into_iter().enumerate() {
                        if i > 0 {
                            write!(f, " or ")?;
                        }
                        let parens = i == 1 && matches!(side.as_ref(), Condition::Or(_, _));
                        if parens {
                            write!(f, "(")?;
                            write(side, f)?;
                            write!(f, ")")?;
                        } else {
                            write(side, f)?;
                        }
                    }
                    Ok(())
                }
                Condition::Not(inner) => {
                    write!(f, "not ")?;
                    match inner.as_ref() {
                        Condition::And(_, _) | Condition::Or(_, _) => {
                            write!(f, "(")?;
                            write(inner, f)?;
                            write!(f, ")")
                        }
                        _ => write(inner, f),
                    }
                }
            }
        }
        write(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataItem;

    fn state() -> DataState {
        DataState::new().with(
            "D10",
            DataItem::classified("Resolution File").with("Value", Value::Float(9.5)),
        )
    }

    #[test]
    fn cons1_of_the_paper_evaluates() {
        // Cons1: D10.Classification = "Resolution File" and D10.Value > 8
        let cons1 = Condition::classified("D10", "Resolution File").and(Condition::compare(
            "D10",
            "Value",
            CompareOp::Gt,
            8.0,
        ));
        assert!(cons1.eval(&state()));

        let mut better = state();
        better.set_property("D10", "Value", Value::Float(7.2));
        assert!(!cons1.eval(&better));
    }

    #[test]
    fn all_six_operators() {
        let s = DataState::new().with("D", DataItem::new().with("X", Value::Int(5)));
        let check = |op, rhs: i64| Condition::compare("D", "X", op, rhs).eval(&s);
        assert!(check(CompareOp::Eq, 5));
        assert!(check(CompareOp::Ne, 4));
        assert!(check(CompareOp::Lt, 6));
        assert!(check(CompareOp::Gt, 4));
        assert!(check(CompareOp::Le, 5));
        assert!(check(CompareOp::Ge, 5));
        assert!(!check(CompareOp::Lt, 5));
        assert!(!check(CompareOp::Gt, 5));
    }

    #[test]
    fn lenient_eval_treats_missing_as_false() {
        let c = Condition::compare("Nope", "X", CompareOp::Eq, 1i64);
        assert!(!c.eval(&DataState::new()));
        // but Not(missing) is true under lenient semantics
        assert!(c.clone().negate().eval(&DataState::new()));
    }

    #[test]
    fn strict_eval_errors_on_missing() {
        let c = Condition::compare("Nope", "X", CompareOp::Eq, 1i64);
        assert!(matches!(
            c.eval_strict(&DataState::new()),
            Err(ProcessError::UnknownData(_))
        ));
        let s = DataState::new().with("Nope", DataItem::new());
        assert!(matches!(
            c.eval_strict(&s),
            Err(ProcessError::UnknownData(_))
        ));
    }

    #[test]
    fn exists_atom() {
        let s = DataState::new().with("D1", DataItem::new());
        assert!(Condition::Exists("D1".into()).eval(&s));
        assert!(!Condition::Exists("D2".into()).eval(&s));
        assert!(Condition::Exists("D1".into()).eval_strict(&s).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let s = state();
        let t = Condition::True;
        let f = Condition::compare("D10", "Value", CompareOp::Lt, 0i64);
        assert!(t.clone().or(f.clone()).eval(&s));
        assert!(!t.clone().and(f.clone()).eval(&s));
        assert!(f.clone().negate().eval(&s));
        assert!(Condition::all([]).eval(&s));
        assert!(Condition::all([t.clone(), t.clone()]).eval(&s));
        assert!(!Condition::all([t, f]).eval(&s));
    }

    #[test]
    fn cross_type_numeric_comparison() {
        let s = DataState::new().with("D", DataItem::new().with("X", Value::Int(8)));
        assert!(Condition::compare("D", "X", CompareOp::Lt, 8.5).eval(&s));
        assert!(Condition::compare("D", "X", CompareOp::Eq, 8.0).eval(&s));
    }

    #[test]
    fn incomparable_types_fail_ordering_but_support_ne() {
        let s = DataState::new().with("D", DataItem::new().with("X", Value::str("abc")));
        assert!(!Condition::compare("D", "X", CompareOp::Lt, 5i64).eval(&s));
        assert!(!Condition::compare("D", "X", CompareOp::Eq, 5i64).eval(&s));
        assert!(Condition::compare("D", "X", CompareOp::Ne, 5i64).eval(&s));
    }

    #[test]
    fn missing_property_is_false_for_every_operator_leniently() {
        // The item exists but lacks the property: no operator — not even
        // `!=` — may claim the comparison holds.
        let s = DataState::new().with("D", DataItem::new().with("Other", Value::Int(1)));
        for op in [
            CompareOp::Lt,
            CompareOp::Gt,
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Le,
            CompareOp::Ge,
        ] {
            let c = Condition::compare("D", "X", op, 5i64);
            assert!(!c.eval(&s), "{op} held on a missing property");
            // Strict evaluation names the property, not the item.
            match c.eval_strict(&s) {
                Err(ProcessError::UnknownData(msg)) => {
                    assert!(msg.contains("D.X"), "unhelpful error: {msg}")
                }
                other => panic!("expected UnknownData, got {other:?}"),
            }
        }
    }

    #[test]
    fn lt_le_boundary_at_equal_values() {
        let s = DataState::new().with("D", DataItem::new().with("X", Value::Int(8)));
        let check = |op, rhs: i64| Condition::compare("D", "X", op, rhs).eval(&s);
        assert!(!check(CompareOp::Lt, 8), "< is strict");
        assert!(check(CompareOp::Le, 8), "<= admits equality");
        assert!(!check(CompareOp::Gt, 8), "> is strict");
        assert!(check(CompareOp::Ge, 8), ">= admits equality");
        // The boundary also holds across the int/float divide.
        let f = |op, rhs: f64| Condition::compare("D", "X", op, rhs).eval(&s);
        assert!(!f(CompareOp::Lt, 8.0));
        assert!(f(CompareOp::Le, 8.0));
    }

    #[test]
    fn type_mismatched_ordering_fails_closed() {
        // A bool is neither equal nor ordered against a number: `!=` is
        // the only comparison that may hold, and `<=`/`>=` must not leak
        // through their equality half.
        let s = DataState::new().with("D", DataItem::new().with("X", Value::Bool(true)));
        let check = |op| Condition::compare("D", "X", op, 1i64).eval(&s);
        assert!(!check(CompareOp::Lt));
        assert!(!check(CompareOp::Gt));
        assert!(!check(CompareOp::Eq));
        assert!(!check(CompareOp::Le));
        assert!(!check(CompareOp::Ge));
        assert!(check(CompareOp::Ne));
        // Strict evaluation agrees: the property exists, so a mismatch
        // is a (false) answer, not an error.
        assert!(!Condition::compare("D", "X", CompareOp::Le, 1i64)
            .eval_strict(&s)
            .unwrap());
    }

    #[test]
    fn referenced_data_is_sorted_and_deduped() {
        let c = Condition::classified("D2", "x")
            .and(Condition::classified("D1", "y"))
            .or(Condition::Exists("D2".into()));
        assert_eq!(c.referenced_data(), vec!["D1", "D2"]);
    }

    #[test]
    fn display_round_trips_structure() {
        let c = Condition::classified("D10", "Resolution File").and(Condition::compare(
            "D10",
            "Value",
            CompareOp::Gt,
            8i64,
        ));
        assert_eq!(
            c.to_string(),
            "D10.Classification = \"Resolution File\" and D10.Value > 8"
        );
        let nested = Condition::True
            .or(Condition::True)
            .and(Condition::Exists("D".into()));
        assert_eq!(nested.to_string(), "(true or true) and exists D");
        let negated = Condition::True.and(Condition::True).negate();
        assert_eq!(negated.to_string(), "not (true and true)");
    }
}
