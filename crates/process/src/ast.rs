//! The structured (abstract-syntax) form of a process description.
//!
//! The paper's grammar composes activities with four constructs; the AST
//! mirrors them one-to-one:
//!
//! * sequencing (`<ActivityList> ::= <Activity>; <ActivityList>`) —
//!   a `Vec<Stmt>`;
//! * `FORK { … ; … } JOIN` — [`Stmt::Concurrent`];
//! * `CHOICE { COND {…} {…} … } MERGE` — [`Stmt::Selective`];
//! * `ITERATIVE { COND {…} } { … }` — [`Stmt::Iterative`].
//!
//! The AST is also, deliberately, isomorphic to the *plan tree* of §3.4.1
//! (sequential / concurrent / selective / iterative controller nodes plus
//! end-user terminals); the `gridflow-plan` crate exploits that for the
//! conversions of Figures 4–7.

use crate::condition::Condition;
use serde::{Deserialize, Serialize};

/// One statement of a process description body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// An end-user activity, referenced by name (e.g. `POD`).
    Activity(String),
    /// `FORK { branch, branch, … } JOIN`: all branches execute (the paper:
    /// "after the execution of a Fork activity, all the activities in its
    /// successor set are triggered"; Join fires when all complete).
    Concurrent(Vec<Vec<Stmt>>),
    /// `CHOICE { COND {c} {branch}, … } MERGE`: exactly one branch
    /// executes — the first whose condition holds (the paper: "only one of
    /// its successor activities may be executed", selected by "a condition
    /// set").
    Selective(Vec<(Condition, Vec<Stmt>)>),
    /// `ITERATIVE { COND {c} } { body }`: the body executes, then the
    /// condition is evaluated; while it holds the body repeats (do-while —
    /// this matches Fig. 10, where the resolution test sits at the
    /// *bottom* of the refinement loop).
    Iterative {
        /// Continue-looping condition, evaluated after each pass.
        cond: Condition,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Number of AST nodes in this statement (each branch list contributes
    /// its statements; the construct itself counts as one node).
    pub fn node_count(&self) -> usize {
        match self {
            Stmt::Activity(_) => 1,
            Stmt::Concurrent(branches) => {
                1 + branches
                    .iter()
                    .flat_map(|b| b.iter())
                    .map(Stmt::node_count)
                    .sum::<usize>()
            }
            Stmt::Selective(branches) => {
                1 + branches
                    .iter()
                    .flat_map(|(_, b)| b.iter())
                    .map(Stmt::node_count)
                    .sum::<usize>()
            }
            Stmt::Iterative { body, .. } => 1 + body.iter().map(Stmt::node_count).sum::<usize>(),
        }
    }

    /// Maximum nesting depth (an activity has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Stmt::Activity(_) => 1,
            Stmt::Concurrent(branches) => {
                1 + branches
                    .iter()
                    .flat_map(|b| b.iter())
                    .map(Stmt::depth)
                    .max()
                    .unwrap_or(0)
            }
            Stmt::Selective(branches) => {
                1 + branches
                    .iter()
                    .flat_map(|(_, b)| b.iter())
                    .map(Stmt::depth)
                    .max()
                    .unwrap_or(0)
            }
            Stmt::Iterative { body, .. } => 1 + body.iter().map(Stmt::depth).max().unwrap_or(0),
        }
    }

    fn collect_activities<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Stmt::Activity(name) => out.push(name),
            Stmt::Concurrent(branches) => {
                for b in branches {
                    for s in b {
                        s.collect_activities(out);
                    }
                }
            }
            Stmt::Selective(branches) => {
                for (_, b) in branches {
                    for s in b {
                        s.collect_activities(out);
                    }
                }
            }
            Stmt::Iterative { body, .. } => {
                for s in body {
                    s.collect_activities(out);
                }
            }
        }
    }
}

/// A complete process description: `BEGIN <body> END`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ProcessAst {
    /// The statements between `BEGIN` and `END`.
    pub body: Vec<Stmt>,
}

impl ProcessAst {
    /// An empty process (`BEGIN END`).
    pub fn new(body: Vec<Stmt>) -> Self {
        ProcessAst { body }
    }

    /// Every end-user activity occurrence, in syntactic order (duplicates
    /// preserved: an activity used twice appears twice).
    pub fn activities(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for s in &self.body {
            s.collect_activities(&mut out);
        }
        out
    }

    /// Total number of AST nodes (excluding the implicit Begin/End).
    pub fn node_count(&self) -> usize {
        self.body.iter().map(Stmt::node_count).sum()
    }

    /// Maximum nesting depth of the body.
    pub fn depth(&self) -> usize {
        self.body.iter().map(Stmt::depth).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;

    fn sample() -> ProcessAst {
        ProcessAst::new(vec![
            Stmt::Activity("POD".into()),
            Stmt::Iterative {
                cond: Condition::True,
                body: vec![
                    Stmt::Activity("POR".into()),
                    Stmt::Concurrent(vec![
                        vec![Stmt::Activity("P3DR2".into())],
                        vec![Stmt::Activity("P3DR3".into())],
                    ]),
                ],
            },
        ])
    }

    #[test]
    fn activities_in_order_with_duplicates() {
        let ast = ProcessAst::new(vec![
            Stmt::Activity("A".into()),
            Stmt::Selective(vec![
                (Condition::True, vec![Stmt::Activity("A".into())]),
                (Condition::True, vec![Stmt::Activity("B".into())]),
            ]),
        ]);
        assert_eq!(ast.activities(), vec!["A", "A", "B"]);
    }

    #[test]
    fn node_count_counts_constructs_and_activities() {
        let ast = sample();
        // POD(1) + Iterative(1) + POR(1) + Concurrent(1) + P3DR2(1) + P3DR3(1)
        assert_eq!(ast.node_count(), 6);
    }

    #[test]
    fn depth_reflects_nesting() {
        let ast = sample();
        // Iterative > Concurrent > Activity = 3
        assert_eq!(ast.depth(), 3);
        assert_eq!(ProcessAst::default().depth(), 0);
        assert_eq!(ProcessAst::new(vec![Stmt::Activity("A".into())]).depth(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let ast = sample();
        let json = serde_json::to_string(&ast).unwrap();
        let back: ProcessAst = serde_json::from_str(&json).unwrap();
        assert_eq!(ast, back);
    }
}
