//! Data items and the data state conditions are evaluated against.
//!
//! The condition sub-language of the paper's grammar constrains *data
//! properties*: `<data>.<property> <op> <value>`, with properties such as
//! `Classification`, `Size`, `Location`, or `Value` (cf. constraint
//! `Cons1` of Fig. 13: `D10.Classification = "Resolution File" and
//! D10.Value > 8`).  A [`DataState`] is the set of data items currently in
//! existence together with their properties; it evolves as activities
//! execute (each activity's postconditions add or modify items).

use gridflow_ontology::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One data item: an identifier plus a property map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DataItem {
    /// Property name → value (e.g. `Classification → "2D Image"`).
    pub properties: BTreeMap<String, Value>,
}

impl DataItem {
    /// An item with no properties.
    pub fn new() -> Self {
        Self::default()
    }

    /// An item with a single `Classification` property — the dominant use
    /// in the paper's case study.
    pub fn classified(classification: impl Into<String>) -> Self {
        DataItem::new().with("Classification", Value::str(classification))
    }

    /// Add a property (builder style).
    pub fn with(mut self, property: impl Into<String>, value: Value) -> Self {
        self.properties.insert(property.into(), value);
        self
    }

    /// Set a property in place.
    pub fn set(&mut self, property: impl Into<String>, value: Value) {
        self.properties.insert(property.into(), value);
    }

    /// Borrow a property value.
    pub fn get(&self, property: &str) -> Option<&Value> {
        self.properties.get(property)
    }

    /// The `Classification` property, if set and a string.
    pub fn classification(&self) -> Option<&str> {
        self.get("Classification").and_then(Value::as_str)
    }
}

/// The set of data items in existence at some point of an enactment or a
/// plan simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DataState {
    items: BTreeMap<String, DataItem>,
}

impl DataState {
    /// An empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) an item.
    pub fn insert(&mut self, id: impl Into<String>, item: DataItem) {
        self.items.insert(id.into(), item);
    }

    /// Builder-style insertion.
    pub fn with(mut self, id: impl Into<String>, item: DataItem) -> Self {
        self.insert(id, item);
        self
    }

    /// Remove an item, returning it if present.
    pub fn remove(&mut self, id: &str) -> Option<DataItem> {
        self.items.remove(id)
    }

    /// Borrow an item.
    pub fn get(&self, id: &str) -> Option<&DataItem> {
        self.items.get(id)
    }

    /// Mutably borrow an item.
    pub fn get_mut(&mut self, id: &str) -> Option<&mut DataItem> {
        self.items.get_mut(id)
    }

    /// Does an item with this id exist?
    pub fn contains(&self, id: &str) -> bool {
        self.items.contains_key(id)
    }

    /// A property of an item, if both exist.
    pub fn property(&self, id: &str, property: &str) -> Option<&Value> {
        self.get(id).and_then(|item| item.get(property))
    }

    /// Set a property of an item, creating the item if needed.
    pub fn set_property(&mut self, id: &str, property: impl Into<String>, value: Value) {
        self.items
            .entry(id.to_owned())
            .or_default()
            .set(property, value);
    }

    /// Iterate over `(id, item)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &DataItem)> {
        self.items.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.items.keys().map(String::as_str)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the state empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Merge another state into this one (other wins on conflicts) — used
    /// when an activity's outputs are folded into the running state.
    pub fn merge(&mut self, other: &DataState) {
        for (id, item) in &other.items {
            self.items.insert(id.clone(), item.clone());
        }
    }
}

impl FromIterator<(String, DataItem)> for DataState {
    fn from_iter<T: IntoIterator<Item = (String, DataItem)>>(iter: T) -> Self {
        DataState {
            items: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_builder_and_accessors() {
        let item = DataItem::classified("2D Image")
            .with("Size", Value::Int(1_500_000_000))
            .with("Format", Value::str("Binary"));
        assert_eq!(item.classification(), Some("2D Image"));
        assert_eq!(item.get("Size"), Some(&Value::Int(1_500_000_000)));
        assert!(item.get("Missing").is_none());
    }

    #[test]
    fn state_insert_get_remove() {
        let mut state = DataState::new();
        state.insert("D1", DataItem::classified("POD-Parameter"));
        assert!(state.contains("D1"));
        assert_eq!(
            state.property("D1", "Classification"),
            Some(&Value::str("POD-Parameter"))
        );
        assert_eq!(state.len(), 1);
        let removed = state.remove("D1").unwrap();
        assert_eq!(removed.classification(), Some("POD-Parameter"));
        assert!(state.is_empty());
    }

    #[test]
    fn set_property_creates_item() {
        let mut state = DataState::new();
        state.set_property("D8", "Classification", Value::str("Orientation File"));
        assert_eq!(
            state.get("D8").unwrap().classification(),
            Some("Orientation File")
        );
    }

    #[test]
    fn merge_overwrites_on_conflict() {
        let mut a = DataState::new().with("D1", DataItem::classified("Old"));
        let b = DataState::new()
            .with("D1", DataItem::classified("New"))
            .with("D2", DataItem::classified("Extra"));
        a.merge(&b);
        assert_eq!(a.get("D1").unwrap().classification(), Some("New"));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn iteration_is_in_id_order() {
        let state = DataState::new()
            .with("D2", DataItem::new())
            .with("D1", DataItem::new())
            .with("D10", DataItem::new());
        let ids: Vec<&str> = state.ids().collect();
        assert_eq!(ids, vec!["D1", "D10", "D2"]); // lexicographic
    }

    #[test]
    fn from_iterator() {
        let state: DataState = vec![("D1".to_owned(), DataItem::new())]
            .into_iter()
            .collect();
        assert_eq!(state.len(), 1);
    }
}
