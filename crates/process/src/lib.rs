//! # gridflow-process
//!
//! The process-description language (PDL) of the GridFlow reproduction of
//! *"Metainformation and Workflow Management for Solving Complex Problems
//! in Grid Environments"* (Yu et al., IPDPS 2004).
//!
//! The paper describes complex computations with a formalism "similar to
//! the one provided by Augmented Transition Networks (ATNs)" and gives a
//! BNF grammar for it (§2): a process description starts with `BEGIN`,
//! ends with `END`, and composes activities sequentially (`;`),
//! concurrently (`FORK … JOIN`), selectively (`CHOICE … MERGE`) and
//! iteratively (`ITERATIVE { COND … } { … }`), with a condition
//! sub-language over data properties (`<data>.<property> <op> <value>`).
//!
//! This crate provides:
//!
//! * [`ast`] — the structured form of a process description;
//! * [`lexer`] / [`parser`] — concrete syntax (documented in
//!   [`parser`]) faithful to the paper's grammar, with a pretty-printer
//!   ([`printer`]) such that print→parse is the identity;
//! * [`condition`] — the condition sub-language and its evaluator over a
//!   [`data::DataState`];
//! * [`graph`] — the flattened activity/transition graph of Figure 10,
//!   with the six flow-control activities (Begin, End, Choice, Fork,
//!   Join, Merge) and structural validation;
//! * [`lower`] — AST → graph lowering; [`recover`] — graph → AST
//!   structure recovery (the conversions of Figures 4–7);
//! * [`atn`] — the abstract ATN machine executed by the coordination
//!   service;
//! * [`case`] — case descriptions (initial data, goals, constraints);
//! * [`dot`] — Graphviz export used by the figure-regeneration binaries.

#![warn(missing_docs)]

pub mod ast;
pub mod atn;
pub mod case;
pub mod condition;
pub mod data;
pub mod dot;
pub mod error;
pub mod graph;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod patterns;
pub mod printer;
pub mod recover;

pub use ast::{ProcessAst, Stmt};
pub use atn::{AtnMachine, AtnSnapshot, AtnStatus, EnactmentEvent};
pub use case::CaseDescription;
pub use condition::{AnyClassifiedGoal, CompareOp, Condition};
pub use data::{DataItem, DataState};
pub use error::{ProcessError, Result};
pub use graph::{ActivityDecl, ActivityKind, ProcessGraph, Transition};
