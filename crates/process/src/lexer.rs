//! Lexer for the process-description language.

use crate::error::{ProcessError, Result};
use std::fmt;

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset of the first character of the token.
    pub offset: usize,
    /// The token kind and payload.
    pub kind: TokenKind,
}

/// Token kinds of the PDL.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `BEGIN`
    Begin,
    /// `END`
    End,
    /// `FORK`
    Fork,
    /// `JOIN`
    Join,
    /// `CHOICE`
    Choice,
    /// `MERGE`
    Merge,
    /// `ITERATIVE`
    Iterative,
    /// `COND`
    Cond,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `exists`
    Exists,
    /// `true`
    True,
    /// `false`
    False,
    /// An identifier (activity or data name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A quoted string literal.
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// End of input (always the last token).
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Begin => write!(f, "BEGIN"),
            TokenKind::End => write!(f, "END"),
            TokenKind::Fork => write!(f, "FORK"),
            TokenKind::Join => write!(f, "JOIN"),
            TokenKind::Choice => write!(f, "CHOICE"),
            TokenKind::Merge => write!(f, "MERGE"),
            TokenKind::Iterative => write!(f, "ITERATIVE"),
            TokenKind::Cond => write!(f, "COND"),
            TokenKind::And => write!(f, "and"),
            TokenKind::Or => write!(f, "or"),
            TokenKind::Not => write!(f, "not"),
            TokenKind::Exists => write!(f, "exists"),
            TokenKind::True => write!(f, "true"),
            TokenKind::False => write!(f, "false"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Tokenize a PDL source text.  Line comments start with `//` or `#` and
/// run to end of line.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '#' || (c == '/' && bytes.get(i + 1) == Some(&b'/')) {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Punctuation and operators.
        let punct = match c {
            '{' => Some(TokenKind::LBrace),
            '}' => Some(TokenKind::RBrace),
            '(' => Some(TokenKind::LParen),
            ')' => Some(TokenKind::RParen),
            ';' => Some(TokenKind::Semi),
            ',' => Some(TokenKind::Comma),
            '.' => Some(TokenKind::Dot),
            '=' => Some(TokenKind::Eq),
            _ => None,
        };
        if let Some(kind) = punct {
            tokens.push(Token {
                offset: start,
                kind,
            });
            i += 1;
            continue;
        }
        match c {
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        offset: start,
                        kind: TokenKind::Le,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        offset: start,
                        kind: TokenKind::Lt,
                    });
                    i += 1;
                }
                continue;
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        offset: start,
                        kind: TokenKind::Ge,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        offset: start,
                        kind: TokenKind::Gt,
                    });
                    i += 1;
                }
                continue;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        offset: start,
                        kind: TokenKind::Ne,
                    });
                    i += 2;
                    continue;
                }
                return Err(ProcessError::Lex {
                    offset: start,
                    message: "expected `!=`".into(),
                });
            }
            '"' => {
                i += 1;
                let mut text = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(ProcessError::Lex {
                                offset: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            // Simple escapes: \" and \\.
                            match bytes.get(i + 1) {
                                Some(b'"') => text.push('"'),
                                Some(b'\\') => text.push('\\'),
                                _ => {
                                    return Err(ProcessError::Lex {
                                        offset: i,
                                        message: "unsupported escape".into(),
                                    })
                                }
                            }
                            i += 2;
                        }
                        Some(&b) => {
                            text.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Str(text),
                });
                continue;
            }
            _ => {}
        }
        // Numbers (optionally signed).
        if c.is_ascii_digit()
            || (c == '-'
                && bytes
                    .get(i + 1)
                    .map(|b| b.is_ascii_digit())
                    .unwrap_or(false))
        {
            let mut j = i + 1;
            let mut is_float = false;
            while j < bytes.len() {
                let d = bytes[j] as char;
                if d.is_ascii_digit() {
                    j += 1;
                } else if d == '.'
                    && !is_float
                    && bytes
                        .get(j + 1)
                        .map(|b| b.is_ascii_digit())
                        .unwrap_or(false)
                {
                    is_float = true;
                    j += 1;
                } else {
                    break;
                }
            }
            let text = &source[i..j];
            let kind = if is_float {
                TokenKind::Float(text.parse().map_err(|_| ProcessError::Lex {
                    offset: start,
                    message: format!("invalid float literal `{text}`"),
                })?)
            } else {
                TokenKind::Int(text.parse().map_err(|_| ProcessError::Lex {
                    offset: start,
                    message: format!("invalid integer literal `{text}`"),
                })?)
            };
            tokens.push(Token {
                offset: start,
                kind,
            });
            i = j;
            continue;
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < bytes.len() {
                let d = bytes[j] as char;
                if d.is_ascii_alphanumeric() || d == '_' {
                    j += 1;
                } else {
                    break;
                }
            }
            let text = &source[i..j];
            let kind = match text {
                "BEGIN" => TokenKind::Begin,
                "END" => TokenKind::End,
                "FORK" => TokenKind::Fork,
                "JOIN" => TokenKind::Join,
                "CHOICE" => TokenKind::Choice,
                "MERGE" => TokenKind::Merge,
                "ITERATIVE" => TokenKind::Iterative,
                "COND" => TokenKind::Cond,
                "and" => TokenKind::And,
                "or" => TokenKind::Or,
                "not" => TokenKind::Not,
                "exists" => TokenKind::Exists,
                "true" => TokenKind::True,
                "false" => TokenKind::False,
                _ => TokenKind::Ident(text.to_owned()),
            };
            tokens.push(Token {
                offset: start,
                kind,
            });
            i = j;
            continue;
        }
        return Err(ProcessError::Lex {
            offset: start,
            message: format!("unexpected character `{c}`"),
        });
    }

    tokens.push(Token {
        offset: source.len(),
        kind: TokenKind::Eof,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("BEGIN POD END"),
            vec![
                TokenKind::Begin,
                TokenKind::Ident("POD".into()),
                TokenKind::End,
                TokenKind::Eof
            ]
        );
        // Keywords are case-sensitive: lowercase `begin` is an identifier.
        assert_eq!(
            kinds("begin"),
            vec![TokenKind::Ident("begin".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("< > = != <= >="),
            vec![
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("8 8.5 -3 -0.25"),
            vec![
                TokenKind::Int(8),
                TokenKind::Float(8.5),
                TokenKind::Int(-3),
                TokenKind::Float(-0.25),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn dotted_property_access_lexes_as_three_tokens() {
        assert_eq!(
            kinds("D10.Value"),
            vec![
                TokenKind::Ident("D10".into()),
                TokenKind::Dot,
                TokenKind::Ident("Value".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""Resolution File" "a\"b" "c\\d""#),
            vec![
                TokenKind::Str("Resolution File".into()),
                TokenKind::Str("a\"b".into()),
                TokenKind::Str("c\\d".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(matches!(lex("\"oops"), Err(ProcessError::Lex { .. })));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("POD; // comment\n# another\nPOR;"),
            vec![
                TokenKind::Ident("POD".into()),
                TokenKind::Semi,
                TokenKind::Ident("POR".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn offsets_are_byte_positions() {
        let toks = lex("BEGIN POD").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 6);
    }

    #[test]
    fn unexpected_character_reports_offset() {
        match lex("POD $") {
            Err(ProcessError::Lex { offset, .. }) => assert_eq!(offset, 4),
            other => panic!("expected lex error, got {other:?}"),
        }
    }

    #[test]
    fn bare_bang_is_an_error() {
        assert!(matches!(lex("!x"), Err(ProcessError::Lex { .. })));
    }

    #[test]
    fn minus_without_digit_is_an_error() {
        assert!(matches!(lex("a - b"), Err(ProcessError::Lex { .. })));
    }
}
