//! Property-based tests for the process-description language:
//! print→parse and lower→recover round trips, ATN progress, and condition
//! algebra.

use gridflow_ontology::Value;
use gridflow_process::condition::{CompareOp, Condition};
use gridflow_process::data::{DataItem, DataState};
use gridflow_process::lower::lower;
use gridflow_process::parser::{parse_condition, parse_process};
use gridflow_process::printer::print;
use gridflow_process::{AtnMachine, ProcessAst, Stmt};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn compare_op() -> impl Strategy<Value = CompareOp> {
    prop_oneof![
        Just(CompareOp::Lt),
        Just(CompareOp::Gt),
        Just(CompareOp::Eq),
        Just(CompareOp::Ne),
        Just(CompareOp::Le),
        Just(CompareOp::Ge),
    ]
}

/// Literal values whose `Display` form re-parses exactly (finite floats,
/// strings without quotes/backslashes).
fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1.0e6f64..1.0e6).prop_map(Value::Float),
        "[A-Za-z0-9 _.-]{0,10}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

/// Data ids and property names that cannot collide with keywords.
fn data_id() -> impl Strategy<Value = String> {
    "D[0-9]{1,3}".prop_map(|s| s)
}

fn property_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("Classification".to_owned()),
        Just("Size".to_owned()),
        Just("Value".to_owned()),
        Just("Location".to_owned()),
    ]
}

fn condition() -> impl Strategy<Value = Condition> {
    let atom = prop_oneof![
        Just(Condition::True),
        data_id().prop_map(Condition::Exists),
        (data_id(), property_name(), compare_op(), literal()).prop_map(
            |(data, property, op, value)| Condition::Compare {
                data,
                property,
                op,
                value,
            }
        ),
    ];
    atom.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Condition::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Condition::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|c| Condition::Not(Box::new(c))),
        ]
    })
}

fn activity_name() -> impl Strategy<Value = String> {
    "[A-Z][a-z0-9]{0,4}".prop_map(|s| s)
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let leaf = activity_name().prop_map(Stmt::Activity);
    leaf.prop_recursive(3, 24, 4, |inner| {
        let body = prop::collection::vec(inner.clone(), 0..3);
        prop_oneof![
            prop::collection::vec(body.clone(), 2..4).prop_map(Stmt::Concurrent),
            prop::collection::vec((condition(), body.clone()), 2..4).prop_map(Stmt::Selective),
            (condition(), body).prop_map(|(cond, body)| Stmt::Iterative { cond, body }),
        ]
    })
}

fn process_ast() -> impl Strategy<Value = ProcessAst> {
    prop::collection::vec(stmt(), 0..5).prop_map(ProcessAst::new)
}

/// Loop-free ASTs (no Iterative), so enactment terminates in one pass.
fn loop_free_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = activity_name().prop_map(Stmt::Activity);
    leaf.prop_recursive(3, 24, 4, |inner| {
        let body = prop::collection::vec(inner.clone(), 0..3);
        prop_oneof![
            prop::collection::vec(body.clone(), 2..4).prop_map(Stmt::Concurrent),
            // Guard every branch with `true` so a branch is always viable.
            prop::collection::vec(body, 2..4).prop_map(|bodies| Stmt::Selective(
                bodies.into_iter().map(|b| (Condition::True, b)).collect()
            )),
        ]
    })
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pretty-printer's output re-parses to the identical AST.
    #[test]
    fn print_parse_round_trip(ast in process_ast()) {
        let text = print(&ast);
        let back = parse_process(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(back, ast);
    }

    /// Condition display re-parses to the identical condition (modulo
    /// `false` desugaring to `not true`, which the generator never emits).
    #[test]
    fn condition_display_round_trip(cond in condition()) {
        let text = cond.to_string();
        let back = parse_condition(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(back.to_string(), text);
    }

    /// Lowering then recovering reproduces the AST exactly.
    #[test]
    fn lower_recover_round_trip(ast in process_ast()) {
        let graph = lower("prop", &ast).unwrap();
        graph.validate().unwrap();
        let back = gridflow_process::recover::recover(&graph)
            .unwrap_or_else(|e| panic!("recover failed: {e}"));
        prop_assert_eq!(back, ast);
    }

    /// Lowering preserves the multiset of end-user activity (service)
    /// names.
    #[test]
    fn lowering_preserves_activity_multiset(ast in process_ast()) {
        let graph = lower("prop", &ast).unwrap();
        let mut from_graph: Vec<String> = graph
            .end_user_activities()
            .map(|a| a.service.clone().unwrap())
            .collect();
        let mut from_ast: Vec<String> =
            ast.activities().iter().map(|s| s.to_string()).collect();
        from_graph.sort();
        from_ast.sort();
        prop_assert_eq!(from_graph, from_ast);
    }

    /// On loop-free workflows the ATN machine always finishes, and it
    /// executes each selective block exactly once and each concurrent
    /// branch fully.
    #[test]
    fn atn_terminates_on_loop_free(body in prop::collection::vec(loop_free_stmt(), 0..4)) {
        let ast = ProcessAst::new(body);
        let graph = lower("prop", &ast).unwrap();
        let mut machine = AtnMachine::new(&graph).unwrap();
        let state = DataState::new();
        machine.start(&state).unwrap();
        let mut executed = 0usize;
        while let Some(id) = machine.ready().first().cloned() {
            machine.run_activity(&id, &state).unwrap();
            executed += 1;
            prop_assert!(executed <= graph.end_user_activities().count(),
                "executed more activities than exist in a loop-free flow");
        }
        prop_assert!(machine.is_finished());
    }

    /// Strict evaluation agrees with lenient evaluation whenever all
    /// referenced data exist with the referenced property.
    #[test]
    fn strict_agrees_with_lenient_when_defined(
        cond in condition(),
        size in -100i64..100,
    ) {
        let mut state = DataState::new();
        for id in cond.referenced_data() {
            state.insert(
                id,
                DataItem::new()
                    .with("Classification", Value::str("X"))
                    .with("Size", Value::Int(size))
                    .with("Value", Value::Float(size as f64 / 2.0))
                    .with("Location", Value::str("ucf.edu")),
            );
        }
        match cond.eval_strict(&state) {
            Ok(strict) => prop_assert_eq!(strict, cond.eval(&state)),
            Err(e) => prop_assert!(false, "strict eval failed on fully defined state: {e}"),
        }
    }

    /// The parser and lexer never panic on arbitrary input — they either
    /// produce an AST or a positioned error.
    #[test]
    fn parser_total_on_arbitrary_input(input in ".{0,200}") {
        let _ = parse_process(&input);
        let _ = parse_condition(&input);
    }

    /// The parser never panics on keyword-dense near-miss inputs either.
    #[test]
    fn parser_total_on_token_soup(words in prop::collection::vec(
        prop_oneof![
            Just("BEGIN"), Just("END"), Just("FORK"), Just("JOIN"),
            Just("CHOICE"), Just("MERGE"), Just("ITERATIVE"), Just("COND"),
            Just("{"), Just("}"), Just(";"), Just(","), Just("("), Just(")"),
            Just("A"), Just("and"), Just("or"), Just("true"), Just("D.X"),
            Just("<"), Just("="), Just("8"),
        ], 0..40)) {
        let soup = words.join(" ");
        let _ = parse_process(&soup);
    }

    /// Node count is invariant under print→parse and equals the number of
    /// statements plus nested constructs.
    #[test]
    fn node_count_stable_under_round_trip(ast in process_ast()) {
        let text = print(&ast);
        let back = parse_process(&text).unwrap();
        prop_assert_eq!(back.node_count(), ast.node_count());
        prop_assert_eq!(back.depth(), ast.depth());
    }
}
