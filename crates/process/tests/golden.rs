//! Golden tests for the process-description language: exact concrete
//! syntax for the dinner workflow and a Fig.-10-style nested process.
//!
//! Where the property tests (`prop.rs`) say *print→parse is the
//! identity*, these pin down *what the printed text actually is*, so an
//! accidental grammar or printer change shows up as a readable diff
//! rather than a distant round-trip failure.

use gridflow_process::condition::{CompareOp, Condition};
use gridflow_process::lower::lower;
use gridflow_process::parser::parse_process;
use gridflow_process::printer::print;
use gridflow_process::{ProcessAst, Stmt};

const DINNER_GOLDEN: &str = "\
BEGIN
  prep;
  cook;
  plate;
END
";

#[test]
fn dinner_process_prints_to_its_golden_form() {
    let ast = ProcessAst::new(vec![
        Stmt::Activity("prep".into()),
        Stmt::Activity("cook".into()),
        Stmt::Activity("plate".into()),
    ]);
    assert_eq!(print(&ast), DINNER_GOLDEN);
}

#[test]
fn dinner_golden_parses_back_to_the_same_ast() {
    let ast = parse_process(DINNER_GOLDEN).expect("golden parses");
    assert_eq!(ast.activities(), vec!["prep", "cook", "plate"]);
    assert_eq!(print(&ast), DINNER_GOLDEN, "golden is a fixpoint");
    // The terse one-line spelling the harness workload uses normalizes
    // to the same AST.
    let terse = parse_process("BEGIN prep; cook; plate; END").expect("terse parses");
    assert_eq!(terse, ast);
}

#[test]
fn dinner_golden_lowers_to_a_valid_graph() {
    let ast = parse_process(DINNER_GOLDEN).unwrap();
    let graph = lower("dinner", &ast).expect("lowers");
    graph.validate().expect("valid");
    let services: Vec<String> = graph
        .end_user_activities()
        .map(|a| a.service.clone().unwrap())
        .collect();
    assert_eq!(services, vec!["prep", "cook", "plate"]);
}

/// A Fig.-10-style process: data acquisition, then an iterative
/// refinement containing a concurrent reconstruction fork and a
/// selective surface-fitting choice.
fn reconstruction_ast() -> ProcessAst {
    ProcessAst::new(vec![
        Stmt::Activity("POD".into()),
        Stmt::Iterative {
            cond: Condition::compare("D10", "Value", CompareOp::Gt, 8i64),
            body: vec![
                Stmt::Activity("POR".into()),
                Stmt::Concurrent(vec![
                    vec![Stmt::Activity("P3DR1".into())],
                    vec![
                        Stmt::Activity("P3DR2".into()),
                        Stmt::Activity("P3DR3".into()),
                    ],
                ]),
                Stmt::Selective(vec![
                    (
                        Condition::classified("D9", "3D Model"),
                        vec![Stmt::Activity("PSF".into())],
                    ),
                    (Condition::True, vec![]),
                ]),
            ],
        },
    ])
}

const RECONSTRUCTION_GOLDEN: &str = r#"BEGIN
  POD;
  ITERATIVE { COND { D10.Value > 8 } } {
    POR;
    FORK {
      {
        P3DR1;
      },
      {
        P3DR2;
        P3DR3;
      }
    } JOIN;
    CHOICE {
      COND { D9.Classification = "3D Model" } {
        PSF;
      },
      COND { true } {
      }
    } MERGE;
  };
END
"#;

#[test]
fn reconstruction_process_prints_to_its_golden_form() {
    assert_eq!(print(&reconstruction_ast()), RECONSTRUCTION_GOLDEN);
}

#[test]
fn reconstruction_golden_round_trips_through_parse_and_lower() {
    let ast = parse_process(RECONSTRUCTION_GOLDEN).expect("golden parses");
    assert_eq!(ast, reconstruction_ast());
    assert_eq!(print(&ast), RECONSTRUCTION_GOLDEN, "golden is a fixpoint");
    let graph = lower("fig10", &ast).expect("lowers");
    graph.validate().expect("valid");
    let back = gridflow_process::recover::recover(&graph).expect("recovers");
    assert_eq!(back, ast);
}

#[test]
fn condition_atoms_print_to_their_golden_forms() {
    // The paper's Cons1, plus each extension the grammar adds.
    let cases: Vec<(Condition, &str)> = vec![
        (
            Condition::classified("D10", "Resolution File").and(Condition::compare(
                "D10",
                "Value",
                CompareOp::Gt,
                8i64,
            )),
            "D10.Classification = \"Resolution File\" and D10.Value > 8",
        ),
        (Condition::Exists("D7".into()), "exists D7"),
        (
            Condition::compare("D1", "Size", CompareOp::Le, 100i64).negate(),
            "not D1.Size <= 100",
        ),
        (
            Condition::True.or(Condition::compare("D2", "Value", CompareOp::Ne, 0i64)),
            "true or D2.Value != 0",
        ),
    ];
    for (cond, golden) in cases {
        assert_eq!(cond.to_string(), golden);
        let back = gridflow_process::parser::parse_condition(golden).expect("golden parses");
        assert_eq!(back, cond);
    }
}
