//! Property tests pinning the [`TimerWheel`] to the behaviour it
//! replaced: a per-tick scan over an insertion-ordered deadline list.
//!
//! The recovery layer used to discover due deadlines by scanning its
//! owning collections tick by tick; the wheel must fire the exact same
//! entries in the exact same order — ascending deadline, insertion
//! order within a tick — for arbitrary interleavings of retry, lease,
//! and breaker-probe deadlines, including same-tick ties.

use gridflow_recovery::TimerWheel;
use proptest::prelude::*;

/// The three kinds of deadline the recovery manager registers,
/// modelled as plain data so ordering bugs can't hide behind payload
/// structure.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Kind {
    Retry { activity: String },
    Lease { activity: String, container: String },
    BreakerProbe { container: String },
}

fn kind() -> impl Strategy<Value = Kind> {
    let activity = prop_oneof![Just("A1"), Just("A2"), Just("A3")].prop_map(str::to_string);
    let container = prop_oneof![Just("c1"), Just("c2")].prop_map(str::to_string);
    prop_oneof![
        activity
            .clone()
            .prop_map(|activity| Kind::Retry { activity }),
        (activity, container.clone()).prop_map(|(activity, container)| Kind::Lease {
            activity,
            container
        }),
        container.prop_map(|container| Kind::BreakerProbe { container }),
    ]
}

/// A schedule: insertion-ordered `(deadline, payload)` pairs with a
/// deliberately small tick range so same-tick ties are common.
fn schedule() -> impl Strategy<Value = Vec<(u64, Kind)>> {
    prop::collection::vec((0u64..12, kind()), 0..24)
}

/// The legacy model: walk ticks `0..=horizon`, and at each tick scan
/// the insertion-ordered list for entries now due, firing them in list
/// order.
fn scan_fire_order(entries: &[(u64, Kind)], horizon: u64) -> Vec<(u64, Kind)> {
    let mut fired = Vec::new();
    let mut live: Vec<(u64, Kind)> = entries.to_vec();
    for now in 0..=horizon {
        let mut kept = Vec::with_capacity(live.len());
        for (deadline, payload) in live {
            if deadline <= now {
                fired.push((deadline, payload));
            } else {
                kept.push((deadline, payload));
            }
        }
        live = kept;
    }
    fired
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Driving the wheel tick by tick fires exactly what the legacy
    /// per-tick scan fired, in the same order.
    #[test]
    fn tick_by_tick_firing_matches_per_tick_scan(entries in schedule()) {
        let horizon = entries.iter().map(|(d, _)| *d).max().unwrap_or(0);
        let mut wheel = TimerWheel::new();
        for (deadline, payload) in &entries {
            wheel.schedule(*deadline, payload.clone());
        }
        let mut fired = Vec::new();
        for now in 0..=horizon {
            fired.extend(
                wheel
                    .fire_due(now)
                    .into_iter()
                    .map(|f| (f.deadline, f.payload)),
            );
        }
        prop_assert!(wheel.is_empty());
        prop_assert_eq!(fired, scan_fire_order(&entries, horizon));
    }

    /// Jumping the clock straight to the horizon fires the same
    /// sequence as ticking through every intermediate tick — firing
    /// order depends only on `(deadline, scheduling order)`, never on
    /// how the clock advanced.
    #[test]
    fn single_jump_equals_concatenated_ticks(entries in schedule()) {
        let horizon = entries.iter().map(|(d, _)| *d).max().unwrap_or(0);
        let mut wheel = TimerWheel::new();
        for (deadline, payload) in &entries {
            wheel.schedule(*deadline, payload.clone());
        }
        let jumped: Vec<_> = wheel
            .fire_due(horizon)
            .into_iter()
            .map(|f| (f.deadline, f.payload))
            .collect();
        prop_assert_eq!(jumped, scan_fire_order(&entries, horizon));
    }

    /// `extract` (the `await_retry` path) pulls exactly the matching
    /// entries, in firing order, and leaves the rest untouched — the
    /// same split the legacy `filter`/`retain` pair produced.
    #[test]
    fn extract_splits_like_filter_and_retain(entries in schedule()) {
        let horizon = entries.iter().map(|(d, _)| *d).max().unwrap_or(0);
        let matches = |k: &Kind| matches!(k, Kind::Retry { activity } if activity == "A1");
        let mut wheel = TimerWheel::new();
        for (deadline, payload) in &entries {
            wheel.schedule(*deadline, payload.clone());
        }
        let extracted: Vec<_> = wheel
            .extract(|k| matches(k))
            .into_iter()
            .map(|f| (f.deadline, f.payload))
            .collect();
        let expected_extracted: Vec<(u64, Kind)> = scan_fire_order(&entries, horizon)
            .into_iter()
            .filter(|(_, k)| matches(k))
            .collect();
        prop_assert_eq!(extracted, expected_extracted);
        let remaining: Vec<_> = wheel
            .fire_due(horizon)
            .into_iter()
            .map(|f| (f.deadline, f.payload))
            .collect();
        let expected_remaining: Vec<(u64, Kind)> = scan_fire_order(&entries, horizon)
            .into_iter()
            .filter(|(_, k)| !matches(k))
            .collect();
        prop_assert_eq!(remaining, expected_remaining);
    }

    /// Cancelling an arbitrary subset of entries removes exactly those
    /// entries from the firing sequence, preserving the order of the
    /// survivors.
    #[test]
    fn cancel_removes_exactly_the_cancelled_entries(
        entries in schedule(),
        mask in prop::collection::vec(any::<bool>(), 24),
    ) {
        let horizon = entries.iter().map(|(d, _)| *d).max().unwrap_or(0);
        let mut wheel = TimerWheel::new();
        let ids: Vec<_> = entries
            .iter()
            .map(|(deadline, payload)| wheel.schedule(*deadline, payload.clone()))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            if mask[i] {
                let cancelled = wheel.cancel(*id);
                prop_assert_eq!(cancelled.as_ref(), Some(&entries[i].1));
            }
        }
        let fired: Vec<_> = wheel
            .fire_due(horizon)
            .into_iter()
            .map(|f| (f.deadline, f.payload))
            .collect();
        let survivors: Vec<(u64, Kind)> = entries
            .iter()
            .enumerate()
            .filter(|(i, _)| !mask[*i])
            .map(|(_, e)| e.clone())
            .collect();
        prop_assert_eq!(fired, scan_fire_order(&survivors, horizon));
    }
}
