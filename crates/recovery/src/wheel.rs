//! A virtual-time timer wheel: deadlines keyed by tick, stable FIFO
//! within a tick.
//!
//! The recovery layer tracks three kinds of future deadlines — retry
//! backoffs, activity leases, and breaker half-open probes.  Before this
//! wheel existed each was found by scanning its owning collection per
//! decision; the wheel gives all three one registration surface with
//! O(log n) schedule/cancel and deadline-ordered firing, while keeping
//! the ordering guarantees deterministic replay depends on:
//!
//! * entries fire in ascending deadline order;
//! * entries sharing a deadline fire in the order they were scheduled
//!   (stable FIFO — the scheduling sequence number breaks ties);
//! * firing is driven by the caller's virtual clock, never wall time.
//!
//! Firing a wheel tick-by-tick is therefore observationally identical
//! to the legacy per-tick scan over an insertion-ordered list, which is
//! exactly what the property tests in this module pin down.

use std::collections::BTreeMap;

/// Handle to a scheduled entry, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(u64);

/// One fired entry: the deadline it was scheduled for plus its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fired<T> {
    /// The entry's handle (already removed from the wheel).
    pub id: TimerId,
    /// The virtual tick the entry was scheduled to fire at.
    pub deadline: u64,
    /// The caller's payload.
    pub payload: T,
}

/// A deterministic virtual-time timer wheel.
///
/// Slots are keyed by absolute virtual tick; each slot holds its
/// entries in scheduling order, so [`TimerWheel::fire_due`] yields
/// `(deadline, scheduling sequence)`-ordered results — ascending
/// deadlines, FIFO within a deadline.
#[derive(Debug, Clone, Default)]
pub struct TimerWheel<T> {
    /// deadline tick → entries in scheduling order.
    slots: BTreeMap<u64, Vec<(u64, T)>>,
    /// live entry id → its deadline (cancel support).
    deadlines: BTreeMap<u64, u64>,
    next_seq: u64,
}

impl<T> TimerWheel<T> {
    /// An empty wheel.
    pub fn new() -> Self {
        TimerWheel {
            slots: BTreeMap::new(),
            deadlines: BTreeMap::new(),
            next_seq: 0,
        }
    }

    /// Number of live (scheduled, unfired, uncancelled) entries.
    pub fn len(&self) -> usize {
        self.deadlines.len()
    }

    /// Is the wheel empty?
    pub fn is_empty(&self) -> bool {
        self.deadlines.is_empty()
    }

    /// The earliest live deadline, if any — the next virtual tick at
    /// which anything would fire.
    pub fn next_deadline(&self) -> Option<u64> {
        self.slots.keys().next().copied()
    }

    /// Schedule `payload` to fire at virtual tick `deadline`.  Entries
    /// scheduled for the same tick fire in scheduling order.
    pub fn schedule(&mut self, deadline: u64, payload: T) -> TimerId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.entry(deadline).or_default().push((seq, payload));
        self.deadlines.insert(seq, deadline);
        TimerId(seq)
    }

    /// Remove a scheduled entry, returning its payload if it was still
    /// live.
    pub fn cancel(&mut self, id: TimerId) -> Option<T> {
        let deadline = self.deadlines.remove(&id.0)?;
        let slot = self.slots.get_mut(&deadline)?;
        let pos = slot.iter().position(|(seq, _)| *seq == id.0)?;
        let (_, payload) = slot.remove(pos);
        if slot.is_empty() {
            self.slots.remove(&deadline);
        }
        Some(payload)
    }

    /// Fire every entry whose deadline is `<= now`, in ascending
    /// `(deadline, scheduling order)` — byte-for-byte the order a
    /// tick-by-tick scan of an insertion-ordered list would produce.
    pub fn fire_due(&mut self, now: u64) -> Vec<Fired<T>> {
        let mut fired = Vec::new();
        let due: Vec<u64> = self
            .slots
            .range(..=now)
            .map(|(deadline, _)| *deadline)
            .collect();
        for deadline in due {
            let entries = self.slots.remove(&deadline).unwrap_or_default();
            for (seq, payload) in entries {
                self.deadlines.remove(&seq);
                fired.push(Fired {
                    id: TimerId(seq),
                    deadline,
                    payload,
                });
            }
        }
        fired
    }

    /// Remove (and return, in firing order) every entry matching
    /// `pred`, regardless of deadline — the selective-consumption path
    /// `await_retry` uses to elapse one activity's backoffs without
    /// disturbing anything else on the wheel.
    pub fn extract(&mut self, mut pred: impl FnMut(&T) -> bool) -> Vec<Fired<T>> {
        let mut fired = Vec::new();
        let mut emptied = Vec::new();
        for (&deadline, slot) in self.slots.iter_mut() {
            let mut kept = Vec::with_capacity(slot.len());
            for (seq, payload) in slot.drain(..) {
                if pred(&payload) {
                    self.deadlines.remove(&seq);
                    fired.push(Fired {
                        id: TimerId(seq),
                        deadline,
                        payload,
                    });
                } else {
                    kept.push((seq, payload));
                }
            }
            *slot = kept;
            if slot.is_empty() {
                emptied.push(deadline);
            }
        }
        for deadline in emptied {
            self.slots.remove(&deadline);
        }
        fired
    }

    /// Iterate the live entries in firing order (ascending deadline,
    /// FIFO within a deadline) without consuming them.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.slots
            .iter()
            .flat_map(|(deadline, slot)| slot.iter().map(move |(_, payload)| (*deadline, payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order_with_fifo_ties() {
        let mut w = TimerWheel::new();
        w.schedule(5, "a");
        w.schedule(3, "b");
        w.schedule(5, "c");
        w.schedule(3, "d");
        assert_eq!(w.next_deadline(), Some(3));
        let fired: Vec<_> = w.fire_due(5).into_iter().map(|f| f.payload).collect();
        assert_eq!(fired, vec!["b", "d", "a", "c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn fire_due_leaves_future_entries() {
        let mut w = TimerWheel::new();
        w.schedule(2, 'x');
        w.schedule(9, 'y');
        let fired = w.fire_due(4);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].payload, 'x');
        assert_eq!(fired[0].deadline, 2);
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_deadline(), Some(9));
    }

    #[test]
    fn cancel_removes_exactly_one_entry() {
        let mut w = TimerWheel::new();
        let a = w.schedule(4, "a");
        w.schedule(4, "b");
        assert_eq!(w.cancel(a), Some("a"));
        assert_eq!(w.cancel(a), None, "double-cancel is a no-op");
        let fired: Vec<_> = w.fire_due(4).into_iter().map(|f| f.payload).collect();
        assert_eq!(fired, vec!["b"]);
    }

    #[test]
    fn extract_consumes_matching_entries_in_firing_order() {
        let mut w = TimerWheel::new();
        w.schedule(7, ("A1", 0));
        w.schedule(2, ("A2", 1));
        w.schedule(7, ("A1", 2));
        w.schedule(1, ("A1", 3));
        let fired: Vec<_> = w
            .extract(|(activity, _)| *activity == "A1")
            .into_iter()
            .map(|f| (f.deadline, f.payload.1))
            .collect();
        assert_eq!(fired, vec![(1, 3), (7, 0), (7, 2)]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![(2, &("A2", 1))]);
    }
}
