//! Retry policy: bounded attempts, exponential backoff, seeded jitter.

use serde::{Deserialize, Serialize};

/// How often, and how patiently, to retry a failing execution on the
/// *same* candidate before failing over to the next one.
///
/// All durations are virtual-clock ticks.  Jitter is derived from a
/// seed plus the activity id and attempt index — deterministic, so two
/// replays of the same scenario back off identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts per candidate (1 = no retries, the legacy behaviour).
    pub max_attempts: usize,
    /// Backoff before the first retry, in ticks.
    pub base_backoff_ticks: u64,
    /// Ceiling the exponential curve is clamped to, in ticks.
    pub max_backoff_ticks: u64,
    /// Maximum extra ticks of deterministic jitter added per backoff.
    pub jitter_ticks: u64,
    /// Seed feeding the jitter hash.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ticks: 2,
            max_backoff_ticks: 64,
            jitter_ticks: 3,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The degenerate policy: one attempt, no backoff — byte-identical
    /// to the pre-recovery enactor.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ticks: 0,
            max_backoff_ticks: 0,
            jitter_ticks: 0,
            seed: 0,
        }
    }

    /// Backoff before retry number `retry` (1-based: the wait between
    /// attempt 0 and attempt 1 is `backoff_ticks(activity, 1)`).
    ///
    /// Exponential in the retry index, clamped to
    /// [`RetryPolicy::max_backoff_ticks`], plus a hash-derived jitter in
    /// `0..=jitter_ticks`.  Pure function of `(policy, activity, retry)`.
    pub fn backoff_ticks(&self, activity: &str, retry: usize) -> u64 {
        if retry == 0 {
            return 0;
        }
        let shift = (retry - 1).min(63) as u32;
        let exp = self
            .base_backoff_ticks
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_ticks);
        let jitter = if self.jitter_ticks == 0 {
            0
        } else {
            let h = mix64(
                self.seed
                    ^ fnv1a(activity).rotate_left(17)
                    ^ (retry as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            h % (self.jitter_ticks + 1)
        };
        exp.saturating_add(jitter)
    }
}

/// FNV-1a over the UTF-8 bytes: a stable, dependency-free string hash.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: scrambles the combined key into jitter bits.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_clamped() {
        let p = RetryPolicy {
            jitter_ticks: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_ticks("A1", 0), 0);
        assert_eq!(p.backoff_ticks("A1", 1), 2);
        assert_eq!(p.backoff_ticks("A1", 2), 4);
        assert_eq!(p.backoff_ticks("A1", 3), 8);
        // Deep retries hit the ceiling instead of overflowing.
        assert_eq!(p.backoff_ticks("A1", 20), 64);
        assert_eq!(p.backoff_ticks("A1", 200), 64);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for retry in 1..6 {
            let a = p.backoff_ticks("A7", retry);
            let b = p.backoff_ticks("A7", retry);
            assert_eq!(a, b, "same inputs must give same backoff");
            let bare = RetryPolicy {
                jitter_ticks: 0,
                ..p.clone()
            }
            .backoff_ticks("A7", retry);
            assert!(a >= bare && a <= bare + p.jitter_ticks);
        }
        // Different activities decorrelate.
        let spread: std::collections::BTreeSet<u64> = (0..16)
            .map(|i| p.backoff_ticks(&format!("A{i}"), 1))
            .collect();
        assert!(spread.len() > 1, "jitter should vary across activities");
    }

    #[test]
    fn disabled_policy_is_single_shot_and_free() {
        let p = RetryPolicy::disabled();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.backoff_ticks("A1", 1), 0);
    }

    #[test]
    fn policy_round_trips_through_json() {
        let p = RetryPolicy::default();
        let json = serde_json::to_string(&p).unwrap();
        let back: RetryPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
