//! Deterministic failure-policy layer for GridFlow enactment.
//!
//! The paper's §3.3 escalation story — try alternate containers,
//! monitor execution, re-plan when a case cannot proceed — needs a
//! notion of *when to give up on whom*.  This crate supplies that
//! notion as three composable, fully deterministic mechanisms:
//!
//! * [`RetryPolicy`] — bounded attempts with exponential backoff and
//!   *seeded* jitter, measured in virtual-clock ticks (never wall
//!   time), so replays are byte-identical;
//! * activity **leases** ([`LeaseConfig`]) — every dispatched
//!   execution gets a tick deadline; an execution that outlives its
//!   lease counts as a failure and triggers failover;
//! * per-container **circuit breakers** ([`BreakerConfig`],
//!   [`BreakerRecord`]) — closed → open → half-open, fed by execution
//!   outcomes and monitoring probes, quarantining flaky containers
//!   from matchmaking until a half-open probe readmits them.
//!
//! [`RecoveryManager`] binds the three together behind one stateful
//! façade the enactor drives; its [`RecoveryState`] serializes into
//! enactment checkpoints so crash/resume round-trips preserve breaker
//! states, attempt counters, and pending backoff deadlines.  Every
//! decision is announced on the telemetry trace (`retry.scheduled`,
//! `lease.granted`/`lease.expired`, `breaker.opened`/`half_open`/
//! `closed`), making the whole ladder assertable per seed.
//!
//! All three deadline kinds register into a shared virtual-time
//! [`TimerWheel`] (ticks, stable FIFO within a tick), so "what is due
//! by tick T?" is a range pop instead of a scan; the wheel is
//! runtime-only and rebuilt from [`RecoveryState`] on restore.

#![warn(missing_docs)]

mod breaker;
mod manager;
mod policy;
mod wheel;

pub use breaker::{Admission, BreakerConfig, BreakerRecord, BreakerSignal, BreakerState};
pub use manager::{
    Deadline, LeaseConfig, PendingBackoff, RecoveryManager, RecoveryPolicy, RecoveryState,
};
pub use policy::RetryPolicy;
pub use wheel::{Fired, TimerId, TimerWheel};
