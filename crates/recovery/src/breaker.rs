//! Per-container circuit breakers: closed → open → half-open.
//!
//! A breaker watches one container's execution outcomes (and monitoring
//! probes).  Too many consecutive failures trip it *open*: the
//! container is quarantined from matchmaking for a cooldown measured in
//! virtual ticks.  Once the cooldown elapses the breaker admits exactly
//! one *probe* execution (half-open); a success re-closes it, a failure
//! re-opens it for another cooldown.

use serde::{Deserialize, Serialize};

/// Tuning for one container's breaker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: usize,
    /// Cooldown ticks an open breaker waits before going half-open.
    pub open_ticks: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_ticks: 120,
        }
    }
}

/// The breaker state machine's states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: executions flow freely.
    Closed,
    /// Tripped: the container is quarantined until `until_tick`.
    Open {
        /// First tick at which the breaker may go half-open.
        until_tick: u64,
    },
    /// Cooldown served: one probe execution is admitted.
    HalfOpen,
}

/// What can a caller do with this container right now?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed (or absent): dispatch freely.
    Allow,
    /// Breaker half-open: dispatch one probe attempt only.
    Probe,
    /// Breaker open: excluded from candidate lists.
    Reject,
}

/// A state transition worth announcing on the trace.
#[derive(Debug, Clone, PartialEq)]
pub enum BreakerSignal {
    /// Closed/half-open → open.
    Opened {
        /// Consecutive failures at the moment of tripping.
        consecutive_failures: usize,
        /// Tick at which the cooldown ends.
        until_tick: u64,
    },
    /// Open → half-open (cooldown served).
    HalfOpened,
    /// Half-open → closed (probe succeeded).
    Closed,
}

/// One container's breaker: state plus failure bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakerRecord {
    /// Current state.
    pub state: BreakerState,
    /// Consecutive failures observed since the last success.
    pub consecutive_failures: usize,
    /// Lifetime count of open transitions (diagnostics).
    pub times_opened: usize,
}

impl Default for BreakerRecord {
    fn default() -> Self {
        BreakerRecord {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            times_opened: 0,
        }
    }
}

impl BreakerRecord {
    /// Feed a failure observed at `now_tick`.  Returns the transition,
    /// if one fired.
    pub fn on_failure(&mut self, cfg: &BreakerConfig, now_tick: u64) -> Option<BreakerSignal> {
        self.consecutive_failures += 1;
        match self.state {
            BreakerState::Closed if self.consecutive_failures >= cfg.failure_threshold => {
                Some(self.trip(cfg, now_tick))
            }
            // A failed half-open probe re-opens for a fresh cooldown.
            BreakerState::HalfOpen => Some(self.trip(cfg, now_tick)),
            _ => None,
        }
    }

    /// Feed a success.  Returns `Closed` when a half-open probe
    /// re-closes the breaker.
    pub fn on_success(&mut self) -> Option<BreakerSignal> {
        self.consecutive_failures = 0;
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Closed;
                Some(BreakerSignal::Closed)
            }
            _ => None,
        }
    }

    /// May the container take an execution at `now_tick`?  An open
    /// breaker whose cooldown has elapsed transitions to half-open here
    /// (and says so in the returned signal).
    pub fn admit(&mut self, now_tick: u64) -> (Admission, Option<BreakerSignal>) {
        match self.state {
            BreakerState::Closed => (Admission::Allow, None),
            BreakerState::HalfOpen => (Admission::Probe, None),
            BreakerState::Open { until_tick } if now_tick >= until_tick => {
                self.state = BreakerState::HalfOpen;
                (Admission::Probe, Some(BreakerSignal::HalfOpened))
            }
            BreakerState::Open { .. } => (Admission::Reject, None),
        }
    }

    fn trip(&mut self, cfg: &BreakerConfig, now_tick: u64) -> BreakerSignal {
        let until_tick = now_tick.saturating_add(cfg.open_ticks);
        self.state = BreakerState::Open { until_tick };
        self.times_opened += 1;
        BreakerSignal::Opened {
            consecutive_failures: self.consecutive_failures,
            until_tick,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            open_ticks: 10,
        }
    }

    #[test]
    fn trips_open_at_threshold_and_serves_cooldown() {
        let mut b = BreakerRecord::default();
        assert_eq!(b.on_failure(&cfg(), 5), None);
        let sig = b.on_failure(&cfg(), 6).expect("second failure trips");
        assert_eq!(
            sig,
            BreakerSignal::Opened {
                consecutive_failures: 2,
                until_tick: 16
            }
        );
        // Quarantined during the cooldown…
        assert_eq!(b.admit(10), (Admission::Reject, None));
        // …half-open once it elapses.
        assert_eq!(
            b.admit(16),
            (Admission::Probe, Some(BreakerSignal::HalfOpened))
        );
        assert_eq!(b.state, BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_probe_success_closes_failure_reopens() {
        let mut ok = BreakerRecord {
            state: BreakerState::HalfOpen,
            consecutive_failures: 2,
            times_opened: 1,
        };
        assert_eq!(ok.on_success(), Some(BreakerSignal::Closed));
        assert_eq!(ok.state, BreakerState::Closed);
        assert_eq!(ok.consecutive_failures, 0);

        let mut bad = BreakerRecord {
            state: BreakerState::HalfOpen,
            consecutive_failures: 2,
            times_opened: 1,
        };
        let sig = bad.on_failure(&cfg(), 20).expect("probe failure reopens");
        assert!(matches!(sig, BreakerSignal::Opened { until_tick: 30, .. }));
        assert_eq!(bad.times_opened, 2);
    }

    #[test]
    fn success_resets_the_consecutive_counter() {
        let mut b = BreakerRecord::default();
        b.on_failure(&cfg(), 0);
        assert_eq!(b.on_success(), None);
        assert_eq!(b.consecutive_failures, 0);
        // Needs a full threshold run again to trip.
        assert_eq!(b.on_failure(&cfg(), 1), None);
        assert!(b.on_failure(&cfg(), 2).is_some());
    }

    #[test]
    fn record_round_trips_through_json() {
        let b = BreakerRecord {
            state: BreakerState::Open { until_tick: 42 },
            consecutive_failures: 3,
            times_opened: 1,
        };
        let json = serde_json::to_string(&b).unwrap();
        let back: BreakerRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }
}
