//! The [`RecoveryManager`]: one stateful façade the enactor drives.
//!
//! The manager owns a private virtual *recovery clock* (ticks, advanced
//! by execution durations and backoff waits — never wall time), the
//! per-container breaker records, per-activity attempt counters, and
//! any pending backoff deadlines.  All of that state is captured in
//! [`RecoveryState`], which serializes into enactment checkpoints so a
//! crash/resume round-trip picks up quarantines and counters exactly
//! where they stood.

use std::collections::BTreeMap;

use gridflow_telemetry::{TraceEvent, TraceHandle};
use serde::{Deserialize, Serialize};

use crate::breaker::{Admission, BreakerConfig, BreakerRecord, BreakerSignal, BreakerState};
use crate::policy::RetryPolicy;
use crate::wheel::{TimerId, TimerWheel};

/// Trace source tag for everything the recovery layer emits.
const SOURCE: &str = "recovery";

/// Lease tuning: how long a dispatched execution may run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseConfig {
    /// Ticks an execution may take before its lease expires (one tick
    /// per virtual second of execution).
    pub lease_ticks: u64,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig { lease_ticks: 60 }
    }
}

/// The complete failure policy the enactor runs under.
///
/// [`RecoveryPolicy::default`] is the *disabled* policy: one attempt
/// per candidate, no leases, no breakers — the enactor behaves (and
/// traces) exactly as it did before this crate existed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Master switch; `false` reproduces the legacy candidate loop.
    pub enabled: bool,
    /// Per-candidate retry/backoff policy.
    pub retry: RetryPolicy,
    /// Lease deadlines for dispatched executions (`None` = unlimited).
    pub lease: Option<LeaseConfig>,
    /// Per-container circuit breakers (`None` = never quarantine).
    pub breaker: Option<BreakerConfig>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::disabled()
    }
}

impl RecoveryPolicy {
    /// Legacy-identical behaviour: recovery off.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            enabled: false,
            retry: RetryPolicy::disabled(),
            lease: None,
            breaker: None,
        }
    }

    /// The standard ladder: default retries, a 60-tick lease, default
    /// breakers.
    pub fn standard() -> Self {
        RecoveryPolicy {
            enabled: true,
            retry: RetryPolicy::default(),
            lease: Some(LeaseConfig::default()),
            breaker: Some(BreakerConfig::default()),
        }
    }
}

/// A scheduled-but-not-yet-dispatched backoff wait.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingBackoff {
    /// Activity waiting to retry.
    pub activity: String,
    /// Service it will re-execute.
    pub service: String,
    /// Candidate container it will retry on.
    pub container: String,
    /// Attempt index the retry will carry.
    pub attempt: usize,
    /// Recovery-clock tick at which the retry dispatches.
    pub resume_tick: u64,
}

/// Everything the recovery layer must remember across a crash.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RecoveryState {
    /// The recovery clock: ticks of virtual time consumed by
    /// executions and backoff waits.
    pub now_tick: u64,
    /// Per-container breaker records (only containers that have ever
    /// taken a failure appear here).
    pub breakers: BTreeMap<String, BreakerRecord>,
    /// Lifetime dispatch attempts per activity.
    pub attempts: BTreeMap<String, usize>,
    /// Backoffs scheduled but not yet elapsed.
    pub pending_backoffs: Vec<PendingBackoff>,
}

/// One future deadline registered on the recovery layer's
/// [`TimerWheel`] — every kind of virtual-time wait the ladder tracks.
#[derive(Debug, Clone, PartialEq)]
pub enum Deadline {
    /// A scheduled backoff retry (mirrors one
    /// [`RecoveryState::pending_backoffs`] entry).
    Retry(PendingBackoff),
    /// An outstanding activity lease granted at dispatch.
    Lease {
        /// Leased activity.
        activity: String,
        /// Container executing it.
        container: String,
        /// The allowance that was granted, in ticks.
        lease_ticks: u64,
    },
    /// An open breaker's cooldown end: the tick at which the container
    /// may take its half-open probe.
    BreakerProbe {
        /// The quarantined container.
        container: String,
    },
}

/// Drives retries, leases, and breakers for one enactment.
///
/// All three deadline kinds — retry backoffs, activity leases, breaker
/// half-open probes — register into one virtual-time [`TimerWheel`]
/// instead of being rediscovered by scans of their owning collections.
/// The wheel is runtime-only structure: the serialized
/// [`RecoveryState`] schema is unchanged (pending backoffs still
/// serialize as the insertion-ordered `Vec`), and
/// [`RecoveryManager::restore`] rebuilds the wheel from it.
#[derive(Debug, Clone)]
pub struct RecoveryManager {
    policy: RecoveryPolicy,
    state: RecoveryState,
    trace: TraceHandle,
    /// Virtual-time deadline registry (see [`Deadline`]).
    wheel: TimerWheel<Deadline>,
    /// Live lease entries: `(activity, container)` → wheel handle.
    active_leases: BTreeMap<(String, String), TimerId>,
    /// Open-breaker cooldown entries: container → wheel handle.
    breaker_probes: BTreeMap<String, TimerId>,
}

impl RecoveryManager {
    /// A fresh manager (no trace sink).
    pub fn new(policy: RecoveryPolicy) -> Self {
        Self::with_trace_handle(policy, TraceHandle::none())
    }

    /// A fresh manager announcing its decisions on `trace`.
    pub fn with_trace_handle(policy: RecoveryPolicy, trace: TraceHandle) -> Self {
        RecoveryManager {
            policy,
            state: RecoveryState::default(),
            trace,
            wheel: TimerWheel::new(),
            active_leases: BTreeMap::new(),
            breaker_probes: BTreeMap::new(),
        }
    }

    /// Rebuild a manager from checkpointed state (crash/resume path).
    /// The timer wheel is runtime-only, so it is reconstructed here:
    /// pending backoffs re-register in their checkpointed order
    /// (preserving FIFO ties) and every still-open breaker re-registers
    /// its cooldown probe.
    pub fn restore(policy: RecoveryPolicy, state: RecoveryState, trace: TraceHandle) -> Self {
        let mut wheel = TimerWheel::new();
        for pending in &state.pending_backoffs {
            wheel.schedule(pending.resume_tick, Deadline::Retry(pending.clone()));
        }
        let mut breaker_probes = BTreeMap::new();
        for (container, record) in &state.breakers {
            if let BreakerState::Open { until_tick } = record.state {
                let id = wheel.schedule(
                    until_tick,
                    Deadline::BreakerProbe {
                        container: container.clone(),
                    },
                );
                breaker_probes.insert(container.clone(), id);
            }
        }
        RecoveryManager {
            policy,
            state,
            trace,
            wheel,
            active_leases: BTreeMap::new(),
            breaker_probes,
        }
    }

    /// Is the ladder active, or are we in legacy mode?
    pub fn enabled(&self) -> bool {
        self.policy.enabled
    }

    /// The policy this manager runs under.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Read-only view of the serializable state.
    pub fn state(&self) -> &RecoveryState {
        &self.state
    }

    /// Clone the serializable state (checkpoint capture).
    pub fn snapshot(&self) -> RecoveryState {
        self.state.clone()
    }

    /// Current recovery-clock reading.
    pub fn now_tick(&self) -> u64 {
        self.state.now_tick
    }

    /// The earliest registered deadline (backoff, lease, or breaker
    /// cooldown), if any — the next recovery tick at which something
    /// is due.
    pub fn next_deadline(&self) -> Option<u64> {
        self.wheel.next_deadline()
    }

    /// Every registered deadline in firing order (ascending tick, FIFO
    /// within a tick).
    pub fn deadlines(&self) -> impl Iterator<Item = (u64, &Deadline)> {
        self.wheel.iter()
    }

    /// Convert virtual execution seconds to recovery ticks (1 tick per
    /// started virtual second).
    pub fn ticks_of(seconds: f64) -> u64 {
        seconds.max(0.0).ceil() as u64
    }

    /// Advance the recovery clock by an execution's virtual duration.
    /// Returns the ticks consumed.
    pub fn note_execution_seconds(&mut self, seconds: f64) -> u64 {
        let ticks = Self::ticks_of(seconds);
        self.state.now_tick = self.state.now_tick.saturating_add(ticks);
        ticks
    }

    /// Advance the recovery clock by a flat tick count (dispatch
    /// overhead, failed-execution accounting).
    pub fn tick(&mut self, ticks: u64) {
        self.state.now_tick = self.state.now_tick.saturating_add(ticks);
    }

    // ------------------------------------------------------ admission

    /// May `container` take an execution right now?  Open breakers
    /// whose cooldown elapsed transition to half-open here (announced
    /// as `breaker.half_open`).
    pub fn admit(&mut self, container: &str) -> Admission {
        if self.policy.breaker.is_none() {
            return Admission::Allow;
        }
        let now = self.state.now_tick;
        let Some(record) = self.state.breakers.get_mut(container) else {
            return Admission::Allow;
        };
        let (admission, signal) = record.admit(now);
        self.emit_signal(container, signal);
        admission
    }

    /// `admit` as a plain predicate (used by matchmaking filters).
    pub fn is_admitted(&mut self, container: &str) -> bool {
        self.admit(container) != Admission::Reject
    }

    /// Containers currently under a non-closed breaker.
    pub fn quarantined(&self) -> Vec<String> {
        self.state
            .breakers
            .iter()
            .filter(|(_, r)| r.state != BreakerState::Closed)
            .map(|(c, _)| c.clone())
            .collect()
    }

    // -------------------------------------------------------- attempts

    /// Record a dispatch attempt for `activity`; returns its lifetime
    /// attempt count.
    pub fn note_attempt(&mut self, activity: &str) -> usize {
        let n = self.state.attempts.entry(activity.to_string()).or_insert(0);
        *n += 1;
        *n
    }

    /// Lifetime attempts recorded for `activity`.
    pub fn attempts(&self, activity: &str) -> usize {
        self.state.attempts.get(activity).copied().unwrap_or(0)
    }

    // ---------------------------------------------------------- leases

    /// Grant a lease for a dispatch, if leases are configured.
    /// Announces `lease.granted`, registers the deadline on the wheel,
    /// and returns the allowance in ticks.
    pub fn grant_lease(&mut self, activity: &str, container: &str) -> Option<u64> {
        let lease_ticks = self.policy.lease.as_ref()?.lease_ticks;
        let deadline_tick = self.state.now_tick.saturating_add(lease_ticks);
        let key = (activity.to_string(), container.to_string());
        // A re-grant (retry on the same candidate) supersedes any
        // still-registered lease for the pair.
        if let Some(stale) = self.active_leases.remove(&key) {
            self.wheel.cancel(stale);
        }
        let id = self.wheel.schedule(
            deadline_tick,
            Deadline::Lease {
                activity: activity.to_string(),
                container: container.to_string(),
                lease_ticks,
            },
        );
        self.active_leases.insert(key, id);
        self.trace.emit(
            SOURCE,
            TraceEvent::LeaseGranted {
                activity: activity.to_string(),
                container: container.to_string(),
                lease_ticks,
                deadline_tick,
            },
        );
        Some(lease_ticks)
    }

    /// Did an execution that took `took_ticks` overrun its lease?  If
    /// so, announces `lease.expired` and returns `true` (the caller
    /// must treat the attempt as failed and discard its outputs).
    ///
    /// The verdict is an *overrun check against the granted allowance*
    /// (`took_ticks > lease_ticks`), deliberately independent of the
    /// wheel's absolute deadline: the caller settles an execution whose
    /// duration it already knows, whether or not the recovery clock has
    /// been advanced past the grant.  Either way the lease is settled
    /// and its wheel entry retired.
    pub fn lease_expired(&mut self, activity: &str, container: &str, took_ticks: u64) -> bool {
        let key = (activity.to_string(), container.to_string());
        if let Some(id) = self.active_leases.remove(&key) {
            self.wheel.cancel(id);
        }
        let Some(lease) = self.policy.lease.as_ref() else {
            return false;
        };
        if took_ticks <= lease.lease_ticks {
            return false;
        }
        let lease_ticks = lease.lease_ticks;
        self.trace.emit(
            SOURCE,
            TraceEvent::LeaseExpired {
                activity: activity.to_string(),
                container: container.to_string(),
                lease_ticks,
                took_ticks,
            },
        );
        true
    }

    // -------------------------------------------------------- outcomes

    /// Feed a successful execution outcome into the breaker.
    pub fn record_success(&mut self, container: &str) {
        self.settle_leases_on(container);
        if self.policy.breaker.is_none() {
            return;
        }
        if let Some(record) = self.state.breakers.get_mut(container) {
            let signal = record.on_success();
            self.emit_signal(container, signal);
        }
    }

    /// Feed a failed execution outcome (or expired lease) into the
    /// breaker; may trip it open (`breaker.opened`).
    pub fn record_failure(&mut self, container: &str) {
        self.settle_leases_on(container);
        let Some(cfg) = self.policy.breaker.clone() else {
            return;
        };
        let now = self.state.now_tick;
        let record = self
            .state
            .breakers
            .entry(container.to_string())
            .or_default();
        let signal = record.on_failure(&cfg, now);
        self.emit_signal(container, signal);
    }

    /// Feed a monitoring probe.  Probes cannot *reset* a closed
    /// breaker's failure count (only real successes do), but a probe of
    /// a down container counts as a failure, and probes are what move
    /// open breakers through half-open back to closed.
    pub fn note_probe(&mut self, container: &str, up: bool) {
        if self.policy.breaker.is_none() {
            return;
        }
        // Serve any elapsed cooldown first: open → half-open.
        let now = self.state.now_tick;
        let transitioned = match self.state.breakers.get_mut(container) {
            Some(record) => {
                let (_, signal) = record.admit(now);
                signal
            }
            None if !up => {
                // First signal we ever see for this container is a down
                // probe: start tracking it.
                self.state
                    .breakers
                    .insert(container.to_string(), BreakerRecord::default());
                None
            }
            None => return,
        };
        self.emit_signal(container, transitioned);
        let state = self
            .state
            .breakers
            .get(container)
            .map(|r| r.state.clone())
            .expect("record exists");
        match (state, up) {
            (BreakerState::HalfOpen, true) => self.record_success(container),
            (BreakerState::HalfOpen, false) | (BreakerState::Closed, false) => {
                self.record_failure(container)
            }
            _ => {}
        }
    }

    // --------------------------------------------------------- backoff

    /// Schedule a backoff retry: computes the deterministic backoff,
    /// records the pending deadline, announces `retry.scheduled`, and
    /// returns the resume tick.
    pub fn schedule_retry(
        &mut self,
        activity: &str,
        service: &str,
        container: &str,
        attempt: usize,
        retry: usize,
    ) -> u64 {
        let backoff_ticks = self.policy.retry.backoff_ticks(activity, retry);
        let resume_tick = self.state.now_tick.saturating_add(backoff_ticks);
        let pending = PendingBackoff {
            activity: activity.to_string(),
            service: service.to_string(),
            container: container.to_string(),
            attempt,
            resume_tick,
        };
        self.wheel
            .schedule(resume_tick, Deadline::Retry(pending.clone()));
        self.state.pending_backoffs.push(pending);
        self.trace.emit(
            SOURCE,
            TraceEvent::RetryScheduled {
                activity: activity.to_string(),
                service: service.to_string(),
                container: container.to_string(),
                attempt,
                backoff_ticks,
                resume_tick,
            },
        );
        resume_tick
    }

    /// Elapse every pending backoff for `activity`: the recovery clock
    /// jumps to the latest deadline and the entries are consumed — both
    /// from the wheel (which yields them in firing order) and from the
    /// serialized mirror in [`RecoveryState::pending_backoffs`].
    pub fn await_retry(&mut self, activity: &str) {
        let fired = self
            .wheel
            .extract(|d| matches!(d, Deadline::Retry(p) if p.activity == activity));
        if let Some(latest) = fired.last().map(|f| f.deadline) {
            self.state.now_tick = self.state.now_tick.max(latest);
            self.state
                .pending_backoffs
                .retain(|p| p.activity != activity);
        }
    }

    /// Retire any still-registered lease entries for `container`: an
    /// execution outcome has arrived, so the lease is no longer a
    /// pending deadline (the failed-dispatch path never consults
    /// [`RecoveryManager::lease_expired`], which otherwise settles it).
    fn settle_leases_on(&mut self, container: &str) {
        let settled: Vec<(String, String)> = self
            .active_leases
            .keys()
            .filter(|(_, c)| c == container)
            .cloned()
            .collect();
        for key in settled {
            if let Some(id) = self.active_leases.remove(&key) {
                self.wheel.cancel(id);
            }
        }
    }

    fn emit_signal(&mut self, container: &str, signal: Option<BreakerSignal>) {
        let Some(signal) = signal else { return };
        // Maintain the cooldown-probe registry: an opened breaker's
        // `until_tick` is a future deadline; any transition out of open
        // (half-open, closed) retires it.
        match &signal {
            BreakerSignal::Opened { until_tick, .. } => {
                if let Some(stale) = self.breaker_probes.remove(container) {
                    self.wheel.cancel(stale);
                }
                let id = self.wheel.schedule(
                    *until_tick,
                    Deadline::BreakerProbe {
                        container: container.to_string(),
                    },
                );
                self.breaker_probes.insert(container.to_string(), id);
            }
            BreakerSignal::HalfOpened | BreakerSignal::Closed => {
                if let Some(id) = self.breaker_probes.remove(container) {
                    self.wheel.cancel(id);
                }
            }
        }
        let event = match signal {
            BreakerSignal::Opened {
                consecutive_failures,
                until_tick,
            } => TraceEvent::BreakerOpened {
                container: container.to_string(),
                consecutive_failures,
                until_tick,
            },
            BreakerSignal::HalfOpened => TraceEvent::BreakerHalfOpen {
                container: container.to_string(),
            },
            BreakerSignal::Closed => TraceEvent::BreakerClosed {
                container: container.to_string(),
            },
        };
        self.trace.emit(SOURCE, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RecoveryPolicy {
        RecoveryPolicy {
            enabled: true,
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff_ticks: 2,
                max_backoff_ticks: 16,
                jitter_ticks: 0,
                seed: 1,
            },
            lease: Some(LeaseConfig { lease_ticks: 5 }),
            breaker: Some(BreakerConfig {
                failure_threshold: 2,
                open_ticks: 10,
            }),
        }
    }

    #[test]
    fn default_policy_is_disabled_and_legacy_shaped() {
        let p = RecoveryPolicy::default();
        assert!(!p.enabled);
        assert_eq!(p.retry.max_attempts, 1);
        assert!(p.lease.is_none() && p.breaker.is_none());
    }

    #[test]
    fn failures_trip_breaker_and_cooldown_readmits_via_probe() {
        let mut m = RecoveryManager::new(policy());
        assert_eq!(m.admit("c1"), Admission::Allow);
        m.record_failure("c1");
        m.record_failure("c1");
        assert_eq!(m.admit("c1"), Admission::Reject);
        assert_eq!(m.quarantined(), vec!["c1".to_string()]);
        // Serve the cooldown on the recovery clock, then probe.
        m.tick(10);
        m.note_probe("c1", true);
        assert_eq!(m.admit("c1"), Admission::Allow);
        assert!(m.quarantined().is_empty());
    }

    #[test]
    fn down_probe_counts_as_failure_and_reopens_half_open() {
        let mut m = RecoveryManager::new(policy());
        // Unknown healthy container: probes are a no-op.
        m.note_probe("c2", true);
        assert!(m.state().breakers.is_empty());
        // Down probes accrue failures until the breaker trips.
        m.note_probe("c2", false);
        m.note_probe("c2", false);
        assert_eq!(m.admit("c2"), Admission::Reject);
        // Cooldown elapses, but the container is still down: the
        // half-open probe fails and the breaker reopens.
        m.tick(10);
        m.note_probe("c2", false);
        assert_eq!(m.admit("c2"), Admission::Reject);
    }

    #[test]
    fn lease_expiry_is_an_overrun_check() {
        let mut m = RecoveryManager::new(policy());
        assert_eq!(m.grant_lease("A1", "c1"), Some(5));
        assert!(!m.lease_expired("A1", "c1", 5));
        assert!(m.lease_expired("A1", "c1", 6));
        // No lease config → nothing ever expires.
        let mut off = RecoveryManager::new(RecoveryPolicy::disabled());
        assert_eq!(off.grant_lease("A1", "c1"), None);
        assert!(!off.lease_expired("A1", "c1", 10_000));
    }

    #[test]
    fn schedule_and_await_retry_drive_the_recovery_clock() {
        let mut m = RecoveryManager::new(policy());
        m.note_execution_seconds(3.2); // → 4 ticks
        assert_eq!(m.now_tick(), 4);
        let resume = m.schedule_retry("A1", "cook", "c1", 1, 1);
        assert_eq!(resume, 6); // base 2 << 0 = 2 ticks
        assert_eq!(m.state().pending_backoffs.len(), 1);
        m.await_retry("A1");
        assert_eq!(m.now_tick(), 6);
        assert!(m.state().pending_backoffs.is_empty());
    }

    #[test]
    fn wheel_tracks_backoffs_leases_and_breaker_cooldowns() {
        let mut m = RecoveryManager::new(policy());
        assert_eq!(m.next_deadline(), None);
        // A granted lease registers its absolute deadline.
        m.grant_lease("A1", "c1");
        assert_eq!(m.next_deadline(), Some(5));
        // A scheduled retry registers its resume tick.
        let resume = m.schedule_retry("A1", "cook", "c1", 1, 1);
        assert_eq!(resume, 2);
        assert_eq!(m.next_deadline(), Some(2));
        // Settling the execution retires the lease; draining the
        // backoff empties the wheel.
        assert!(m.lease_expired("A1", "c1", 6));
        m.await_retry("A1");
        assert_eq!(m.next_deadline(), None);
        // Tripping a breaker registers its cooldown end...
        m.record_failure("c1");
        m.record_failure("c1");
        let until = m.state().now_tick + 10;
        assert_eq!(m.next_deadline(), Some(until));
        // ...and the half-open transition retires it.
        m.tick(10);
        m.note_probe("c1", true);
        assert_eq!(m.next_deadline(), None);
    }

    #[test]
    fn failed_dispatch_settles_the_lease_without_an_expiry_check() {
        let mut m = RecoveryManager::new(policy());
        m.grant_lease("A1", "c1");
        assert_eq!(m.deadlines().count(), 1);
        // The Err path never calls lease_expired; the outcome report
        // itself must retire the registered deadline.
        m.record_failure("c1");
        assert_eq!(m.deadlines().count(), 0);
    }

    #[test]
    fn restore_rebuilds_the_wheel_from_checkpointed_state() {
        let mut m = RecoveryManager::new(policy());
        m.record_failure("c1");
        m.record_failure("c1"); // breaker opens, cooldown ends at 10
        m.schedule_retry("A1", "cook", "c2", 1, 1); // resume at 2
        let restored = RecoveryManager::restore(policy(), m.snapshot(), TraceHandle::none());
        let rebuilt: Vec<u64> = restored.deadlines().map(|(t, _)| t).collect();
        assert_eq!(rebuilt, vec![2, 10]);
    }

    #[test]
    fn state_round_trips_through_json_with_pending_backoffs() {
        let mut m = RecoveryManager::new(policy());
        m.note_attempt("A1");
        m.note_attempt("A1");
        m.record_failure("c1");
        m.record_failure("c1");
        m.schedule_retry("A1", "cook", "c1", 2, 1);
        let state = m.snapshot();
        let json = serde_json::to_string(&state).unwrap();
        let back: RecoveryState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        // Restoring picks up quarantines and counters exactly.
        let mut restored = RecoveryManager::restore(policy(), back, TraceHandle::none());
        assert_eq!(restored.admit("c1"), Admission::Reject);
        assert_eq!(restored.attempts("A1"), 2);
        assert_eq!(restored.state().pending_backoffs.len(), 1);
    }
}
