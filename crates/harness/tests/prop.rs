//! Property-based tests for the fault-injection harness.

use gridflow_agents::{AclMessage, Performative, Transport};
use gridflow_harness::workload::dinner_workload;
use gridflow_harness::{
    execution_counts, is_execution_prefix, outcome_fingerprint, FaultAction, FaultPlan,
    FaultyTransport, Scenario, VirtualClock,
};
use proptest::prelude::*;
use serde_json::json;

fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0.0f64..0.4,
        0.0f64..0.3,
        0.0f64..0.3,
        1u64..6,
        0.0f64..0.3,
        prop::option::of((0u64..40, 1u64..40)),
    )
        .prop_map(|(seed, drop, dup, delay, ticks, reorder, cut)| {
            let plan = FaultPlan::seeded(seed)
                .dropping(drop)
                .duplicating(dup)
                .delaying(delay, ticks)
                .reordering(reorder);
            match cut {
                Some((from, len)) => plan.partitioning("a", "b", from, from + len),
                None => plan,
            }
        })
}

fn drive(plan: &FaultPlan, n: usize) -> (FaultyTransport, Vec<AclMessage>) {
    let t = FaultyTransport::new(plan.clone(), VirtualClock::new());
    let mut delivered = Vec::new();
    for i in 0..n {
        let m = AclMessage::new(Performative::Inform, "a", "b", "t", json!(i as u64));
        delivered.extend(t.intercept(m));
    }
    (t, delivered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The transport's accounting balances: deliveries + duplicates −
    /// drops − still-held == messages out, for any plan.
    #[test]
    fn transport_conserves_messages(plan in fault_plan(), n in 1usize..120) {
        let (t, delivered) = drive(&plan, n);
        let schedule = t.schedule();
        prop_assert_eq!(schedule.len(), n, "one decision per message");
        let mut expected = 0usize;
        for e in &schedule {
            match e.action {
                FaultAction::Deliver => expected += 1,
                FaultAction::Drop | FaultAction::Partitioned => {}
                FaultAction::Duplicate => expected += 2,
                FaultAction::Delay { .. } => expected += 1, // held or released
                FaultAction::Reorder => expected += 1,      // swapped or drained
            }
        }
        prop_assert_eq!(delivered.len() + t.held_count() + t.swap_count(), expected);
        // Draining releases exactly the held remainder.
        prop_assert_eq!(t.drain().len() + delivered.len(), expected);
    }

    /// Same plan, same message sequence ⇒ same schedule and deliveries.
    #[test]
    fn transport_is_deterministic(plan in fault_plan(), n in 1usize..120) {
        let (t1, d1) = drive(&plan, n);
        let (t2, d2) = drive(&plan, n);
        prop_assert_eq!(t1.schedule(), t2.schedule());
        let c1: Vec<_> = d1.iter().map(|m| m.content.clone()).collect();
        let c2: Vec<_> = d2.iter().map(|m| m.content.clone()).collect();
        prop_assert_eq!(c1, c2);
    }

    /// Scenario runs are recoverable and replayable for arbitrary seeds,
    /// failure probabilities and crash points.
    #[test]
    fn scenarios_recover_and_replay(
        seed in any::<u64>(),
        fail_prob in 0.0f64..0.6,
        crash_at in prop::option::of(0usize..3),
    ) {
        let mut plan = FaultPlan::seeded(seed).failing_activities(fail_prob);
        if let Some(k) = crash_at {
            plan = plan.crashing_after(k);
        }
        let wl = dinner_workload();
        let outcome = Scenario::new(&plan, &wl).budget(3).run();
        // 1. Complete-or-resumable, always.
        prop_assert!(outcome.is_recoverable(),
            "unrecoverable: {:?}", outcome.final_report().abort_reason);
        // 2. Phases only ever extend the accounting.
        for pair in outcome.reports.windows(2) {
            prop_assert!(is_execution_prefix(&pair[0], &pair[1]));
        }
        // 3. The linear workflow never double-executes on completion.
        if outcome.completed {
            let counts = execution_counts(outcome.final_report());
            prop_assert!(counts.values().all(|&c| c == 1), "{:?}", counts);
        }
        // 4. Byte-identical replay.
        let again = Scenario::new(&plan, &wl).budget(3).run();
        prop_assert_eq!(outcome_fingerprint(&outcome), outcome_fingerprint(&again));
    }

    /// Fault plans survive the storage round trip (a replayed scenario
    /// can be reconstructed from an archived plan).
    #[test]
    fn fault_plans_round_trip(plan in fault_plan(), crash_at in prop::option::of(0usize..5)) {
        let mut plan = plan.losing_node("ac-h2", 1).immunizing("information-1");
        if let Some(k) = crash_at {
            plan = plan.crashing_after(k);
        }
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, plan);
    }
}
