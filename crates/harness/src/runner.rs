//! The scenario runner: unfolds a [`FaultPlan`] against a [`Workload`]
//! through crash, recovery and resume, deterministically.
//!
//! A run proceeds in **phases**.  Phase 0 enacts the workload from the
//! start; if the plan scripts a coordinator crash, everything past the
//! chosen checkpoint is discarded — exactly what a crash loses — and the
//! surviving checkpoint seeds phase 1 via [`Enactor::resume`] on a
//! recovered world.  Phases repeat while the workflow keeps failing and
//! resumable checkpoints remain, up to a resume budget.  Every phase is
//! a pure function of `(plan, workload, phase index)`, so the whole
//! outcome replays byte-identically.

use crate::clock::VirtualClock;
use crate::plan::FaultPlan;
use crate::remote::{RemoteMirror, RemoteReport, TransportSpec};
use crate::workload::Workload;
use gridflow_recovery::RecoveryPolicy;
use gridflow_services::coordination::{EnactmentCheckpoint, EnactmentReport, Enactor};
use gridflow_services::world::GridWorld;
use gridflow_telemetry::{TraceEvent, TraceHandle, TraceLog};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The record of one scenario run: one report per phase.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Phase reports, in order (phase 0 first).
    pub reports: Vec<EnactmentReport>,
    /// How many resumes were performed (`reports.len() - 1`).
    pub resumes: usize,
    /// Did the final phase succeed?
    pub completed: bool,
    /// The latest resumable checkpoint across *all* phases (a resumed
    /// phase that makes no progress captures none of its own, but the
    /// one it resumed from is still good).
    pub last_checkpoint: Option<EnactmentCheckpoint>,
    /// The run's event log, when the scenario asked for one with
    /// [`Scenario::traced`].  `None` for untraced runs and for runs
    /// recording into an external handle the caller already holds.
    pub trace: Option<TraceLog>,
    /// What the remote mirror plane observed, when the scenario selected
    /// [`TransportSpec::Tcp`].  `None` under the in-proc default.
    pub remote: Option<RemoteReport>,
}

// The trace is a recording *of* the outcome, not part of it: two runs
// are equal when their phase accounting agrees, whether or not either
// kept a log.  The remote report is ignored for the same reason — wire
// timings are wall-clock noise, never semantics.  (This is also what
// keeps `traced()` and `transport()` pure observers.)
impl PartialEq for ScenarioOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.reports == other.reports
            && self.resumes == other.resumes
            && self.completed == other.completed
            && self.last_checkpoint == other.last_checkpoint
    }
}

impl ScenarioOutcome {
    /// The last phase's report — the state of the task when the run
    /// ended.
    pub fn final_report(&self) -> &EnactmentReport {
        self.reports.last().expect("a run has at least one phase")
    }

    /// The core conformance invariant: the task completed, **or** it
    /// left a resumable checkpoint, **or** it performed no successful
    /// activity at all (trivially restartable from scratch — nothing to
    /// lose).
    pub fn is_recoverable(&self) -> bool {
        self.completed
            || self.last_checkpoint.is_some()
            || self.final_report().executions.is_empty()
    }
}

/// Apply every scripted node loss whose threshold has been reached.
fn apply_node_losses(
    world: &mut GridWorld,
    plan: &FaultPlan,
    executions_so_far: usize,
    trace: &TraceHandle,
) {
    for loss in &plan.node_loss {
        if loss.after_executions <= executions_so_far {
            // Unknown containers are a plan/workload mismatch; ignore
            // rather than abort — the scenario still runs, just without
            // that loss.  Trace only transitions actually applied to an
            // up container, so each phase records its own effective
            // losses exactly once.
            let was_up = world
                .topology
                .container(&loss.container)
                .map(|c| c.up)
                .unwrap_or(false);
            let _ = world.set_container_up(&loss.container, false);
            if was_up {
                trace.emit(
                    "runner",
                    TraceEvent::NodeLost {
                        container: loss.container.clone(),
                        after_executions: loss.after_executions,
                    },
                );
            }
        }
    }
}

/// What a crashed coordinator can still know: the accounting captured in
/// the checkpoint, nothing after it.
fn crashed_report(cp: &EnactmentCheckpoint) -> EnactmentReport {
    EnactmentReport {
        success: false,
        executions: cp.executions.clone(),
        failed_attempts: cp.failed_attempts.clone(),
        replans: cp.replans,
        final_state: cp.state.clone(),
        total_duration_s: cp.total_duration_s,
        total_cost: cp.total_cost,
        produced: cp.produced.clone(),
        abort_reason: Some("coordinator crashed after checkpoint".into()),
        checkpoints: vec![cp.clone()],
    }
}

/// How a [`Scenario`] records its run.
#[derive(Debug, Clone)]
enum TraceChoice {
    /// No recording (the default).
    Off,
    /// Record into a fresh [`TraceLog`] returned in
    /// [`ScenarioOutcome::trace`].
    Fresh,
    /// Record into a handle the caller already holds.
    External(TraceHandle),
}

/// One fault-injection scenario, options and all — the single front
/// door that used to be four `run_scenario*` free functions.
///
/// ```no_run
/// # use gridflow_harness::{FaultPlan, Scenario, dinner_workload};
/// let plan = FaultPlan::seeded(11).crashing_after(0);
/// let outcome = Scenario::new(&plan, &dinner_workload())
///     .budget(2)
///     .traced()
///     .run();
/// assert!(outcome.completed);
/// let log = outcome.trace.as_ref().unwrap();
/// # let _ = log;
/// ```
#[derive(Debug, Clone)]
pub struct Scenario<'a> {
    plan: &'a FaultPlan,
    workload: &'a Workload,
    max_resumes: usize,
    trace: TraceChoice,
    recovery: Option<RecoveryPolicy>,
    transport: TransportSpec,
}

impl<'a> Scenario<'a> {
    /// A scenario with the default resume budget (4), no tracing, and
    /// the in-proc transport.
    pub fn new(plan: &'a FaultPlan, workload: &'a Workload) -> Self {
        Scenario {
            plan,
            workload,
            max_resumes: 4,
            trace: TraceChoice::Off,
            recovery: None,
            transport: TransportSpec::default(),
        }
    }

    /// Resume failed phases from their latest checkpoint up to
    /// `max_resumes` times.
    pub fn budget(mut self, max_resumes: usize) -> Self {
        self.max_resumes = max_resumes;
        self
    }

    /// Record the run into a fresh [`TraceLog`] stamped by a
    /// [`VirtualClock`] (so `at_s` accumulates simulated execution
    /// seconds), returned in [`ScenarioOutcome::trace`].
    ///
    /// The scenario path is single-threaded and every input is seeded,
    /// so two runs of the same `(plan, workload)` return logs whose
    /// [`TraceLog::to_jsonl`] dumps are byte-identical.
    pub fn traced(mut self) -> Self {
        self.trace = TraceChoice::Fresh;
        self
    }

    /// Record the run into a handle the caller already holds (e.g. a
    /// [`TraceLog`] shared with other instrumentation).  The outcome's
    /// `trace` field stays `None` — the caller has the log.
    pub fn trace_handle(mut self, trace: TraceHandle) -> Self {
        self.trace = TraceChoice::External(trace);
        self
    }

    /// Override the workload's recovery policy for this run.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Select the delivery substrate.  The default,
    /// [`TransportSpec::InProc`], changes nothing; [`TransportSpec::Tcp`]
    /// tees the run's trace stream through a [`RemoteMirror`] onto a
    /// real loopback TCP node (woken on demand, health-probed into
    /// circuit breakers) and returns its [`RemoteReport`] in
    /// [`ScenarioOutcome::remote`].  Either way the engine plane — phase
    /// reports and primary trace bytes — is identical.
    pub fn transport(mut self, transport: TransportSpec) -> Self {
        self.transport = transport;
        self
    }

    /// Unfold the scenario: phases, faults, crashes and resumes, all
    /// mirrored into the trace alongside the events the [`Enactor`]
    /// emits itself.
    pub fn run(self) -> ScenarioOutcome {
        let (handle, log) = match self.trace {
            TraceChoice::Off => (TraceHandle::none(), None),
            TraceChoice::Fresh => {
                let log = TraceLog::with_clock(Arc::new(VirtualClock::new()));
                (TraceHandle::from(log.clone()), Some(log))
            }
            TraceChoice::External(handle) => (handle, None),
        };
        let mirror = match &self.transport {
            TransportSpec::InProc => None,
            TransportSpec::Tcp(cfg) => Some(RemoteMirror::new(cfg.clone())),
        };
        let handle = match &mirror {
            Some(mirror) => mirror.tee(handle),
            None => handle,
        };
        let workload = match self.recovery {
            Some(policy) => self.workload.clone().with_recovery(policy),
            None => self.workload.clone(),
        };
        let mut outcome = run_impl(self.plan, &workload, self.max_resumes, handle);
        outcome.trace = log;
        outcome.remote = mirror.map(RemoteMirror::finish);
        outcome
    }
}

/// Run a scenario with the default resume budget (4).
///
/// Shorthand for `Scenario::new(plan, workload).run()`; reach for
/// [`Scenario`] when you need options.
pub fn run_scenario(plan: &FaultPlan, workload: &Workload) -> ScenarioOutcome {
    Scenario::new(plan, workload).run()
}

fn run_impl(
    plan: &FaultPlan,
    workload: &Workload,
    max_resumes: usize,
    trace: TraceHandle,
) -> ScenarioOutcome {
    let enactor = Enactor::builder()
        .config(workload.config.clone())
        .trace_handle(trace.clone())
        .build();
    let mut phase = 0usize;
    let mut world = workload.fresh_world(plan, phase);
    trace.emit("runner", TraceEvent::PhaseStarted { phase });
    apply_node_losses(&mut world, plan, 0, &trace);
    let mut current = enactor.enact(&mut world, &workload.graph, &workload.case);

    // Scripted coordinator crash: the run past checkpoint `k` never
    // happened.  Serialize→deserialize the checkpoint to model the trip
    // through persistent storage a real restart would take.
    if let Some(k) = plan.crash_after_checkpoints {
        if let Some(cp) = current.checkpoints.get(k) {
            let archived = serde_json::to_string(cp).expect("checkpoints serialize");
            let restored: EnactmentCheckpoint =
                serde_json::from_str(&archived).expect("checkpoints deserialize");
            trace.emit(
                "runner",
                TraceEvent::CoordinatorCrashed {
                    after_checkpoints: k,
                },
            );
            current = crashed_report(&restored);
        }
    }

    let mut resume_cp = current.checkpoints.last().cloned();
    let mut reports = vec![current];
    let mut resumes = 0usize;

    while !reports.last().expect("nonempty").success && resumes < max_resumes {
        let Some(cp) = resume_cp.clone() else { break };
        phase += 1;
        resumes += 1;
        let mut world = workload.fresh_world(plan, phase);
        trace.emit("runner", TraceEvent::PhaseStarted { phase });
        trace.emit(
            "runner",
            TraceEvent::ResumeStarted {
                phase,
                completed_executions: cp.executions.len(),
            },
        );
        apply_node_losses(&mut world, plan, cp.executions.len(), &trace);
        let resumed = enactor.resume(&mut world, cp, &workload.case);
        if let Some(newer) = resumed.checkpoints.last() {
            resume_cp = Some(newer.clone());
        }
        reports.push(resumed);
    }

    ScenarioOutcome {
        completed: reports.last().expect("nonempty").success,
        resumes,
        reports,
        last_checkpoint: resume_cp,
        trace: None,
        remote: None,
    }
}

/// Canonical byte representation of a report, for replay comparison.
pub fn report_fingerprint(report: &EnactmentReport) -> String {
    serde_json::to_string(report).expect("reports serialize")
}

/// Canonical byte representation of a whole outcome.
pub fn outcome_fingerprint(outcome: &ScenarioOutcome) -> String {
    let phases: Vec<String> = outcome.reports.iter().map(report_fingerprint).collect();
    phases.join("\n")
}

/// How many times each activity id executed (a resumed report carries
/// its checkpoint's execution prefix, so the *final* report counts the
/// task's entire history).
pub fn execution_counts(report: &EnactmentReport) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for e in &report.executions {
        *counts.entry(e.activity.clone()).or_insert(0) += 1;
    }
    counts
}

/// Is `prefix`'s execution list a prefix of `full`'s?  (What "resume
/// never re-executes completed work" looks like in the accounting.)
pub fn is_execution_prefix(prefix: &EnactmentReport, full: &EnactmentReport) -> bool {
    prefix.executions.len() <= full.executions.len()
        && full.executions[..prefix.executions.len()] == prefix.executions[..]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::dinner_workload;

    #[test]
    fn null_plan_completes_in_one_phase() {
        let outcome = run_scenario(&FaultPlan::default(), &dinner_workload());
        assert!(outcome.completed);
        assert_eq!(outcome.resumes, 0);
        assert_eq!(outcome.reports.len(), 1);
        assert!(outcome.is_recoverable());
        let counts = execution_counts(outcome.final_report());
        assert!(counts.values().all(|&c| c == 1), "counts: {counts:?}");
    }

    #[test]
    fn scripted_crash_resumes_and_completes() {
        let plan = FaultPlan::seeded(11).crashing_after(0); // crash after `prep`
        let outcome = run_scenario(&plan, &dinner_workload());
        assert!(
            outcome.completed,
            "final: {:?}",
            outcome.final_report().abort_reason
        );
        assert_eq!(outcome.resumes, 1);
        // Phase 0 is the crash stub: one execution, aborted.
        assert_eq!(outcome.reports[0].executions.len(), 1);
        assert!(!outcome.reports[0].success);
        // The resumed phase extends — never repeats — the crashed prefix.
        assert!(is_execution_prefix(
            &outcome.reports[0],
            &outcome.reports[1]
        ));
        let counts = execution_counts(outcome.final_report());
        assert!(counts.values().all(|&c| c == 1), "counts: {counts:?}");
    }

    #[test]
    fn total_node_loss_is_unrecoverable_but_reported() {
        // Both `cook` hosts lost before the run, no replanning: the run
        // must fail after `prep` yet stay resumable (checkpoint exists).
        let plan = FaultPlan::seeded(3)
            .losing_node("ac-h2", 0)
            .losing_node("ac-h3", 0);
        let outcome = Scenario::new(&plan, &dinner_workload()).budget(1).run();
        assert!(!outcome.completed);
        assert!(outcome.is_recoverable());
        assert!(outcome
            .final_report()
            .abort_reason
            .as_deref()
            .unwrap_or("")
            .contains("cook"));
    }

    #[test]
    fn identical_plans_replay_byte_identically() {
        let plan = FaultPlan::seeded(21)
            .failing_activities(0.3)
            .crashing_after(1);
        let wl = dinner_workload();
        let a = run_scenario(&plan, &wl);
        let b = run_scenario(&plan, &wl);
        assert_eq!(outcome_fingerprint(&a), outcome_fingerprint(&b));
    }
}
