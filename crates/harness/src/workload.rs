//! Canonical workloads the harness drives faults against.
//!
//! A [`Workload`] bundles everything one enactment needs — a world
//! builder (fresh state per run, so replays start identically), a
//! process graph, a case description, and an enactment configuration.
//! The `dinner` family mirrors the coordination-service test fixture:
//! each service hosted on two dedicated containers, with `nuke` as an
//! alternative cooker so replanning has somewhere to go.

use crate::plan::FaultPlan;
use gridflow_grid::container::ApplicationContainer;
use gridflow_grid::failure::FailureModel;
use gridflow_grid::resource::{Resource, ResourceKind};
use gridflow_grid::GridTopology;
use gridflow_planner::prelude::GpConfig;
use gridflow_planner::GoalSpec;
use gridflow_process::lower::lower;
use gridflow_process::parser::parse_process;
use gridflow_process::{CaseDescription, Condition, DataItem, ProcessGraph};
use gridflow_recovery::RecoveryPolicy;
use gridflow_services::coordination::EnactmentConfig;
use gridflow_services::world::{GridWorld, OutputSpec, ServiceOffering};

/// One fault-injection scenario's fixed inputs.
#[derive(Clone)]
pub struct Workload {
    /// Scenario name (for logs and failure messages).
    pub name: String,
    /// The workflow to enact.
    pub graph: ProcessGraph,
    /// The case driving it.
    pub case: CaseDescription,
    /// Enactment configuration.
    pub config: EnactmentConfig,
    /// Builds a fresh world (all containers up, no failure model); a
    /// plain `fn` so the workload stays `Clone` and runs can't smuggle
    /// hidden state between phases.
    pub world_builder: fn() -> GridWorld,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("graph", &self.graph.name)
            .finish()
    }
}

impl Workload {
    /// A fresh world with this plan's failure model installed.  `phase`
    /// distinguishes the initial run from post-crash resumes: the
    /// Bernoulli stream is re-seeded per phase (deterministically), so a
    /// recovered coordinator does not replay the exact failures that
    /// killed it.
    pub fn fresh_world(&self, plan: &FaultPlan, phase: usize) -> GridWorld {
        let mut world = (self.world_builder)();
        if plan.activity_failure_prob > 0.0 {
            let phase_seed = plan.seed.wrapping_add(7919u64.wrapping_mul(phase as u64));
            world.failure = FailureModel::new(phase_seed, plan.activity_failure_prob);
            world.failures_are_persistent = plan.persistent_activity_failures;
        }
        for s in &plan.slow_containers {
            world.set_slowdown(&s.container, s.factor);
        }
        world
    }

    /// The same workload with the given recovery policy installed in the
    /// enactment configuration.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.config.recovery = recovery;
        self
    }
}

/// The dinner topology: each of `prep`, `cook`, `nuke`, `plate` hosted
/// on two dedicated containers (`ac-h0`…`ac-h7`), so failing one
/// service's hosts never disables another service.
pub fn dinner_topology() -> GridTopology {
    let mut resources = Vec::new();
    let mut containers = Vec::new();
    let hosting: [(&str, &[&str]); 8] = [
        ("h0", &["prep"]),
        ("h1", &["prep"]),
        ("h2", &["cook"]),
        ("h3", &["cook"]),
        ("h4", &["nuke"]),
        ("h5", &["nuke"]),
        ("h6", &["plate"]),
        ("h7", &["plate"]),
    ];
    for (i, (name, services)) in hosting.iter().enumerate() {
        resources.push(
            Resource::new(*name, ResourceKind::PcCluster)
                .with_nodes(4 + i as u32)
                .with_software(services.iter().map(|s| s.to_string())),
        );
        containers.push(
            ApplicationContainer::new(format!("ac-{name}"), *name)
                .hosting(services.iter().map(|s| s.to_string())),
        );
    }
    GridTopology {
        resources,
        containers,
    }
}

/// The dinner world: `prep → cook|nuke → plate` over [`dinner_topology`].
pub fn dinner_world() -> GridWorld {
    let mut w = GridWorld::new(dinner_topology());
    w.offer(ServiceOffering::new(
        "prep",
        ["Raw"],
        vec![OutputSpec::plain("Prepped")],
    ));
    w.offer(ServiceOffering::new(
        "cook",
        ["Prepped"],
        vec![OutputSpec::plain("Cooked")],
    ));
    w.offer(ServiceOffering::new(
        "nuke",
        ["Prepped"],
        vec![OutputSpec::plain("Cooked")],
    ));
    w.offer(ServiceOffering::new(
        "plate",
        ["Cooked"],
        vec![OutputSpec::plain("Plated")],
    ));
    w
}

/// Goal: some produced item is classified `Plated` (produced ids are
/// fresh `D101`, `D102`, …, so the goal ranges over candidate ids).
/// The range is wide because the agent-stack scenarios enact repeatedly
/// on one *shared* world — each run (and each duplicated request)
/// consumes three fresh ids, and the goal must still be reachable on
/// the later runs.
fn plated_exists_up_to(last_id: usize) -> Condition {
    (102..=last_id)
        .map(|i| Condition::classified(format!("D{i}"), "Plated"))
        .fold(Condition::classified("D101", "Plated"), Condition::or)
}

fn plated_exists() -> Condition {
    plated_exists_up_to(220)
}

/// The dinner case: one `Raw` item, goal `Plated`.
pub fn dinner_case() -> CaseDescription {
    CaseDescription::new("dinner")
        .with_data("D1", DataItem::classified("Raw"))
        .with_goal("G1", plated_exists())
}

/// A dinner case whose goal range is sized for a fleet of `fleet`
/// concurrent cases on one shared world.  The world's fresh-id counter
/// is global, so a fleet of N consumes ~3·N produced ids; the default
/// [`dinner_case`] goal only ranges up to `D220` and would spuriously
/// fail for fleets past ~40 cases.
pub fn dinner_case_for_fleet(fleet: usize) -> CaseDescription {
    CaseDescription::new("dinner")
        .with_data("D1", DataItem::classified("Raw"))
        .with_goal("G1", plated_exists_up_to(100 + 3 * fleet.max(40)))
}

/// The linear dinner workflow `prep; cook; plate`.
pub fn dinner_graph() -> ProcessGraph {
    let ast = parse_process("BEGIN prep; cook; plate; END").expect("dinner source parses");
    lower("dinner", &ast).expect("dinner graph lowers")
}

/// The baseline workload: linear dinner, checkpoint after every
/// successful activity, no replanning.
pub fn dinner_workload() -> Workload {
    Workload {
        name: "dinner".into(),
        graph: dinner_graph(),
        case: dinner_case(),
        config: EnactmentConfig {
            checkpoint_every: Some(1),
            ..EnactmentConfig::default()
        },
        world_builder: dinner_world,
    }
}

/// The replanning workload: same dinner, but activity failure on every
/// candidate escalates to the GP planner (which can route `cook` →
/// `nuke`).
pub fn dinner_replan_workload(gp_seed: u64) -> Workload {
    let mut w = dinner_workload();
    w.name = "dinner+replan".into();
    w.config = EnactmentConfig {
        replan: true,
        planning_goals: vec![GoalSpec {
            classification: "Plated".into(),
            min_count: 1,
        }],
        gp: GpConfig {
            population_size: 80,
            generations: 25,
            seed: gp_seed,
            ..GpConfig::default()
        },
        checkpoint_every: Some(1),
        ..EnactmentConfig::default()
    };
    w
}

/// The recovery workload: the baseline dinner under the standard
/// escalation ladder (retries with backoff, 60-tick leases, circuit
/// breakers) — the configuration the `recovery_failover` acceptance
/// scenario drives.
pub fn dinner_recovery_workload() -> Workload {
    let mut w = dinner_workload();
    w.name = "dinner+recovery".into();
    w.config.recovery = RecoveryPolicy::standard();
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridflow_services::coordination::Enactor;

    #[test]
    fn dinner_happy_path_succeeds() {
        let wl = dinner_workload();
        let mut world = wl.fresh_world(&FaultPlan::default(), 0);
        let report = Enactor::builder()
            .config(wl.config.clone())
            .build()
            .enact(&mut world, &wl.graph, &wl.case);
        assert!(report.success, "abort: {:?}", report.abort_reason);
        assert_eq!(report.executions.len(), 3);
        assert_eq!(report.checkpoints.len(), 3);
    }

    #[test]
    fn fresh_world_installs_the_plan_failure_model() {
        let wl = dinner_workload();
        let plan = FaultPlan::seeded(3)
            .failing_activities(1.0)
            .transient_failures();
        let mut world = wl.fresh_world(&plan, 0);
        assert!(!world.failures_are_persistent);
        let c = world.executable_containers("prep")[0].clone();
        assert!(world.execute_service("prep", &c).is_err());
    }

    #[test]
    fn phases_reseed_the_failure_stream() {
        let wl = dinner_workload();
        let plan = FaultPlan::seeded(5).failing_activities(0.5);
        let mut w0 = wl.fresh_world(&plan, 0);
        let mut w1 = wl.fresh_world(&plan, 1);
        let draws0: Vec<bool> = (0..64).map(|_| w0.failure.execution_fails(1.0)).collect();
        let draws1: Vec<bool> = (0..64).map(|_| w1.failure.execution_fails(1.0)).collect();
        assert_ne!(draws0, draws1, "phase reseed must shift the stream");
    }

    #[test]
    fn fresh_world_installs_scripted_slowdowns() {
        let wl = dinner_workload();
        let plan = FaultPlan::seeded(9).slowing_container("ac-h1", 50.0);
        let world = wl.fresh_world(&plan, 0);
        assert_eq!(world.slowdowns.get("ac-h1"), Some(&50.0));
        assert!(!world.slowdowns.contains_key("ac-h0"));
    }

    #[test]
    fn recovery_workload_survives_a_slow_container_where_baseline_stalls() {
        // One slow `prep` host, no other faults.  The baseline trusts
        // the slow success and pays the stretched duration; the recovery
        // workload leases it out and fails over to the healthy host.
        let plan = FaultPlan::seeded(1).slowing_container("ac-h1", 50.0);
        let base = dinner_workload();
        let mut w = base.fresh_world(&plan, 0);
        let slow = Enactor::builder()
            .config(base.config.clone())
            .build()
            .enact(&mut w, &base.graph, &base.case);
        assert!(slow.success);
        assert_eq!(slow.executions[0].container, "ac-h1");

        let rec = dinner_recovery_workload();
        let mut w = rec.fresh_world(&plan, 0);
        let report = Enactor::builder()
            .config(rec.config.clone())
            .build()
            .enact(&mut w, &rec.graph, &rec.case);
        assert!(report.success, "abort: {:?}", report.abort_reason);
        assert_eq!(report.executions[0].container, "ac-h0");
        assert!(report.failed_attempts.iter().all(|(_, c)| c == "ac-h1"));
    }

    #[test]
    fn topology_isolates_services_per_container_pair() {
        let w = dinner_world();
        for s in ["prep", "cook", "nuke", "plate"] {
            assert_eq!(w.hosting_containers(s).len(), 2, "service {s}");
        }
    }
}
