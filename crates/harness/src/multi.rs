//! Multi-case scenarios: N concurrent enactments of one workload over
//! one shared world, driven by the `gridflow-engine` scheduler under a
//! seeded [`FaultPlan`].
//!
//! This is the engine's half of the determinism bargain: the fault plan
//! scripts *what* goes wrong (node losses keyed to the shared world's
//! execution count, Bernoulli activity failures from the world seed)
//! and the scheduler fixes *when* each case may act, so the merged
//! trace of the whole fleet is a pure function of `(plan, workload,
//! case count)` — and provably independent of the worker count.

use crate::clock::VirtualClock;
use crate::plan::FaultPlan;
use crate::remote::{RemoteMirror, RemoteReport, TransportSpec};
use crate::workload::Workload;
use gridflow_engine::{
    CaseHints, CaseOutcome, CaseScheduler, CaseSpec, CoreSpec, EngineConfig, EngineOutcome,
    PolicySpec, StoreBinding,
};
use gridflow_services::{GridWorld, PlanCacheHandle};
use gridflow_store::{Store, StoreResult};
use gridflow_telemetry::{TeeSink, TraceEvent, TraceHandle, TraceLog, TraceSink};
use std::sync::{Arc, Mutex};

/// Every engine-side knob of a multi-case run, folded into one value.
///
/// [`MultiCaseScenario`] grew its knobs one PR at a time — workers,
/// admission cap, core, policy, store binding, kill tick, transport —
/// each as its own builder method.  `EngineSpec` is the consolidated
/// form: build one spec, apply it with [`MultiCaseScenario::spec`],
/// and reuse it across scenarios (fleet benches, differential sweeps,
/// crash/recover pairs) instead of repeating builder chains.  The
/// per-knob builder methods remain as sugar for one-off tweaks;
/// `tests/deprecated_shims.rs` pins the two surfaces equivalent.
#[derive(Clone)]
pub struct EngineSpec {
    /// Prepare-phase worker threads for [`CoreSpec::Sharded`]
    /// (clamped to the shard count; the unsharded cores ignore it).
    /// Can never change the merged trace — only wall-clock time.
    pub workers: usize,
    /// Cases enacting at once; the rest wait in the admission queue.
    pub max_in_flight: usize,
    /// Which execution core drives the run ([`CoreSpec::Event`],
    /// [`CoreSpec::Scan`], or [`CoreSpec::Sharded`]); all cores emit
    /// byte-identical merged traces.
    pub core: CoreSpec,
    /// Admission policy ordering the waiting queue.
    pub policy: PolicySpec,
    /// Durable store and snapshot cadence (`0` = events only).
    /// `Some` implies tracing — the store's flush source is the run's
    /// trace log.
    pub store: Option<(Arc<Mutex<dyn Store>>, u64)>,
    /// Simulated process death at the top of this tick.
    pub kill_at: Option<u64>,
    /// Delivery substrate for the merged trace stream.
    pub transport: TransportSpec,
    /// Fleet-shared, content-addressed plan cache with single-flight
    /// replanning (`None` = every fiber plans independently, the legacy
    /// behaviour).  A strict performance knob: cache hits return
    /// byte-identical plans, so only `plan.cache_*` trace events and
    /// wall time change.
    pub plan_cache: Option<PlanCacheHandle>,
}

impl Default for EngineSpec {
    fn default() -> Self {
        let config = EngineConfig::default();
        EngineSpec {
            workers: config.workers,
            max_in_flight: config.max_in_flight,
            core: config.core,
            policy: config.policy,
            store: None,
            kill_at: None,
            transport: TransportSpec::default(),
            plan_cache: None,
        }
    }
}

impl std::fmt::Debug for EngineSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSpec")
            .field("workers", &self.workers)
            .field("max_in_flight", &self.max_in_flight)
            .field("core", &self.core)
            .field("policy", &self.policy)
            .field("kill_at", &self.kill_at)
            .finish_non_exhaustive()
    }
}

impl EngineSpec {
    /// Set the prepare-phase worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Cap concurrently-enacting cases.
    pub fn max_in_flight(mut self, cap: usize) -> Self {
        self.max_in_flight = cap;
        self
    }

    /// Select the execution core.
    pub fn core(mut self, core: CoreSpec) -> Self {
        self.core = core;
        self
    }

    /// Select the admission policy.
    pub fn policy(mut self, policy: PolicySpec) -> Self {
        self.policy = policy;
        self
    }

    /// Bind a durable store with the given snapshot cadence.
    pub fn store(mut self, store: Arc<Mutex<dyn Store>>, snapshot_every: u64) -> Self {
        self.store = Some((store, snapshot_every));
        self
    }

    /// Kill the run at the top of `tick`.
    pub fn kill_at(mut self, tick: u64) -> Self {
        self.kill_at = Some(tick);
        self
    }

    /// Select the delivery substrate.
    pub fn transport(mut self, transport: TransportSpec) -> Self {
        self.transport = transport;
        self
    }

    /// Share `cache` across the fleet's replans.
    pub fn plan_cache(mut self, cache: PlanCacheHandle) -> Self {
        self.plan_cache = Some(cache);
        self
    }
}

/// The record of one multi-case run.
#[derive(Debug, Clone)]
pub struct MultiCaseOutcome {
    /// The engine's verdict: one [`CaseOutcome`] per case, in
    /// submission order, plus the tick count.
    pub engine: EngineOutcome,
    /// The merged event log (engine events under source `engine`, each
    /// case's under `case:<label>/…`), when tracing was requested.
    pub trace: Option<TraceLog>,
    /// What the remote mirror plane observed, when the scenario selected
    /// [`TransportSpec::Tcp`].  `None` under the in-proc default.
    /// Observational only — never part of run equality.
    pub remote: Option<RemoteReport>,
}

impl MultiCaseOutcome {
    /// One case's outcome by label.
    pub fn case(&self, label: &str) -> Option<&CaseOutcome> {
        self.engine.cases.iter().find(|c| c.label == label)
    }
}

/// N concurrent copies of a workload's case, enacted over one shared
/// world built from the workload's fault plan.
///
/// Case `i` is labelled `<workload name>-<i>`; labels are the
/// scheduler's canonical order, its reservation-hold owners, and the
/// per-case trace scopes.
#[derive(Clone)]
pub struct MultiCaseScenario<'a> {
    plan: &'a FaultPlan,
    workload: &'a Workload,
    cases: usize,
    config: EngineConfig,
    traced: bool,
    hints_fn: Option<fn(usize) -> CaseHints>,
    store: Option<(Arc<Mutex<dyn Store>>, u64)>,
    kill_at: Option<u64>,
    transport: TransportSpec,
}

impl std::fmt::Debug for MultiCaseScenario<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiCaseScenario")
            .field("workload", &self.workload.name)
            .field("cases", &self.cases)
            .field("config", &self.config)
            .field("kill_at", &self.kill_at)
            .finish_non_exhaustive()
    }
}

impl<'a> MultiCaseScenario<'a> {
    /// `cases` concurrent copies of `workload` under `plan`, with the
    /// default [`EngineConfig`] and no tracing.
    pub fn new(plan: &'a FaultPlan, workload: &'a Workload, cases: usize) -> Self {
        MultiCaseScenario {
            plan,
            workload,
            cases,
            config: EngineConfig::default(),
            traced: false,
            hints_fn: None,
            store: None,
            kill_at: None,
            transport: TransportSpec::default(),
        }
    }

    /// Apply every engine-side knob at once from an [`EngineSpec`],
    /// replacing whatever the individual builder methods set so far
    /// (including resetting knobs the spec leaves at their defaults).
    /// A spec with a store implies tracing, exactly as
    /// [`store`](MultiCaseScenario::store) does.
    pub fn spec(mut self, spec: EngineSpec) -> Self {
        self.config.workers = spec.workers;
        self.config.max_in_flight = spec.max_in_flight;
        self.config.core = spec.core;
        self.config.policy = spec.policy;
        if spec.store.is_some() {
            self.traced = true;
        }
        self.store = spec.store;
        self.kill_at = spec.kill_at;
        self.transport = spec.transport;
        self.config.plan_cache = spec.plan_cache;
        self
    }

    /// Chunk each tick's step list across `workers` (cannot change the
    /// merged trace — that invariance is the point).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Cap concurrently-enacting cases; the rest queue for admission.
    pub fn max_in_flight(mut self, cap: usize) -> Self {
        self.config.max_in_flight = cap;
        self
    }

    /// Replace the whole engine configuration.
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Select the scheduler core: the event core (default), the legacy
    /// scan core (the differential suite's oracle), or the sharded
    /// two-phase core.  All three produce byte-identical merged traces
    /// for a given scenario.
    pub fn core(mut self, core: CoreSpec) -> Self {
        self.config.core = core;
        self
    }

    /// Run on the legacy scan core instead of the event core.
    #[deprecated(since = "0.6.0", note = "use `.core(CoreSpec::Scan)`")]
    pub fn scan_core(self) -> Self {
        self.core(CoreSpec::Scan)
    }

    /// Admit cases under `policy` instead of the FIFO default.
    pub fn policy(mut self, policy: PolicySpec) -> Self {
        self.config.policy = policy;
        self
    }

    /// Derive each case's scheduling hints from its fleet index
    /// (case `i` gets `hints(i)`).  Without this every case carries
    /// neutral [`CaseHints`], which makes every policy degrade to FIFO.
    pub fn case_hints(mut self, hints: fn(usize) -> CaseHints) -> Self {
        self.hints_fn = Some(hints);
        self
    }

    /// Record the merged run into a fresh [`TraceLog`] stamped by a
    /// [`VirtualClock`], returned in [`MultiCaseOutcome::trace`].
    pub fn traced(mut self) -> Self {
        self.traced = true;
        self
    }

    /// Journal the run into `store` at every tick boundary and capture
    /// an engine snapshot every `snapshot_every` ticks (`0` = events
    /// only).  Implies [`traced`](MultiCaseScenario::traced) — the
    /// store's flush source is the scenario's trace log.
    pub fn store(mut self, store: Arc<Mutex<dyn Store>>, snapshot_every: u64) -> Self {
        self.store = Some((store, snapshot_every));
        self.traced = true;
        self
    }

    /// Simulate a process death at the top of `tick`: the run stops
    /// before that tick emits anything, leaving the store holding
    /// exactly the ticks `< tick`.  Recover the fleet afterwards with
    /// [`MultiCaseScenario::recover`] on a scenario bound to the same
    /// store.
    pub fn kill_at(mut self, tick: u64) -> Self {
        self.kill_at = Some(tick);
        self
    }

    /// Select the delivery substrate.  The in-proc default changes
    /// nothing; [`TransportSpec::Tcp`] tees the merged trace stream
    /// through a [`RemoteMirror`] onto a loopback TCP node woken on
    /// demand, returning its [`RemoteReport`] in
    /// [`MultiCaseOutcome::remote`].  The engine plane — case outcomes,
    /// tick count, merged trace bytes — is identical either way.
    pub fn transport(mut self, transport: TransportSpec) -> Self {
        self.transport = transport;
        self
    }

    /// Route every fiber's replans through a fleet-shared,
    /// content-addressed plan cache.  A strict performance knob: GP is a
    /// deterministic function of `(seed, problem)`, so cache hits return
    /// byte-identical plans and the merged trace differs from an
    /// uncached run only in its `plan.cache_*` events.
    pub fn plan_cache(mut self, cache: PlanCacheHandle) -> Self {
        self.config.plan_cache = Some(cache);
        self
    }

    /// Drive every case to completion.
    ///
    /// Scripted node losses fire at the top of the tick on which the
    /// shared world's execution count reaches their threshold — a loss
    /// at `after_executions: k` lands between cases, never inside one
    /// activity, exactly as the single-case runner stages it between
    /// enactment steps.
    pub fn run(self) -> MultiCaseOutcome {
        let log = self
            .traced
            .then(|| TraceLog::with_clock(Arc::new(VirtualClock::new())));
        let mirror = self.build_mirror();
        let mut scheduler = CaseScheduler::new(self.engine_config_for(log.as_ref()));
        let runner_trace = match Self::merged_sink(log.as_ref(), mirror.as_ref()) {
            Some(sink) => {
                scheduler = scheduler.trace(sink.clone());
                TraceHandle::new(sink)
            }
            None => TraceHandle::none(),
        };
        self.submit_fleet(&mut scheduler);
        let mut world = self.workload.fresh_world(self.plan, 0);
        let engine = scheduler.run_with(&mut world, Self::fault_hook(self.plan, runner_trace));
        MultiCaseOutcome {
            engine,
            trace: log,
            remote: mirror.map(RemoteMirror::finish),
        }
    }

    /// Recover a crashed run from the scenario's store: reseed a trace
    /// log at the latest snapshot's journal position (and a
    /// [`VirtualClock`] at its stored reading), then let the engine's
    /// [`CaseScheduler::recover`] restore state and re-execute the
    /// suffix.  With no snapshot in the store the fleet restarts from
    /// scratch and the whole regenerated prefix is byte-verified
    /// against the stored events.
    ///
    /// The scenario must describe the *same* `(plan, workload, cases,
    /// config)` as the crashed run — recovery re-executes, so a
    /// different scenario would diverge and be rejected by the store.
    ///
    /// # Panics
    ///
    /// If the scenario has no [`store`](MultiCaseScenario::store).
    pub fn recover(self) -> StoreResult<MultiCaseOutcome> {
        let (store, _) = self
            .store
            .clone()
            .expect("MultiCaseScenario::recover requires a store");
        let snap = store
            .lock()
            .expect("store mutex poisoned")
            .latest_snapshot()?;
        let log = match &snap {
            Some(rec) => TraceLog::resuming(
                rec.journal_seq,
                Arc::new(VirtualClock::starting_at(rec.clock_ticks, rec.clock_s)),
            ),
            None => TraceLog::with_clock(Arc::new(VirtualClock::new())),
        };
        let mirror = self.build_mirror();
        let sink = Self::merged_sink(Some(&log), mirror.as_ref()).expect("log is always a sink");
        let mut scheduler =
            CaseScheduler::new(self.engine_config_for(Some(&log))).trace(sink.clone());
        let runner_trace = TraceHandle::new(sink);
        // Submissions feed the replay-only path; a snapshot-led
        // recovery discards them in favor of the restored state.
        self.submit_fleet(&mut scheduler);
        let mut world = self.workload.fresh_world(self.plan, 0);
        let engine = scheduler.recover(&mut world, Self::fault_hook(self.plan, runner_trace))?;
        Ok(MultiCaseOutcome {
            engine,
            trace: Some(log),
            remote: mirror.map(RemoteMirror::finish),
        })
    }

    /// The remote mirror for this run, if the transport calls for one.
    fn build_mirror(&self) -> Option<RemoteMirror> {
        match &self.transport {
            TransportSpec::InProc => None,
            TransportSpec::Tcp(cfg) => Some(RemoteMirror::new(cfg.clone())),
        }
    }

    /// The sink the scheduler and runner share: the primary log first
    /// (its bytes stay identical to an un-teed run), the mirror second.
    fn merged_sink(
        log: Option<&TraceLog>,
        mirror: Option<&RemoteMirror>,
    ) -> Option<Arc<dyn TraceSink>> {
        let base = log.map(|l| Arc::new(l.clone()) as Arc<dyn TraceSink>);
        match (base, mirror) {
            (Some(base), Some(m)) => Some(Arc::new(TeeSink::new(vec![base, m.sink()]))),
            (Some(base), None) => Some(base),
            (None, Some(m)) => Some(m.sink()),
            (None, None) => None,
        }
    }

    /// The engine configuration for a run: the scenario's config plus
    /// the run-time store binding (which needs the run's trace log) and
    /// the kill point.
    fn engine_config_for(&self, log: Option<&TraceLog>) -> EngineConfig {
        let mut config = self.config.clone();
        config.kill_at = self.kill_at;
        config.store = self.store.as_ref().map(|(store, snapshot_every)| {
            let journal = log
                .expect("a store-bound scenario is always traced")
                .clone();
            StoreBinding {
                store: store.clone(),
                journal,
                snapshot_every: *snapshot_every,
            }
        });
        config
    }

    /// Submit the fleet's specs in canonical label order.
    fn submit_fleet(&self, scheduler: &mut CaseScheduler) {
        let case = Arc::new(self.workload.case.clone());
        for i in 0..self.cases {
            scheduler.submit(CaseSpec {
                label: format!("{}-{i}", self.workload.name),
                graph: self.workload.graph.clone(),
                case: case.clone(),
                config: self.workload.config.clone(),
                hints: self.hints_fn.map(|f| f(i)).unwrap_or_default(),
            });
        }
    }

    /// The per-tick hook that stages scripted faults against the shared
    /// world: node losses keyed to the execution count, and partition
    /// windows keyed to the engine tick.  Restored worlds replay
    /// correctly: a loss already applied before the crash finds its
    /// container down (`was_up` false) and does not re-emit.
    ///
    /// A partition `(a, b)` is applied conservatively: each side that
    /// names a container in the topology is unreachable (down) for
    /// `[from_tick, heal_tick)`; sides naming no container (e.g.
    /// `"coordinator"`) cost nothing, so `("coordinator", "ac-h2")`
    /// reads as "the coordinator cannot reach `ac-h2`".  The window's
    /// boundaries emit `transport.partitioned` / `transport.healed`
    /// exactly once each; on heal, a side stays down if a scripted node
    /// loss or another still-open partition holds it.
    fn fault_hook(
        plan: &FaultPlan,
        runner_trace: TraceHandle,
    ) -> impl FnMut(u64, &mut GridWorld) + '_ {
        let mut phases = vec![0u8; plan.partitions.len()];
        move |tick, world| {
            for loss in &plan.node_loss {
                if loss.after_executions <= world.history.len() {
                    let was_up = world
                        .topology
                        .container(&loss.container)
                        .map(|c| c.up)
                        .unwrap_or(false);
                    let _ = world.set_container_up(&loss.container, false);
                    if was_up {
                        runner_trace.emit(
                            "runner",
                            TraceEvent::NodeLost {
                                container: loss.container.clone(),
                                after_executions: loss.after_executions,
                            },
                        );
                    }
                }
            }
            for (i, cut) in plan.partitions.iter().enumerate() {
                match phases[i] {
                    // A window the run jumped clean over (or a
                    // degenerate `from == heal` one) never opened.
                    0 if tick >= cut.heal_tick => phases[i] = 2,
                    0 if tick >= cut.from_tick => {
                        for side in [&cut.a, &cut.b] {
                            if world.topology.container(side).is_some() {
                                let _ = world.set_container_up(side, false);
                            }
                        }
                        runner_trace.emit(
                            "runner",
                            TraceEvent::PartitionStarted {
                                a: cut.a.clone(),
                                b: cut.b.clone(),
                                heal_tick: cut.heal_tick,
                            },
                        );
                        phases[i] = 1;
                    }
                    1 if tick >= cut.heal_tick => {
                        for side in [&cut.a, &cut.b] {
                            if world.topology.container(side).is_some()
                                && !held_down(plan, side, world.history.len(), tick, i)
                            {
                                let _ = world.set_container_up(side, true);
                            }
                        }
                        runner_trace.emit(
                            "runner",
                            TraceEvent::PartitionHealed {
                                a: cut.a.clone(),
                                b: cut.b.clone(),
                            },
                        );
                        phases[i] = 2;
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Is `container` held down at `tick` by something other than partition
/// `healing` — a tripped node loss, or another still-open partition
/// naming it?
fn held_down(
    plan: &FaultPlan,
    container: &str,
    executions: usize,
    tick: u64,
    healing: usize,
) -> bool {
    plan.node_loss
        .iter()
        .any(|l| l.container == container && l.after_executions <= executions)
        || plan.partitions.iter().enumerate().any(|(j, p)| {
            j != healing && p.active_at(tick) && (p.a == container || p.b == container)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::dinner_workload;

    #[test]
    fn a_fleet_of_clean_cases_all_succeed() {
        let outcome = MultiCaseScenario::new(&FaultPlan::default(), &dinner_workload(), 3).run();
        assert_eq!(outcome.engine.cases.len(), 3);
        assert!(outcome.engine.all_succeeded());
        // Labels are unique and ordered.
        let labels: Vec<&str> = outcome
            .engine
            .cases
            .iter()
            .map(|c| c.label.as_str())
            .collect();
        assert_eq!(labels, ["dinner-0", "dinner-1", "dinner-2"]);
        // Interleaving three cases cannot take fewer ticks than the
        // longest single case.
        assert!(outcome.engine.ticks >= 4, "ticks: {}", outcome.engine.ticks);
    }

    #[test]
    fn fault_hook_stages_partition_windows_and_honors_holds() {
        use crate::workload::dinner_world;
        use gridflow_telemetry::TraceQuery;

        // Two overlapping windows plus a node loss that outlives them:
        //   ac-h2 cut for ticks [2, 4) by a coordinator-side partition,
        //   ac-h4/ac-h5 cut for [1, 3), and ac-h5 scripted lost from the
        //   start — its heal must find it held down.
        let plan = FaultPlan::seeded(1)
            .partitioning("coordinator", "ac-h2", 2, 4)
            .partitioning("ac-h4", "ac-h5", 1, 3)
            .losing_node("ac-h5", 0);
        let log = TraceLog::new();
        let mut world = dinner_world();
        let up = |w: &GridWorld, id: &str| w.topology.container(id).unwrap().up;
        {
            let mut hook = MultiCaseScenario::fault_hook(&plan, TraceHandle::from(log.clone()));
            for tick in 0..6 {
                hook(tick, &mut world);
                assert_eq!(up(&world, "ac-h2"), !(2..4).contains(&tick), "tick {tick}");
                assert_eq!(up(&world, "ac-h4"), !(1..3).contains(&tick), "tick {tick}");
                assert!(!up(&world, "ac-h5"), "node loss holds ac-h5 at tick {tick}");
            }
        }

        let records = log.records();
        let q = TraceQuery::new(records.clone());
        q.assert_partition_discipline();
        assert_eq!(q.count(|e| e.label() == "fault.node_lost"), 1);
        assert_eq!(q.count(|e| e.label() == "transport.partitioned"), 2);
        assert_eq!(q.count(|e| e.label() == "transport.healed"), 2);
        // Boundary order follows the windows: the [1,3) cut opens and
        // heals before the [2,4) one heals.
        let labels: Vec<&str> = records.iter().map(|r| r.event.label()).collect();
        assert_eq!(
            labels,
            [
                "fault.node_lost",
                "transport.partitioned", // ac-h4/ac-h5 at tick 1
                "transport.partitioned", // coordinator/ac-h2 at tick 2
                "transport.healed",      // ac-h4/ac-h5 at tick 3
                "transport.healed",      // coordinator/ac-h2 at tick 4
            ]
        );
    }

    #[test]
    fn traced_fleets_tag_every_case_event_with_its_scope() {
        let outcome = MultiCaseScenario::new(&FaultPlan::default(), &dinner_workload(), 2)
            .traced()
            .run();
        let log = outcome.trace.expect("traced run keeps its log");
        let records = log.records();
        assert!(records
            .iter()
            .any(|r| r.source.starts_with("case:dinner-0/")));
        assert!(records
            .iter()
            .any(|r| r.source.starts_with("case:dinner-1/")));
        // Engine events are unscoped.
        assert!(records
            .iter()
            .any(|r| r.source == "engine" && r.event.label() == "engine.tick"));
    }
}
