//! Multi-case scenarios: N concurrent enactments of one workload over
//! one shared world, driven by the `gridflow-engine` scheduler under a
//! seeded [`FaultPlan`].
//!
//! This is the engine's half of the determinism bargain: the fault plan
//! scripts *what* goes wrong (node losses keyed to the shared world's
//! execution count, Bernoulli activity failures from the world seed)
//! and the scheduler fixes *when* each case may act, so the merged
//! trace of the whole fleet is a pure function of `(plan, workload,
//! case count)` — and provably independent of the worker count.

use crate::clock::VirtualClock;
use crate::plan::FaultPlan;
use crate::workload::Workload;
use gridflow_engine::{
    CaseHints, CaseOutcome, CaseScheduler, CaseSpec, EngineConfig, EngineOutcome, PolicySpec,
    StoreBinding,
};
use gridflow_services::GridWorld;
use gridflow_store::{Store, StoreResult};
use gridflow_telemetry::{TraceEvent, TraceHandle, TraceLog, TraceSink};
use std::sync::{Arc, Mutex};

/// The record of one multi-case run.
#[derive(Debug, Clone)]
pub struct MultiCaseOutcome {
    /// The engine's verdict: one [`CaseOutcome`] per case, in
    /// submission order, plus the tick count.
    pub engine: EngineOutcome,
    /// The merged event log (engine events under source `engine`, each
    /// case's under `case:<label>/…`), when tracing was requested.
    pub trace: Option<TraceLog>,
}

impl MultiCaseOutcome {
    /// One case's outcome by label.
    pub fn case(&self, label: &str) -> Option<&CaseOutcome> {
        self.engine.cases.iter().find(|c| c.label == label)
    }
}

/// N concurrent copies of a workload's case, enacted over one shared
/// world built from the workload's fault plan.
///
/// Case `i` is labelled `<workload name>-<i>`; labels are the
/// scheduler's canonical order, its reservation-hold owners, and the
/// per-case trace scopes.
#[derive(Clone)]
pub struct MultiCaseScenario<'a> {
    plan: &'a FaultPlan,
    workload: &'a Workload,
    cases: usize,
    config: EngineConfig,
    traced: bool,
    hints_fn: Option<fn(usize) -> CaseHints>,
    store: Option<(Arc<Mutex<dyn Store>>, u64)>,
    kill_at: Option<u64>,
}

impl std::fmt::Debug for MultiCaseScenario<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiCaseScenario")
            .field("workload", &self.workload.name)
            .field("cases", &self.cases)
            .field("config", &self.config)
            .field("kill_at", &self.kill_at)
            .finish_non_exhaustive()
    }
}

impl<'a> MultiCaseScenario<'a> {
    /// `cases` concurrent copies of `workload` under `plan`, with the
    /// default [`EngineConfig`] and no tracing.
    pub fn new(plan: &'a FaultPlan, workload: &'a Workload, cases: usize) -> Self {
        MultiCaseScenario {
            plan,
            workload,
            cases,
            config: EngineConfig::default(),
            traced: false,
            hints_fn: None,
            store: None,
            kill_at: None,
        }
    }

    /// Chunk each tick's step list across `workers` (cannot change the
    /// merged trace — that invariance is the point).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Cap concurrently-enacting cases; the rest queue for admission.
    pub fn max_in_flight(mut self, cap: usize) -> Self {
        self.config.max_in_flight = cap;
        self
    }

    /// Replace the whole engine configuration.
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Run on the legacy scan core instead of the event core — the
    /// differential equivalence suite's oracle switch.
    pub fn scan_core(mut self) -> Self {
        self.config.scan_core = true;
        self
    }

    /// Admit cases under `policy` instead of the FIFO default.
    pub fn policy(mut self, policy: PolicySpec) -> Self {
        self.config.policy = policy;
        self
    }

    /// Derive each case's scheduling hints from its fleet index
    /// (case `i` gets `hints(i)`).  Without this every case carries
    /// neutral [`CaseHints`], which makes every policy degrade to FIFO.
    pub fn case_hints(mut self, hints: fn(usize) -> CaseHints) -> Self {
        self.hints_fn = Some(hints);
        self
    }

    /// Record the merged run into a fresh [`TraceLog`] stamped by a
    /// [`VirtualClock`], returned in [`MultiCaseOutcome::trace`].
    pub fn traced(mut self) -> Self {
        self.traced = true;
        self
    }

    /// Journal the run into `store` at every tick boundary and capture
    /// an engine snapshot every `snapshot_every` ticks (`0` = events
    /// only).  Implies [`traced`](MultiCaseScenario::traced) — the
    /// store's flush source is the scenario's trace log.
    pub fn store(mut self, store: Arc<Mutex<dyn Store>>, snapshot_every: u64) -> Self {
        self.store = Some((store, snapshot_every));
        self.traced = true;
        self
    }

    /// Simulate a process death at the top of `tick`: the run stops
    /// before that tick emits anything, leaving the store holding
    /// exactly the ticks `< tick`.  Recover the fleet afterwards with
    /// [`MultiCaseScenario::recover`] on a scenario bound to the same
    /// store.
    pub fn kill_at(mut self, tick: u64) -> Self {
        self.kill_at = Some(tick);
        self
    }

    /// Drive every case to completion.
    ///
    /// Scripted node losses fire at the top of the tick on which the
    /// shared world's execution count reaches their threshold — a loss
    /// at `after_executions: k` lands between cases, never inside one
    /// activity, exactly as the single-case runner stages it between
    /// enactment steps.
    pub fn run(self) -> MultiCaseOutcome {
        let log = self
            .traced
            .then(|| TraceLog::with_clock(Arc::new(VirtualClock::new())));
        let mut scheduler = CaseScheduler::new(self.engine_config_for(log.as_ref()));
        let runner_trace = match &log {
            Some(log) => {
                scheduler = scheduler.trace(Arc::new(log.clone()) as Arc<dyn TraceSink>);
                TraceHandle::from(log.clone())
            }
            None => TraceHandle::none(),
        };
        self.submit_fleet(&mut scheduler);
        let mut world = self.workload.fresh_world(self.plan, 0);
        let engine = scheduler.run_with(&mut world, Self::node_loss_hook(self.plan, runner_trace));
        MultiCaseOutcome { engine, trace: log }
    }

    /// Recover a crashed run from the scenario's store: reseed a trace
    /// log at the latest snapshot's journal position (and a
    /// [`VirtualClock`] at its stored reading), then let the engine's
    /// [`CaseScheduler::recover`] restore state and re-execute the
    /// suffix.  With no snapshot in the store the fleet restarts from
    /// scratch and the whole regenerated prefix is byte-verified
    /// against the stored events.
    ///
    /// The scenario must describe the *same* `(plan, workload, cases,
    /// config)` as the crashed run — recovery re-executes, so a
    /// different scenario would diverge and be rejected by the store.
    ///
    /// # Panics
    ///
    /// If the scenario has no [`store`](MultiCaseScenario::store).
    pub fn recover(self) -> StoreResult<MultiCaseOutcome> {
        let (store, _) = self
            .store
            .clone()
            .expect("MultiCaseScenario::recover requires a store");
        let snap = store
            .lock()
            .expect("store mutex poisoned")
            .latest_snapshot()?;
        let log = match &snap {
            Some(rec) => TraceLog::resuming(
                rec.journal_seq,
                Arc::new(VirtualClock::starting_at(rec.clock_ticks, rec.clock_s)),
            ),
            None => TraceLog::with_clock(Arc::new(VirtualClock::new())),
        };
        let mut scheduler = CaseScheduler::new(self.engine_config_for(Some(&log)))
            .trace(Arc::new(log.clone()) as Arc<dyn TraceSink>);
        let runner_trace = TraceHandle::from(log.clone());
        // Submissions feed the replay-only path; a snapshot-led
        // recovery discards them in favor of the restored state.
        self.submit_fleet(&mut scheduler);
        let mut world = self.workload.fresh_world(self.plan, 0);
        let engine =
            scheduler.recover(&mut world, Self::node_loss_hook(self.plan, runner_trace))?;
        Ok(MultiCaseOutcome {
            engine,
            trace: Some(log),
        })
    }

    /// The engine configuration for a run: the scenario's config plus
    /// the run-time store binding (which needs the run's trace log) and
    /// the kill point.
    fn engine_config_for(&self, log: Option<&TraceLog>) -> EngineConfig {
        let mut config = self.config.clone();
        config.kill_at = self.kill_at;
        config.store = self.store.as_ref().map(|(store, snapshot_every)| {
            let journal = log
                .expect("a store-bound scenario is always traced")
                .clone();
            StoreBinding {
                store: store.clone(),
                journal,
                snapshot_every: *snapshot_every,
            }
        });
        config
    }

    /// Submit the fleet's specs in canonical label order.
    fn submit_fleet(&self, scheduler: &mut CaseScheduler) {
        let case = Arc::new(self.workload.case.clone());
        for i in 0..self.cases {
            scheduler.submit(CaseSpec {
                label: format!("{}-{i}", self.workload.name),
                graph: self.workload.graph.clone(),
                case: case.clone(),
                config: self.workload.config.clone(),
                hints: self.hints_fn.map(|f| f(i)).unwrap_or_default(),
            });
        }
    }

    /// The per-tick hook that stages scripted node losses, keyed to the
    /// shared world's execution count.  Restored worlds replay
    /// correctly: a loss already applied before the crash finds its
    /// container down (`was_up` false) and does not re-emit.
    fn node_loss_hook(
        plan: &FaultPlan,
        runner_trace: TraceHandle,
    ) -> impl FnMut(u64, &mut GridWorld) + '_ {
        move |_tick, world| {
            for loss in &plan.node_loss {
                if loss.after_executions <= world.history.len() {
                    let was_up = world
                        .topology
                        .container(&loss.container)
                        .map(|c| c.up)
                        .unwrap_or(false);
                    let _ = world.set_container_up(&loss.container, false);
                    if was_up {
                        runner_trace.emit(
                            "runner",
                            TraceEvent::NodeLost {
                                container: loss.container.clone(),
                                after_executions: loss.after_executions,
                            },
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::dinner_workload;

    #[test]
    fn a_fleet_of_clean_cases_all_succeed() {
        let outcome = MultiCaseScenario::new(&FaultPlan::default(), &dinner_workload(), 3).run();
        assert_eq!(outcome.engine.cases.len(), 3);
        assert!(outcome.engine.all_succeeded());
        // Labels are unique and ordered.
        let labels: Vec<&str> = outcome
            .engine
            .cases
            .iter()
            .map(|c| c.label.as_str())
            .collect();
        assert_eq!(labels, ["dinner-0", "dinner-1", "dinner-2"]);
        // Interleaving three cases cannot take fewer ticks than the
        // longest single case.
        assert!(outcome.engine.ticks >= 4, "ticks: {}", outcome.engine.ticks);
    }

    #[test]
    fn traced_fleets_tag_every_case_event_with_its_scope() {
        let outcome = MultiCaseScenario::new(&FaultPlan::default(), &dinner_workload(), 2)
            .traced()
            .run();
        let log = outcome.trace.expect("traced run keeps its log");
        let records = log.records();
        assert!(records
            .iter()
            .any(|r| r.source.starts_with("case:dinner-0/")));
        assert!(records
            .iter()
            .any(|r| r.source.starts_with("case:dinner-1/")));
        // Engine events are unscoped.
        assert!(records
            .iter()
            .any(|r| r.source == "engine" && r.event.label() == "engine.tick"));
    }
}
