//! Seeded fault plans and the schedules they unfold into.
//!
//! A [`FaultPlan`] is the *entire* description of what goes wrong in a
//! simulated run: message-level faults (drop/duplicate/delay), Bernoulli
//! end-user activity failures (driving
//! [`gridflow_grid::failure::FailureModel`]), scripted node loss, and a
//! scripted coordinator crash.  Together with a workload it determines a
//! run completely — replaying the same `(seed, FaultPlan, workload)`
//! triple reproduces the same [`EnactmentReport`] byte for byte.
//!
//! [`EnactmentReport`]: gridflow_services::coordination::EnactmentReport

use serde::{Deserialize, Serialize};

/// What the fault-injecting transport decided for one intercepted
/// message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Delivered unchanged.
    Deliver,
    /// Swallowed: the receiver never sees it.
    Drop,
    /// Delivered twice.
    Duplicate,
    /// Held back, released at the given tick.
    Delay {
        /// Tick at which the held message re-enters the stream.
        until_tick: u64,
    },
    /// Swapped with the next intercepted message: the classic adjacent
    /// reorder (the message arrives, but one slot late).
    Reorder,
    /// Dropped because an active node-pair partition separates sender
    /// and receiver.  Recorded without consuming a chaos draw, so
    /// enabling a partition never shifts the drop/duplicate/delay
    /// decision stream of the rest of the traffic.
    Partitioned,
}

/// One entry of a fault schedule: the decision taken at a tick for a
/// message between two agents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Tick at which the message was intercepted.
    pub tick: u64,
    /// Sending agent.
    pub sender: String,
    /// Receiving agent.
    pub receiver: String,
    /// The decision.
    pub action: FaultAction,
}

/// The unfolded decision log of a run — the evidence that two seeds
/// produced different (or identical) fault behaviour.
pub type FaultSchedule = Vec<FaultEvent>;

/// A scripted node loss: take `container` down once the world has
/// recorded `after_executions` execution attempts (0 = before the run
/// starts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeLoss {
    /// Container to take down.
    pub container: String,
    /// History length at which the loss strikes.
    pub after_executions: usize,
}

/// A scripted slowdown: multiply `container`'s execution durations by
/// `factor` for the whole run.  Executions still *succeed* — they just
/// take `factor`× as long, the degradation mode that activity leases
/// (not failure counters) exist to catch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Slowdown {
    /// Container whose executions stretch.
    pub container: String,
    /// Duration multiplier (≥ 0; cost is unaffected).
    pub factor: f64,
}

/// A scheduled node-pair partition: traffic between `a` and `b`
/// (either direction) is cut from `from_tick` until `heal_tick`, when
/// the link heals.  The same spec drives both planes: the
/// fault-injecting transport drops crossing messages in the window, and
/// the engine-plane hook takes the named container down and restores it
/// at the heal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// One side of the cut link.
    pub a: String,
    /// The other side.
    pub b: String,
    /// First tick at which the partition is active.
    pub from_tick: u64,
    /// Tick at which the link heals (exclusive end of the window).
    pub heal_tick: u64,
}

impl PartitionSpec {
    /// Is the partition active at `tick`?
    pub fn active_at(&self, tick: u64) -> bool {
        tick >= self.from_tick && tick < self.heal_tick
    }

    /// Does a message between `sender` and `receiver` cross this cut?
    pub fn severs(&self, sender: &str, receiver: &str) -> bool {
        (self.a == sender && self.b == receiver) || (self.a == receiver && self.b == sender)
    }
}

/// The complete, seeded description of everything that goes wrong in a
/// run.  `Default` is the null plan: nothing fails.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed: drives both the message-fault RNG and the activity
    /// failure model.
    pub seed: u64,
    /// Per-message probability of a drop.
    pub drop_prob: f64,
    /// Per-message probability of a duplicate.
    pub duplicate_prob: f64,
    /// Per-message probability of a delay.
    pub delay_prob: f64,
    /// How many ticks a delayed message is held (also the reorder
    /// window: messages sent in between overtake it).
    pub delay_ticks: u64,
    /// Per-message probability of an adjacent reorder (swap with the
    /// next intercepted message).
    pub reorder_prob: f64,
    /// Scheduled node-pair partitions with their heal ticks.
    pub partitions: Vec<PartitionSpec>,
    /// Bernoulli per-execution probability that an end-user activity
    /// fails on its container.
    pub activity_failure_prob: f64,
    /// Does an activity failure take the container down persistently?
    pub persistent_activity_failures: bool,
    /// Scripted node losses.
    pub node_loss: Vec<NodeLoss>,
    /// Scripted per-container slowdowns (installed into the world before
    /// the run).
    pub slow_containers: Vec<Slowdown>,
    /// Crash the coordinator after this many checkpoints have been
    /// captured, forcing a [resume] from the last one.  `None` = never.
    ///
    /// [resume]: gridflow_services::coordination::Enactor::resume
    pub crash_after_checkpoints: Option<usize>,
    /// Agents whose traffic is exempt from message faults (sender or
    /// receiver match), e.g. the information service during boot.
    pub immune_agents: Vec<String>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            delay_ticks: 3,
            reorder_prob: 0.0,
            partitions: Vec::new(),
            activity_failure_prob: 0.0,
            persistent_activity_failures: true,
            node_loss: Vec::new(),
            slow_containers: Vec::new(),
            crash_after_checkpoints: None,
            immune_agents: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// The null plan under a given seed: nothing fails, but every
    /// stochastic component is seeded so faults can be switched on
    /// without changing anything else.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Builder: drop messages with probability `p`.
    pub fn dropping(mut self, p: f64) -> Self {
        self.drop_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: duplicate messages with probability `p`.
    pub fn duplicating(mut self, p: f64) -> Self {
        self.duplicate_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: delay messages with probability `p` for `ticks` ticks.
    pub fn delaying(mut self, p: f64, ticks: u64) -> Self {
        self.delay_prob = p.clamp(0.0, 1.0);
        self.delay_ticks = ticks;
        self
    }

    /// Builder: swap messages with their successor with probability `p`.
    pub fn reordering(mut self, p: f64) -> Self {
        self.reorder_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: cut the link between `a` and `b` from `from_tick`
    /// until it heals at `heal_tick`.
    pub fn partitioning(
        mut self,
        a: impl Into<String>,
        b: impl Into<String>,
        from_tick: u64,
        heal_tick: u64,
    ) -> Self {
        self.partitions.push(PartitionSpec {
            a: a.into(),
            b: b.into(),
            from_tick,
            heal_tick: heal_tick.max(from_tick),
        });
        self
    }

    /// Builder: end-user activity executions fail with probability `p`.
    pub fn failing_activities(mut self, p: f64) -> Self {
        self.activity_failure_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: activity failures are transient (the container stays up).
    pub fn transient_failures(mut self) -> Self {
        self.persistent_activity_failures = false;
        self
    }

    /// Builder: script a node loss.
    pub fn losing_node(mut self, container: impl Into<String>, after_executions: usize) -> Self {
        self.node_loss.push(NodeLoss {
            container: container.into(),
            after_executions,
        });
        self
    }

    /// Builder: stretch a container's execution durations by `factor`.
    pub fn slowing_container(mut self, container: impl Into<String>, factor: f64) -> Self {
        self.slow_containers.push(Slowdown {
            container: container.into(),
            factor,
        });
        self
    }

    /// Builder: crash the coordinator after `n` checkpoints.
    pub fn crashing_after(mut self, n: usize) -> Self {
        self.crash_after_checkpoints = Some(n);
        self
    }

    /// Builder: exempt an agent's traffic from message faults.
    pub fn immunizing(mut self, agent: impl Into<String>) -> Self {
        self.immune_agents.push(agent.into());
        self
    }

    /// Does the plan inject any *probabilistic* message-level faults
    /// (and hence consume one chaos draw per message)?  Scheduled
    /// partitions are deliberately excluded: they drop crossing
    /// messages without a draw, so the rest of the decision stream is
    /// unchanged by adding one.
    pub fn perturbs_messages(&self) -> bool {
        self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.delay_prob > 0.0
            || self.reorder_prob > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_null() {
        let p = FaultPlan::default();
        assert!(!p.perturbs_messages());
        assert_eq!(p.activity_failure_prob, 0.0);
        assert!(p.node_loss.is_empty());
        assert!(p.crash_after_checkpoints.is_none());
    }

    #[test]
    fn builders_clamp_probabilities() {
        let p = FaultPlan::seeded(7)
            .dropping(1.5)
            .duplicating(-0.2)
            .delaying(0.3, 5)
            .failing_activities(2.0);
        assert_eq!(p.drop_prob, 1.0);
        assert_eq!(p.duplicate_prob, 0.0);
        assert_eq!(p.delay_prob, 0.3);
        assert_eq!(p.delay_ticks, 5);
        assert_eq!(p.activity_failure_prob, 1.0);
        assert!(p.perturbs_messages());
    }

    #[test]
    fn partition_spec_window_and_pair_matching() {
        let p = FaultPlan::seeded(1).partitioning("node-a", "node-b", 5, 9);
        assert!(
            !p.perturbs_messages(),
            "partitions are scheduled, not drawn"
        );
        let spec = &p.partitions[0];
        assert!(!spec.active_at(4));
        assert!(spec.active_at(5));
        assert!(spec.active_at(8));
        assert!(!spec.active_at(9), "heal tick is exclusive");
        assert!(spec.severs("node-a", "node-b"));
        assert!(spec.severs("node-b", "node-a"));
        assert!(!spec.severs("node-a", "node-c"));
    }

    #[test]
    fn reordering_counts_as_message_perturbation() {
        assert!(FaultPlan::seeded(1).reordering(0.2).perturbs_messages());
        let clamped = FaultPlan::seeded(1).reordering(7.0);
        assert_eq!(clamped.reorder_prob, 1.0);
    }

    #[test]
    fn plans_round_trip_through_json() {
        let p = FaultPlan::seeded(42)
            .dropping(0.1)
            .reordering(0.05)
            .partitioning("ac-h1", "ac-h2", 4, 12)
            .losing_node("ac-h2", 3)
            .slowing_container("ac-h1", 50.0)
            .crashing_after(1)
            .immunizing("information-1");
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn schedules_round_trip_through_json() {
        let schedule: FaultSchedule = vec![
            FaultEvent {
                tick: 0,
                sender: "a".into(),
                receiver: "b".into(),
                action: FaultAction::Deliver,
            },
            FaultEvent {
                tick: 1,
                sender: "b".into(),
                receiver: "a".into(),
                action: FaultAction::Delay { until_tick: 4 },
            },
        ];
        let json = serde_json::to_string(&schedule).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, schedule);
    }
}
