//! A shared virtual clock for deterministic simulation.
//!
//! Fault decisions must never depend on wall time: two runs of the same
//! `(seed, workload)` pair would otherwise diverge on scheduling noise.
//! The harness measures time in **ticks** — one tick per intercepted
//! message — plus the virtual seconds the [`GridWorld`] clock already
//! accumulates per service execution.  Both advance only in response to
//! simulated events, so replays are exact.
//!
//! [`GridWorld`]: gridflow_services::world::GridWorld

use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Debug, Default)]
struct ClockState {
    ticks: u64,
    seconds: f64,
}

/// A cloneable handle on the simulation's logical time.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    inner: Arc<Mutex<ClockState>>,
}

impl VirtualClock {
    /// A clock at tick 0, second 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock resumed at a stored reading — what crash recovery hands
    /// a reseeded trace log so regenerated events carry the same
    /// virtual timestamps the original run stamped.
    pub fn starting_at(ticks: u64, seconds: f64) -> Self {
        VirtualClock {
            inner: Arc::new(Mutex::new(ClockState { ticks, seconds })),
        }
    }

    /// Advance by one tick and return the tick just consumed (so the
    /// first call returns 0 — ticks number events, not boundaries).
    pub fn tick(&self) -> u64 {
        let mut s = self.inner.lock();
        let t = s.ticks;
        s.ticks += 1;
        t
    }

    /// Ticks consumed so far.
    pub fn ticks(&self) -> u64 {
        self.inner.lock().ticks
    }

    /// Advance the virtual-seconds component (mirrors world clock time
    /// the runner accounts to the simulation).
    pub fn advance_s(&self, dt: f64) {
        self.inner.lock().seconds += dt.max(0.0);
    }

    /// Virtual seconds elapsed.
    pub fn now_s(&self) -> f64 {
        self.inner.lock().seconds
    }

    /// Both components, read atomically.
    pub fn now(&self) -> (u64, f64) {
        let s = self.inner.lock();
        (s.ticks, s.seconds)
    }
}

impl gridflow_telemetry::TraceClock for VirtualClock {
    fn now(&self) -> (u64, f64) {
        VirtualClock::now(self)
    }

    fn advance_s(&self, dt: f64) {
        VirtualClock::advance_s(self, dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_number_events_from_zero() {
        let c = VirtualClock::new();
        assert_eq!(c.tick(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.ticks(), 2);
    }

    #[test]
    fn clones_share_state() {
        let c = VirtualClock::new();
        let d = c.clone();
        c.tick();
        d.advance_s(2.5);
        assert_eq!(d.ticks(), 1);
        assert!((c.now_s() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn negative_advances_are_clamped() {
        let c = VirtualClock::new();
        c.advance_s(-1.0);
        assert_eq!(c.now_s(), 0.0);
    }

    #[test]
    fn resumed_clocks_continue_from_the_stored_reading() {
        let c = VirtualClock::starting_at(5, 12.25);
        assert_eq!(c.now(), (5, 12.25));
        assert_eq!(c.tick(), 5);
        c.advance_s(0.75);
        assert_eq!(c.now(), (6, 13.0));
    }

    #[test]
    fn serves_as_a_trace_clock() {
        use gridflow_telemetry::TraceClock;
        let c = VirtualClock::new();
        c.tick();
        TraceClock::advance_s(&c, 1.5);
        assert_eq!(TraceClock::now(&c), (1, 1.5));
    }
}
