//! The fault-injecting [`Transport`]: drops, duplicates, delays and
//! reorders messages according to a seeded [`FaultPlan`].
//!
//! Decisions are a pure function of `(plan.seed, intercept sequence)`:
//! the transport owns a ChaCha stream and a [`VirtualClock`] tick
//! counter, consumes exactly one draw per non-immune message, and keeps
//! delayed messages in a tick-ordered hold queue.  Two runs that present
//! the same message sequence therefore produce the same
//! [`FaultSchedule`] — and two different seeds produce different ones.

use crate::clock::VirtualClock;
use crate::plan::{FaultAction, FaultEvent, FaultPlan, FaultSchedule};
use gridflow_agents::{AclMessage, Transport};
use gridflow_telemetry::{TraceEvent, TraceSink, TraceSlot};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

struct Inner {
    rng: ChaCha8Rng,
    /// Delayed messages, tagged with their release tick.
    held: Vec<(u64, AclMessage)>,
    /// Reordered messages awaiting their swap partner: released
    /// immediately *after* the next intercepted message.
    swap: Vec<AclMessage>,
    /// Per-partition boundary progress, parallel to `plan.partitions`:
    /// 0 = pending, 1 = `transport.partitioned` emitted, 2 =
    /// `transport.healed` emitted (or window skipped entirely).
    partition_phase: Vec<u8>,
    schedule: FaultSchedule,
}

/// A deterministic fault-injecting message transport.
pub struct FaultyTransport {
    plan: FaultPlan,
    clock: VirtualClock,
    trace: TraceSlot,
    inner: Mutex<Inner>,
}

impl FaultyTransport {
    /// A transport unfolding `plan`'s message faults, ticking `clock`.
    pub fn new(plan: FaultPlan, clock: VirtualClock) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(plan.seed);
        let partition_phase = vec![0u8; plan.partitions.len()];
        FaultyTransport {
            plan,
            clock,
            trace: TraceSlot::new(),
            inner: Mutex::new(Inner {
                rng,
                held: Vec::new(),
                swap: Vec::new(),
                partition_phase,
                schedule: Vec::new(),
            }),
        }
    }

    /// Mirror every fault decision (drop/duplicate/delay/release) into
    /// `sink` as typed events, source `"transport"`.
    pub fn with_trace(self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace.set(sink);
        self
    }

    /// Install a trace sink after construction.
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) {
        self.trace.set(sink);
    }

    /// The shared clock this transport ticks.
    pub fn clock(&self) -> VirtualClock {
        self.clock.clone()
    }

    /// The decision log so far (one entry per intercepted message).
    pub fn schedule(&self) -> FaultSchedule {
        self.inner.lock().schedule.clone()
    }

    /// Number of messages currently held back (delayed, not yet
    /// released).
    pub fn held_count(&self) -> usize {
        self.inner.lock().held.len()
    }

    /// Number of reordered messages still awaiting their swap partner.
    pub fn swap_count(&self) -> usize {
        self.inner.lock().swap.len()
    }

    fn immune(&self, msg: &AclMessage) -> bool {
        self.plan
            .immune_agents
            .iter()
            .any(|a| *a == msg.sender || *a == msg.receiver)
    }

    /// Emit `transport.partitioned` / `transport.healed` for every
    /// scheduled partition whose boundary `tick` has crossed since the
    /// last intercept.  A window the tick stream jumped over entirely
    /// is skipped silently (no message could have crossed it).
    fn note_partition_boundaries(&self, inner: &mut Inner, tick: u64) {
        for (i, p) in self.plan.partitions.iter().enumerate() {
            let phase = &mut inner.partition_phase[i];
            if *phase == 0 && tick >= p.heal_tick {
                *phase = 2;
                continue;
            }
            if *phase == 0 && tick >= p.from_tick {
                *phase = 1;
                self.trace.emit(
                    "transport",
                    TraceEvent::PartitionStarted {
                        a: p.a.clone(),
                        b: p.b.clone(),
                        heal_tick: p.heal_tick,
                    },
                );
            }
            if *phase == 1 && tick >= p.heal_tick {
                *phase = 2;
                self.trace.emit(
                    "transport",
                    TraceEvent::PartitionHealed {
                        a: p.a.clone(),
                        b: p.b.clone(),
                    },
                );
            }
        }
    }

    /// Does an active partition sever this message at `tick`?
    fn partitioned(&self, msg: &AclMessage, tick: u64) -> bool {
        self.plan
            .partitions
            .iter()
            .any(|p| p.active_at(tick) && p.severs(&msg.sender, &msg.receiver))
    }
}

impl Transport for FaultyTransport {
    fn intercept(&self, msg: AclMessage) -> Vec<AclMessage> {
        let mut inner = self.inner.lock();
        let tick = self.clock.tick();
        self.note_partition_boundaries(&mut inner, tick);

        // Release any held messages whose time has come, in insertion
        // order (stable for equal ticks), *before* the current message:
        // they were sent earlier, the delay only let this one overtake
        // them while it lasted.
        let mut out = Vec::new();
        let mut still_held = Vec::new();
        for (release, held) in inner.held.drain(..) {
            if release <= tick {
                self.trace.emit(
                    "transport",
                    TraceEvent::MessageReleased {
                        id: held.id,
                        receiver: held.receiver.clone(),
                    },
                );
                out.push(held);
            } else {
                still_held.push((release, held));
            }
        }
        inner.held = still_held;

        // Reordered messages swap with *this* message: it goes first,
        // they follow right behind it (appended at the end, below).
        let swapped: Vec<AclMessage> = inner.swap.drain(..).collect();

        let action = if self.immune(&msg) {
            FaultAction::Deliver
        } else {
            // One draw per non-immune message (when any probabilistic
            // chaos is on) keeps the decision stream aligned with the
            // intercept sequence regardless of which fault kinds are
            // enabled.
            let drawn = if self.plan.perturbs_messages() {
                let r: f64 = inner.rng.gen_range(0.0..1.0);
                let drop_to = self.plan.drop_prob;
                let dup_to = drop_to + self.plan.duplicate_prob;
                let delay_to = dup_to + self.plan.delay_prob;
                let reorder_to = delay_to + self.plan.reorder_prob;
                if r < drop_to {
                    FaultAction::Drop
                } else if r < dup_to {
                    FaultAction::Duplicate
                } else if r < delay_to {
                    FaultAction::Delay {
                        until_tick: tick + self.plan.delay_ticks.max(1),
                    }
                } else if r < reorder_to {
                    FaultAction::Reorder
                } else {
                    FaultAction::Deliver
                }
            } else {
                FaultAction::Deliver
            };
            // A scheduled cut overrides whatever chance decided, but
            // the draw above was still consumed — so every *surviving*
            // message's fate is exactly what it would be without the
            // partition.
            if self.partitioned(&msg, tick) {
                FaultAction::Partitioned
            } else {
                drawn
            }
        };

        inner.schedule.push(FaultEvent {
            tick,
            sender: msg.sender.clone(),
            receiver: msg.receiver.clone(),
            action: action.clone(),
        });

        if self.trace.is_installed() {
            match &action {
                FaultAction::Deliver => {}
                FaultAction::Drop => self.trace.emit(
                    "transport",
                    TraceEvent::MessageDropped {
                        id: msg.id,
                        sender: msg.sender.clone(),
                        receiver: msg.receiver.clone(),
                    },
                ),
                FaultAction::Duplicate => self.trace.emit(
                    "transport",
                    TraceEvent::MessageDuplicated {
                        id: msg.id,
                        sender: msg.sender.clone(),
                        receiver: msg.receiver.clone(),
                    },
                ),
                FaultAction::Delay { until_tick } => self.trace.emit(
                    "transport",
                    TraceEvent::MessageDelayed {
                        id: msg.id,
                        sender: msg.sender.clone(),
                        receiver: msg.receiver.clone(),
                        until_tick: *until_tick,
                    },
                ),
                FaultAction::Reorder => self.trace.emit(
                    "transport",
                    TraceEvent::MessageReordered {
                        id: msg.id,
                        sender: msg.sender.clone(),
                        receiver: msg.receiver.clone(),
                    },
                ),
                // The partition boundary events tell the story; a
                // per-message drop event would trip the drops-resolved
                // discipline for what is really scheduled downtime.
                FaultAction::Partitioned => {}
            }
        }

        match action {
            FaultAction::Deliver => out.push(msg),
            FaultAction::Drop | FaultAction::Partitioned => {}
            FaultAction::Duplicate => {
                out.push(msg.clone());
                out.push(msg);
            }
            FaultAction::Delay { until_tick } => inner.held.push((until_tick, msg)),
            FaultAction::Reorder => inner.swap.push(msg),
        }
        // Swap partners arrive right after the message that overtook
        // them.
        out.extend(swapped);
        out
    }

    fn drain(&self) -> Vec<AclMessage> {
        let mut inner = self.inner.lock();
        let mut left: Vec<AclMessage> = inner.held.drain(..).map(|(_, m)| m).collect();
        left.append(&mut inner.swap);
        left
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridflow_agents::Performative;
    use serde_json::json;

    fn msg(n: i64) -> AclMessage {
        AclMessage::new(Performative::Inform, "alice", "bob", "t", json!(n))
    }

    fn run_sequence(plan: FaultPlan, n: i64) -> (FaultSchedule, Vec<serde_json::Value>) {
        let t = FaultyTransport::new(plan, VirtualClock::new());
        let mut delivered = Vec::new();
        for i in 0..n {
            for m in t.intercept(msg(i)) {
                delivered.push(m.content);
            }
        }
        for m in t.drain() {
            delivered.push(m.content);
        }
        (t.schedule(), delivered)
    }

    #[test]
    fn null_plan_is_identity() {
        let (schedule, delivered) = run_sequence(FaultPlan::seeded(1), 10);
        assert_eq!(delivered.len(), 10);
        assert!(schedule.iter().all(|e| e.action == FaultAction::Deliver));
        assert_eq!(schedule[3].tick, 3);
        assert_eq!(schedule[3].sender, "alice");
    }

    #[test]
    fn same_seed_same_schedule_and_deliveries() {
        let plan = FaultPlan::seeded(9)
            .dropping(0.3)
            .duplicating(0.2)
            .delaying(0.2, 2);
        let (s1, d1) = run_sequence(plan.clone(), 200);
        let (s2, d2) = run_sequence(plan, 200);
        assert_eq!(s1, s2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn different_seeds_differ() {
        let (s1, _) = run_sequence(FaultPlan::seeded(1).dropping(0.5), 100);
        let (s2, _) = run_sequence(FaultPlan::seeded(2).dropping(0.5), 100);
        assert_ne!(s1, s2);
    }

    #[test]
    fn drops_shrink_and_duplicates_grow_delivery() {
        let (_, none) = run_sequence(FaultPlan::seeded(3).dropping(1.0), 50);
        assert!(none.is_empty());
        let (_, twice) = run_sequence(FaultPlan::seeded(3).duplicating(1.0), 50);
        assert_eq!(twice.len(), 100);
    }

    #[test]
    fn delays_reorder_but_conserve_messages() {
        // Half the messages delayed 3 ticks: undelayed successors
        // overtake them, so arrival order differs from send order —
        // but nothing is lost or invented.  (Delaying *every* message
        // equally preserves FIFO; reordering needs the mix.)
        let (schedule, delivered) = run_sequence(FaultPlan::seeded(4).delaying(0.5, 3), 40);
        assert_eq!(delivered.len(), 40);
        let sent: Vec<serde_json::Value> = (0..40).map(|i| json!(i)).collect();
        assert_ne!(delivered, sent, "delays must reorder");
        let mut sorted = delivered.clone();
        sorted.sort_by_key(|v| v.as_i64().unwrap());
        assert_eq!(sorted, sent, "delays must not lose or invent messages");
        assert!(schedule
            .iter()
            .any(|e| matches!(e.action, FaultAction::Delay { .. })));
        assert!(schedule.iter().any(|e| e.action == FaultAction::Deliver));
    }

    #[test]
    fn immune_agents_pass_untouched() {
        let plan = FaultPlan::seeded(5).dropping(1.0).immunizing("bob");
        let (schedule, delivered) = run_sequence(plan, 10);
        assert_eq!(delivered.len(), 10);
        assert!(schedule.iter().all(|e| e.action == FaultAction::Deliver));
    }

    #[test]
    fn trace_mirrors_fault_decisions() {
        use gridflow_telemetry::{TraceEvent, TraceLog};
        let log = TraceLog::new();
        let plan = FaultPlan::seeded(9)
            .dropping(0.3)
            .duplicating(0.2)
            .delaying(0.2, 2);
        let t = FaultyTransport::new(plan, VirtualClock::new()).with_trace(Arc::new(log.clone()));
        for i in 0..200 {
            let _ = t.intercept(msg(i));
        }
        let schedule = t.schedule();
        let count =
            |f: &dyn Fn(&FaultAction) -> bool| schedule.iter().filter(|e| f(&e.action)).count();
        let traced = |l: &str| {
            log.records()
                .iter()
                .filter(|r| r.event.label() == l)
                .count()
        };
        assert_eq!(
            traced("message.dropped"),
            count(&|a| *a == FaultAction::Drop)
        );
        assert_eq!(
            traced("message.duplicated"),
            count(&|a| *a == FaultAction::Duplicate)
        );
        assert_eq!(
            traced("message.delayed"),
            count(&|a| matches!(a, FaultAction::Delay { .. }))
        );
        assert!(traced("message.dropped") > 0, "plan should drop something");
        // Released messages carry the id of a previously delayed one.
        let delayed_ids: Vec<u64> = log
            .records()
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::MessageDelayed { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        for r in log.records() {
            if let TraceEvent::MessageReleased { id, .. } = &r.event {
                assert!(delayed_ids.contains(id));
            }
        }
    }

    #[test]
    fn reorders_swap_but_conserve_messages() {
        let (schedule, delivered) = run_sequence(FaultPlan::seeded(21).reordering(0.4), 40);
        assert_eq!(delivered.len(), 40);
        let sent: Vec<serde_json::Value> = (0..40).map(|i| json!(i)).collect();
        assert_ne!(delivered, sent, "reorders must change arrival order");
        let mut sorted = delivered.clone();
        sorted.sort_by_key(|v| v.as_i64().unwrap());
        assert_eq!(sorted, sent, "reorders must not lose or invent messages");
        assert!(schedule.iter().any(|e| e.action == FaultAction::Reorder));
    }

    #[test]
    fn reorder_swaps_with_the_next_message() {
        // Force a reorder on the first message, let the second pass
        // untouched (immune sender): the swap comes out of the second
        // intercept, successor first.
        let plan = FaultPlan::seeded(0).reordering(1.0).immunizing("carol");
        let t = FaultyTransport::new(plan, VirtualClock::new());
        let m0 = AclMessage::new(Performative::Inform, "alice", "bob", "t", json!(0));
        let m1 = AclMessage::new(Performative::Inform, "carol", "bob", "t", json!(1));
        assert!(t.intercept(m0).is_empty(), "reordered message is held");
        assert_eq!(t.swap_count(), 1);
        let out: Vec<_> = t.intercept(m1).into_iter().map(|m| m.content).collect();
        assert_eq!(
            out,
            vec![json!(1), json!(0)],
            "adjacent swap: successor first"
        );
        assert_eq!(t.swap_count(), 0);
    }

    #[test]
    fn partition_window_cuts_crossing_traffic_and_emits_boundaries() {
        use gridflow_telemetry::TraceLog;
        let log = TraceLog::new();
        let plan = FaultPlan::seeded(0).partitioning("alice", "bob", 2, 5);
        let t = FaultyTransport::new(plan, VirtualClock::new()).with_trace(Arc::new(log.clone()));
        let mut delivered = Vec::new();
        for i in 0..8 {
            for m in t.intercept(msg(i)) {
                delivered.push(m.content);
            }
        }
        let expected: Vec<serde_json::Value> = [0, 1, 5, 6, 7].iter().map(|i| json!(*i)).collect();
        assert_eq!(delivered, expected, "ticks 2..5 are cut");
        for e in t.schedule() {
            if (2..5).contains(&e.tick) {
                assert_eq!(e.action, FaultAction::Partitioned);
            } else {
                assert_eq!(e.action, FaultAction::Deliver);
            }
        }
        let labels: Vec<&str> = log
            .records()
            .iter()
            .map(|r| r.event.label())
            .filter(|l| l.starts_with("transport."))
            .collect();
        assert_eq!(labels, vec!["transport.partitioned", "transport.healed"]);
    }

    #[test]
    fn partitions_do_not_shift_the_chaos_stream() {
        // Same seed, same chaos — the partitioned run must make the
        // same drop/duplicate/delay calls for every message outside the
        // window, because crossing messages still consume their draw.
        let base = FaultPlan::seeded(13).dropping(0.2).duplicating(0.2);
        let (s1, _) = run_sequence(base.clone(), 60);
        let (s2, _) = run_sequence(base.partitioning("alice", "bob", 10, 25), 60);
        assert_eq!(s1.len(), s2.len());
        for (e1, e2) in s1.iter().zip(&s2) {
            if (10..25).contains(&e2.tick) {
                assert_eq!(e2.action, FaultAction::Partitioned);
            } else {
                assert_eq!(e1, e2, "outside the window the decisions are identical");
            }
        }
    }

    #[test]
    fn partition_spares_other_pairs() {
        let plan = FaultPlan::seeded(0).partitioning("alice", "carol", 0, 100);
        let (schedule, delivered) = run_sequence(plan, 10);
        assert_eq!(delivered.len(), 10, "alice→bob traffic is unaffected");
        assert!(schedule.iter().all(|e| e.action == FaultAction::Deliver));
    }

    #[test]
    fn held_count_tracks_the_hold_queue() {
        let t = FaultyTransport::new(FaultPlan::seeded(6).delaying(1.0, 50), VirtualClock::new());
        let _ = t.intercept(msg(0));
        let _ = t.intercept(msg(1));
        assert_eq!(t.held_count(), 2);
        assert_eq!(t.drain().len(), 2);
        assert_eq!(t.held_count(), 0);
    }
}
