//! Transport selection for scenario runs: the in-proc default and a
//! real loopback-TCP mirror plane.
//!
//! The deterministic engine plane must never depend on the wire, so
//! transport selection is an **observer**: with
//! [`TransportSpec::InProc`] (the default) nothing changes at all, and
//! with [`TransportSpec::Tcp`] the run's trace stream is teed — primary
//! log first, so its bytes are identical to an un-teed run — into a
//! [`RemoteMirror`] that ships every record as a framed
//! [`AclMessage`] over real TCP to a [`NodeServer`] on `127.0.0.1`.
//!
//! The mirror exercises the whole plane-A substrate:
//!
//! * **on-demand wake** — the node starts *cold*; the first mirrored
//!   event wakes it through a [`WakeCoordinator`], and concurrent
//!   emissions coalesce onto that single wake;
//! * **idle sleep** — [`RemoteMirror::sleep_now`] (and
//!   [`RemoteMirror::finish`]) reap the idle service, shutting the
//!   server down; the next emission re-wakes it on a fresh endpoint;
//! * **health probing into breakers** — [`RemoteMirror::probe`] pings
//!   the node, maps each result onto a one-container probe world and
//!   feeds it through [`MonitoringService::feed_recovery`], so a dead
//!   node opens a circuit breaker and a healed one walks it through
//!   half-open back to closed.
//!
//! Wake, sleep, probe and breaker events land in the mirror's **own**
//! [`TraceLog`] ([`RemoteMirror::mirror_log`]), never the run's primary
//! log — wall-clock-dependent breaker timings must not perturb the
//! byte-identical replay invariant.

use crossbeam_channel::{unbounded, Receiver};
use gridflow_agents::directory::Control;
use gridflow_agents::{
    AclMessage, AgentInfo, DeliveryBackend, Directory, NodeServer, Performative, RemoteRoute,
    RetryCfg, RouteTable, TcpBackend,
};
use gridflow_grid::container::ApplicationContainer;
use gridflow_grid::resource::{Resource, ResourceKind};
use gridflow_grid::GridTopology;
use gridflow_recovery::{BreakerConfig, RecoveryManager, RecoveryPolicy};
use gridflow_services::monitoring::MonitoringService;
use gridflow_services::world::GridWorld;
use gridflow_services::{WakeCoordinator, WakeOutcome};
use gridflow_telemetry::{TeeSink, TraceEvent, TraceHandle, TraceLog, TraceSink};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The logical service name the mirror wakes and routes to.
pub const MIRROR_SERVICE: &str = "mirror";

/// The probe world's container id (what the breaker quarantines).
pub const MIRROR_CONTAINER: &str = "remote-mirror";

/// Which delivery substrate a scenario run uses.
///
/// The default is [`TransportSpec::InProc`]: no remote plane at all,
/// byte-identical to every run before transport selection existed.
#[derive(Debug, Clone, Default)]
pub enum TransportSpec {
    /// Everything stays in-process (the legacy behavior).
    #[default]
    InProc,
    /// Mirror the run's trace over loopback TCP through a
    /// [`RemoteMirror`] built from this config.
    Tcp(TcpMirrorConfig),
}

impl TransportSpec {
    /// The TCP mirror with its default configuration.
    pub fn tcp() -> Self {
        TransportSpec::Tcp(TcpMirrorConfig::default())
    }
}

/// Configuration of the loopback TCP mirror plane.
#[derive(Debug, Clone)]
pub struct TcpMirrorConfig {
    /// Per-RPC deadline for mirror deliveries and pings.
    pub deadline: Duration,
    /// Seeded exponential-backoff retry schedule for the channel.
    pub retry: RetryCfg,
    /// How long to wait for an in-flight wake before giving up.
    pub wake_wait: Duration,
    /// Idle ticks (mirror sequence numbers) before
    /// [`RemoteMirror::finish`] reaps the service (`0` = always reap).
    pub idle_timeout: u64,
    /// Health probes [`RemoteMirror::finish`] runs before reaping.
    pub probes: u64,
    /// Breaker the probe loop feeds (threshold / cooldown in probe
    /// ticks).
    pub breaker: BreakerConfig,
}

impl Default for TcpMirrorConfig {
    fn default() -> Self {
        TcpMirrorConfig {
            deadline: Duration::from_secs(2),
            retry: RetryCfg::default(),
            wake_wait: Duration::from_secs(5),
            idle_timeout: 0,
            probes: 4,
            breaker: BreakerConfig {
                failure_threshold: 2,
                open_ticks: 3,
            },
        }
    }
}

/// What the mirror plane did during a run.  Purely observational:
/// scenario outcome equality ignores it, exactly as it ignores the
/// trace.
#[derive(Debug, Clone)]
pub struct RemoteReport {
    /// The node's last TCP endpoint (`None` if it was never woken).
    pub endpoint: Option<String>,
    /// Events delivered and acked over the wire.
    pub mirrored: u64,
    /// Events the mirror gave up on (wake failure or exhausted retry).
    pub failed: u64,
    /// Actual wakes performed (coalescing keeps this at 1 per cold
    /// period no matter how many emissions raced).
    pub wakes: u64,
    /// Emissions that coalesced onto another caller's in-flight wake.
    pub coalesced: u64,
    /// Health probes that reached the node.
    pub probes_ok: u64,
    /// Health probes that found it unreachable.
    pub probes_failed: u64,
    /// Was the service reaped to sleep at the end of the run?
    pub slept: bool,
    /// The mirror plane's own event log (`wake.*`, `breaker.*`,
    /// `transport.*` from scripted outages) — separate from the run's
    /// primary log so breaker timing can never perturb replay bytes.
    pub mirror_log: TraceLog,
}

struct MirrorShared {
    cfg: TcpMirrorConfig,
    wake: WakeCoordinator,
    backend: TcpBackend,
    routes: RouteTable,
    host: Directory,
    server: Mutex<Option<NodeServer>>,
    /// The mirror agent's mailbox (kept so deliveries don't error).
    _inbox: Receiver<Control>,
    seq: AtomicU64,
    mirrored: AtomicU64,
    failed: AtomicU64,
    coalesced: AtomicU64,
    probes_ok: AtomicU64,
    probes_failed: AtomicU64,
    probe_world: Mutex<GridWorld>,
    recovery: Mutex<RecoveryManager>,
    log: TraceLog,
}

impl MirrorShared {
    /// Start (or restart) the node server — the wake closure.
    fn wake_service(&self) -> Result<(), String> {
        let mut slot = self.server.lock();
        if slot.is_some() {
            return Ok(());
        }
        let server =
            NodeServer::serve("127.0.0.1:0", self.host.clone()).map_err(|e| e.to_string())?;
        self.routes.set(
            MIRROR_SERVICE,
            RemoteRoute::new(MIRROR_CONTAINER, server.local_addr().to_string()),
        );
        *slot = Some(server);
        Ok(())
    }

    /// Shut the node down and unroute it — the sleep closure.
    fn sleep_service(&self) {
        if let Some(mut server) = self.server.lock().take() {
            server.shutdown();
        }
        self.routes.remove(MIRROR_SERVICE);
    }

    /// Mirror one trace record: wake the node if cold (coalescing with
    /// concurrent emissions), then deliver it as a framed ACL message.
    /// Infallible from the caller's side — the primary plane can never
    /// be perturbed by the wire.
    fn mirror(&self, source: &str, event: TraceEvent) {
        let tick = self.seq.fetch_add(1, Ordering::SeqCst);
        let outcome = self
            .wake
            .ensure_running(MIRROR_SERVICE, tick, self.cfg.wake_wait, || {
                self.wake_service()
            });
        match outcome {
            WakeOutcome::Failed(_) => {
                self.failed.fetch_add(1, Ordering::SeqCst);
                return;
            }
            WakeOutcome::Coalesced => {
                self.coalesced.fetch_add(1, Ordering::SeqCst);
            }
            WakeOutcome::AlreadyRunning | WakeOutcome::Woke => {}
        }
        let Some(route) = self.routes.resolve(MIRROR_SERVICE) else {
            self.failed.fetch_add(1, Ordering::SeqCst);
            return;
        };
        let body = serde_json::json!({ "source": source, "label": event.label() });
        let msg = AclMessage::new(
            Performative::Inform,
            "harness",
            MIRROR_SERVICE,
            event.label(),
            body,
        );
        match self.backend.deliver_remote(&route, msg) {
            Ok(()) => {
                self.mirrored.fetch_add(1, Ordering::SeqCst);
            }
            Err(_) => {
                self.failed.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// One health probe: ping the node (if routed), map the result onto
    /// the probe world's container, advance breaker time by one tick and
    /// feed the world through the monitoring service.
    fn probe_once(&self) -> bool {
        let up = match self.routes.resolve(MIRROR_SERVICE) {
            Some(route) => self.backend.channel(&route.endpoint).ping().is_ok(),
            None => false,
        };
        if up {
            self.probes_ok.fetch_add(1, Ordering::SeqCst);
        } else {
            self.probes_failed.fetch_add(1, Ordering::SeqCst);
        }
        let mut world = self.probe_world.lock();
        let _ = world.set_container_up(MIRROR_CONTAINER, up);
        let mut recovery = self.recovery.lock();
        recovery.tick(1);
        MonitoringService.feed_recovery(&world, &mut recovery);
        up
    }
}

/// The emission side handed to [`TeeSink`]: forwards every record to
/// the shared mirror state.
struct MirrorSink(Arc<MirrorShared>);

impl TraceSink for MirrorSink {
    fn emit(&self, source: &str, event: TraceEvent) {
        self.0.mirror(source, event);
    }
}

/// The probe world: one container on one resource hosting the mirror
/// service — just enough topology for [`MonitoringService`] probes to
/// have something to report on.
fn probe_world() -> GridWorld {
    GridWorld::new(GridTopology {
        resources: vec![Resource::new("remote", ResourceKind::PcCluster)
            .with_nodes(1)
            .with_software([MIRROR_SERVICE.to_string()])],
        containers: vec![ApplicationContainer::new(MIRROR_CONTAINER, "remote")
            .hosting([MIRROR_SERVICE.to_string()])],
    })
}

/// The loopback TCP mirror plane: a cold [`NodeServer`] woken on
/// demand, a pooled [`TcpBackend`] shipping trace records to it, and a
/// health-probe loop feeding circuit breakers.  Clone-free by design:
/// the scenario runner owns it and consumes it with
/// [`RemoteMirror::finish`].
pub struct RemoteMirror {
    shared: Arc<MirrorShared>,
}

impl std::fmt::Debug for RemoteMirror {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteMirror")
            .field("endpoint", &self.endpoint())
            .field("mirrored", &self.shared.mirrored.load(Ordering::SeqCst))
            .finish()
    }
}

impl RemoteMirror {
    /// A mirror with a cold node: nothing listens until the first
    /// emission (or [`RemoteMirror::ensure_awake`]) wakes it.
    pub fn new(cfg: TcpMirrorConfig) -> Self {
        let host = Directory::new();
        let (tx, rx) = unbounded();
        host.register(AgentInfo {
            name: MIRROR_SERVICE.into(),
            service_type: "monitor".into(),
            mailbox: tx,
        })
        .expect("fresh directory accepts the mirror agent");
        let log = TraceLog::new();
        let wake = WakeCoordinator::new();
        wake.set_trace_sink(Arc::new(log.clone()));
        let recovery = RecoveryManager::with_trace_handle(
            RecoveryPolicy {
                breaker: Some(cfg.breaker.clone()),
                ..RecoveryPolicy::standard()
            },
            TraceHandle::from(log.clone()),
        );
        let backend = TcpBackend::new(cfg.deadline, cfg.retry.clone());
        RemoteMirror {
            shared: Arc::new(MirrorShared {
                cfg,
                wake,
                backend,
                routes: RouteTable::new(),
                host,
                server: Mutex::new(None),
                _inbox: rx,
                seq: AtomicU64::new(0),
                mirrored: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                probes_ok: AtomicU64::new(0),
                probes_failed: AtomicU64::new(0),
                probe_world: Mutex::new(probe_world()),
                recovery: Mutex::new(recovery),
                log,
            }),
        }
    }

    /// The mirror as a trace sink (share of the same state).
    pub fn sink(&self) -> Arc<dyn TraceSink> {
        Arc::new(MirrorSink(Arc::clone(&self.shared)))
    }

    /// Tee an existing handle through the mirror: the primary sink (if
    /// any) stays **first**, so its record stream is byte-identical to
    /// an un-teed run; the mirror observes a copy.
    pub fn tee(&self, primary: TraceHandle) -> TraceHandle {
        match primary.sink() {
            Some(sink) => TraceHandle::new(
                Arc::new(TeeSink::new(vec![sink, self.sink()])) as Arc<dyn TraceSink>
            ),
            None => TraceHandle::new(self.sink()),
        }
    }

    /// Wake the node now (idempotent; coalesces with racing emissions).
    pub fn ensure_awake(&self) -> WakeOutcome {
        let tick = self.shared.seq.load(Ordering::SeqCst);
        self.shared
            .wake
            .ensure_running(MIRROR_SERVICE, tick, self.shared.cfg.wake_wait, || {
                self.shared.wake_service()
            })
    }

    /// Reap the service unconditionally: shuts the node server down and
    /// unroutes it.  Returns whether it was running.  The next emission
    /// re-wakes it on a fresh endpoint — which is also how a scripted
    /// network partition of the mirror node is staged in tests.
    pub fn sleep_now(&self) -> bool {
        let tick = self.shared.seq.load(Ordering::SeqCst);
        !self
            .shared
            .wake
            .reap_idle(tick, 0, |_| self.shared.sleep_service())
            .is_empty()
    }

    /// The node's current TCP endpoint, if it is awake.
    pub fn endpoint(&self) -> Option<String> {
        self.shared
            .routes
            .resolve(MIRROR_SERVICE)
            .map(|r| r.endpoint)
    }

    /// Actual wakes performed so far.
    pub fn wake_count(&self) -> u64 {
        self.shared.wake.wake_count(MIRROR_SERVICE)
    }

    /// Events delivered and acked so far.
    pub fn mirrored(&self) -> u64 {
        self.shared.mirrored.load(Ordering::SeqCst)
    }

    /// Run `n` health probes: each pings the node, feeds the breaker
    /// (via the probe world and [`MonitoringService::feed_recovery`])
    /// and advances breaker time one tick.  Returns `(ok, failed)` for
    /// this batch.
    pub fn probe(&self, n: u64) -> (u64, u64) {
        let mut ok = 0;
        let mut failed = 0;
        for _ in 0..n {
            if self.shared.probe_once() {
                ok += 1;
            } else {
                failed += 1;
            }
        }
        (ok, failed)
    }

    /// Is the probe breaker currently admitting the mirror container?
    pub fn node_admitted(&self) -> bool {
        self.shared.recovery.lock().is_admitted(MIRROR_CONTAINER)
    }

    /// Emit a mirror-plane event (e.g. a scripted
    /// [`TraceEvent::PartitionStarted`]) into the mirror's own log, so
    /// partition/breaker happens-before can be asserted on one stream.
    pub fn note(&self, event: TraceEvent) {
        self.shared.log.emit("mirror", event);
    }

    /// The mirror plane's own event log (wake/sleep/breaker events).
    pub fn mirror_log(&self) -> TraceLog {
        self.shared.log.clone()
    }

    /// Finish the run: run the configured health probes, reap the
    /// service if idle past the configured timeout, shut everything
    /// down, and summarize.
    pub fn finish(self) -> RemoteReport {
        if self.shared.cfg.probes > 0 && self.endpoint().is_some() {
            self.probe(self.shared.cfg.probes);
        }
        let tick = self.shared.seq.load(Ordering::SeqCst);
        let slept = !self
            .shared
            .wake
            .reap_idle(tick, self.shared.cfg.idle_timeout, |_| {})
            .is_empty();
        let endpoint = self.endpoint();
        // The route survives the reap so the report can name the
        // endpoint; the server itself shuts down here.
        self.shared.sleep_service();
        RemoteReport {
            endpoint,
            mirrored: self.shared.mirrored.load(Ordering::SeqCst),
            failed: self.shared.failed.load(Ordering::SeqCst),
            wakes: self.shared.wake.wake_count(MIRROR_SERVICE),
            coalesced: self.shared.coalesced.load(Ordering::SeqCst),
            probes_ok: self.shared.probes_ok.load(Ordering::SeqCst),
            probes_failed: self.shared.probes_failed.load(Ordering::SeqCst),
            slept,
            mirror_log: self.shared.log.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> TcpMirrorConfig {
        TcpMirrorConfig {
            deadline: Duration::from_millis(500),
            probes: 0,
            ..TcpMirrorConfig::default()
        }
    }

    fn evt(i: u64) -> TraceEvent {
        TraceEvent::MessageSent {
            id: i,
            performative: "inform".into(),
            sender: "a".into(),
            receiver: "b".into(),
            in_reply_to: None,
        }
    }

    #[test]
    fn first_emission_wakes_the_cold_node_and_delivers() {
        let mirror = RemoteMirror::new(quick_cfg());
        assert!(mirror.endpoint().is_none(), "node starts cold");
        let sink = mirror.sink();
        sink.emit("t", evt(1));
        sink.emit("t", evt(2));
        assert_eq!(mirror.wake_count(), 1);
        assert_eq!(mirror.mirrored(), 2);
        assert!(mirror.endpoint().is_some());
        let labels: Vec<_> = mirror
            .mirror_log()
            .records()
            .iter()
            .map(|r| r.event.label())
            .collect();
        assert_eq!(labels, vec!["wake.woken"]);
        let report = mirror.finish();
        assert_eq!(report.failed, 0);
        assert!(report.slept, "idle_timeout 0 reaps at finish");
    }

    #[test]
    fn sleep_and_re_wake_move_to_a_fresh_endpoint() {
        let mirror = RemoteMirror::new(quick_cfg());
        mirror.sink().emit("t", evt(1));
        let first = mirror.endpoint().expect("awake");
        assert!(mirror.sleep_now());
        assert!(mirror.endpoint().is_none(), "sleep unroutes the node");
        mirror.sink().emit("t", evt(2));
        let second = mirror.endpoint().expect("re-awake");
        assert_ne!(first, second, "re-wake binds a fresh port");
        assert_eq!(mirror.wake_count(), 2);
        assert_eq!(mirror.mirrored(), 2);
    }

    #[test]
    fn probes_feed_the_breaker_down_and_back_up() {
        let mirror = RemoteMirror::new(quick_cfg());
        assert_eq!(mirror.ensure_awake(), WakeOutcome::Woke);
        let (ok, failed) = mirror.probe(2);
        assert_eq!((ok, failed), (2, 0));
        assert!(mirror.node_admitted());
        // Outage: the node dies; probes fail until the breaker opens.
        mirror.sleep_now();
        mirror.probe(2);
        assert!(!mirror.node_admitted(), "two failures open the breaker");
        // Heal: re-wake, wait out the cooldown, and the half-open trial
        // probe readmits the node.
        mirror.ensure_awake();
        mirror.probe(4);
        assert!(mirror.node_admitted(), "healed node is readmitted");
        let labels: Vec<_> = mirror
            .mirror_log()
            .records()
            .iter()
            .map(|r| r.event.label().to_string())
            .collect();
        assert!(labels.iter().any(|l| l == "breaker.opened"), "{labels:?}");
        assert!(labels.iter().any(|l| l == "breaker.closed"), "{labels:?}");
    }

    #[test]
    fn tee_keeps_the_primary_stream_first_and_intact() {
        let primary = TraceLog::new();
        let mirror = RemoteMirror::new(quick_cfg());
        let teed = mirror.tee(TraceHandle::from(primary.clone()));
        teed.emit("t", evt(1));
        teed.emit("t", evt(2));
        let seqs: Vec<u64> = primary.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1], "primary sequencing untouched");
        assert_eq!(mirror.mirrored(), 2);
        // Teeing an empty handle still feeds the mirror.
        let solo = mirror.tee(TraceHandle::none());
        solo.emit("t", evt(3));
        assert_eq!(mirror.mirrored(), 3);
    }
}
