//! # gridflow-harness
//!
//! A deterministic simulation-testing (DST) harness for the GridFlow
//! core-service stack.
//!
//! §1 of the paper puts recovery front and centre: "the ability to
//! recover from errors caused by the failure of individual nodes is a
//! critical aspect for the execution of complex tasks."  This crate
//! makes those failures *reproducible*: a seeded [`FaultPlan`] scripts
//! everything that goes wrong in a run —
//!
//! * **message faults** — a [`FaultyTransport`] installed on the agent
//!   runtime's directory drops, duplicates, delays and reorders ACL
//!   messages under a [`VirtualClock`] (one tick per message, never wall
//!   time);
//! * **activity failures** — Bernoulli per-execution failures through
//!   [`gridflow_grid::failure::FailureModel`], transient or persistent;
//! * **node loss** — scripted container downs at chosen execution
//!   counts;
//! * **coordinator crashes** — the run is cut at a chosen
//!   [`EnactmentCheckpoint`] (round-tripped through its serialized form,
//!   as a real restart would read it from persistent storage) and
//!   resumed via [`Enactor::resume`].
//!
//! The [`runner`] unfolds a `(FaultPlan, Workload)` pair through crash
//! and resume phases; every phase is a pure function of the pair plus
//! the phase index, so two runs of the same pair produce byte-identical
//! [`EnactmentReport`]s ([`report_fingerprint`]) while different seeds
//! produce different fault schedules ([`FaultyTransport::schedule`]).
//!
//! Every layer also mirrors what it does into the telemetry crate:
//! [`Scenario::traced`] returns a [`TraceLog`] whose JSONL dump is
//! itself byte-identical across replays, and [`TraceQuery`] turns that
//! log into conformance assertions (no double dispatch, drops resolved,
//! happens-before).  [`multi::MultiCaseScenario`] lifts the same
//! machinery to N concurrent cases driven by the
//! `gridflow-engine` scheduler over one shared world.
//!
//! ```
//! use gridflow_harness::{run_scenario, outcome_fingerprint, FaultPlan};
//! use gridflow_harness::workload::dinner_workload;
//!
//! let plan = FaultPlan::seeded(42).failing_activities(0.2).crashing_after(0);
//! let first = run_scenario(&plan, &dinner_workload());
//! let again = run_scenario(&plan, &dinner_workload());
//! assert_eq!(outcome_fingerprint(&first), outcome_fingerprint(&again));
//! assert!(first.is_recoverable());
//! ```
//!
//! [`EnactmentCheckpoint`]: gridflow_services::coordination::EnactmentCheckpoint
//! [`EnactmentReport`]: gridflow_services::coordination::EnactmentReport
//! [`Enactor::resume`]: gridflow_services::coordination::Enactor::resume

#![warn(missing_docs)]

pub mod clock;
pub mod multi;
pub mod plan;
pub mod remote;
pub mod runner;
pub mod transport;
pub mod workload;

pub use clock::VirtualClock;
pub use multi::{EngineSpec, MultiCaseScenario};
pub use plan::{
    FaultAction, FaultEvent, FaultPlan, FaultSchedule, NodeLoss, PartitionSpec, Slowdown,
};
pub use remote::{RemoteMirror, RemoteReport, TcpMirrorConfig, TransportSpec};
pub use runner::{
    execution_counts, is_execution_prefix, outcome_fingerprint, report_fingerprint, run_scenario,
    Scenario, ScenarioOutcome,
};
pub use transport::FaultyTransport;
pub use workload::{dinner_workload, Workload};

// The telemetry surface tests lean on, re-exported so harness consumers
// need only one crate in scope.
pub use gridflow_telemetry::{
    MetricsRegistry, TeeSink, TraceEvent, TraceHandle, TraceLog, TraceQuery, TraceRecord,
    TraceSink, TraceViolation,
};

// The recovery surface the fault scenarios configure, re-exported for
// the same reason.
pub use gridflow_recovery::{
    BreakerConfig, BreakerState, LeaseConfig, RecoveryPolicy, RetryPolicy,
};
