//! The seeded workload generator: [`WorkloadGen`] stamps out
//! [`Workload`]s parameterized along the Yu & Buyya workflow-taxonomy
//! axes, so the engine, the differential oracle, and the bench matrix
//! are exercised on *families* of shapes instead of one mascot.
//!
//! Axes and their taxonomy reading:
//!
//! | knob | taxonomy axis |
//! |---|---|
//! | [`GraphShape`] | workflow structure: DAG (linear, parallel/choice) vs iterative non-DAG |
//! | [`WorkloadGen::width`] | fan-out degree / choice density |
//! | [`WorkloadGen::depth`] | workflow depth (sequential stages) |
//! | [`DurationProfile`] | data- vs compute-intensive task model |
//! | [`WorkloadGen::heterogeneous_capacity`] | resource heterogeneity |
//! | [`WorkloadGen::hosts_per_service`] | replica count / failover headroom |
//!
//! Determinism contract: `build()` is a pure function of the knobs.
//! The same configuration yields a byte-identical workload — same graph,
//! same case, same topology, same capacity profile (pinned by
//! [`Workload::fingerprint`] in the conformance tests) — and therefore,
//! under FIFO admission, a byte-identical merged JSONL trace at any
//! worker count.  All randomness is drawn from one `ChaCha8Rng` seeded
//! with [`WorkloadGen::seed`], in a fixed order.

use super::{GoalIdAllocator, Workload, WorldBuilder};
use gridflow_grid::container::ApplicationContainer;
use gridflow_grid::resource::{Resource, ResourceKind};
use gridflow_grid::workload::TaskDemand;
use gridflow_grid::GridTopology;
use gridflow_ontology::Value;
use gridflow_process::lower::lower;
use gridflow_process::parser::parse_process;
use gridflow_process::{CaseDescription, CompareOp, Condition, DataItem, ProcessGraph};
use gridflow_services::coordination::EnactmentConfig;
use gridflow_services::world::{GridWorld, OutputSpec, ServiceOffering};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// The generated workflow's control-flow structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GraphShape {
    /// A chain of `depth` sequential activities — the taxonomy's
    /// simplest DAG.
    #[default]
    Linear,
    /// `depth` stages, each a `FORK`/`JOIN` of `width` concurrent
    /// branches — parallel (AND-split) structure.
    FanOutJoin,
    /// `depth` stages, each a `CHOICE`/`MERGE` over `width` guarded
    /// arms routed by a seeded case property — conditional (XOR-split)
    /// structure.
    ChoiceDense,
    /// A chain of `depth` activities feeding an `ITERATIVE` refinement
    /// loop — the taxonomy's non-DAG class, the paper's Fig. 10 shape.
    Iterative,
}

impl GraphShape {
    /// Every shape, in canonical order.
    pub const ALL: [GraphShape; 4] = [
        GraphShape::Linear,
        GraphShape::FanOutJoin,
        GraphShape::ChoiceDense,
        GraphShape::Iterative,
    ];

    /// Stable identifier used in workload names.
    pub fn name(&self) -> &'static str {
        match self {
            GraphShape::Linear => "linear",
            GraphShape::FanOutJoin => "fanout",
            GraphShape::ChoiceDense => "choice",
            GraphShape::Iterative => "iterative",
        }
    }
}

/// Where a generated task's time goes — the taxonomy's data- vs
/// compute-intensive split, mapped onto [`TaskDemand`]'s cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurationProfile {
    /// Staging-dominated: small flop counts, large input transfers
    /// (coarse-grain, bandwidth-bound).
    #[default]
    DataStaged,
    /// Computation-dominated: large flop counts, small inputs,
    /// fine-grain parallelism (interconnect-sensitive).
    ComputeBound,
}

impl DurationProfile {
    /// Stable identifier used in workload names.
    pub fn name(&self) -> &'static str {
        match self {
            DurationProfile::DataStaged => "data",
            DurationProfile::ComputeBound => "compute",
        }
    }

    /// A demand for `service` under this profile, jittered ±20% by the
    /// generator's RNG so services are heterogeneous but deterministic.
    fn demand(&self, service: &str, rng: &mut ChaCha8Rng) -> TaskDemand {
        let jitter = rng.gen_range(0.8..1.2);
        match self {
            DurationProfile::DataStaged => {
                TaskDemand::coarse(service, 60.0 * jitter, 1_200.0 * jitter)
            }
            DurationProfile::ComputeBound => {
                TaskDemand::fine(service, 1_800.0 * jitter, 40.0 * jitter)
            }
        }
    }
}

/// The seeded, deterministic workload generator.
///
/// ```
/// use gridflow_harness::workload::{GraphShape, WorkloadGen};
///
/// let wl = WorkloadGen::new(7)
///     .shape(GraphShape::FanOutJoin)
///     .width(3)
///     .depth(2)
///     .build();
/// assert_eq!(wl.fingerprint(), WorkloadGen::new(7)
///     .shape(GraphShape::FanOutJoin)
///     .width(3)
///     .depth(2)
///     .build()
///     .fingerprint());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadGen {
    seed: u64,
    shape: GraphShape,
    width: usize,
    depth: usize,
    duration: DurationProfile,
    hosts_per_service: usize,
    heterogeneous_capacity: bool,
    fleet: usize,
}

impl WorkloadGen {
    /// A generator with the given seed and default knobs: linear shape,
    /// width 2, depth 3, data-staged durations, two hosts per service,
    /// homogeneous single-slot capacities, fleet sizing for 8 cases.
    pub fn new(seed: u64) -> Self {
        WorkloadGen {
            seed,
            shape: GraphShape::Linear,
            width: 2,
            depth: 3,
            duration: DurationProfile::DataStaged,
            hosts_per_service: 2,
            heterogeneous_capacity: false,
            fleet: 8,
        }
    }

    /// Set the control-flow shape.
    pub fn shape(mut self, shape: GraphShape) -> Self {
        self.shape = shape;
        self
    }

    /// Fan-out degree (FanOutJoin) or arm count (ChoiceDense); clamped
    /// to ≥ 2 — both constructs need two branches.  Ignored by Linear
    /// and Iterative.
    pub fn width(mut self, width: usize) -> Self {
        self.width = width.max(2);
        self
    }

    /// Sequential stages (≥ 1).
    pub fn depth(mut self, depth: usize) -> Self {
        self.depth = depth.max(1);
        self
    }

    /// Set the duration profile.
    pub fn duration(mut self, duration: DurationProfile) -> Self {
        self.duration = duration;
        self
    }

    /// Containers hosting each service (≥ 1; 2 leaves failover room).
    pub fn hosts_per_service(mut self, hosts: usize) -> Self {
        self.hosts_per_service = hosts.max(1);
        self
    }

    /// Draw each container's slot capacity from 1..=3 (seeded) instead
    /// of the homogeneous single slot.
    pub fn heterogeneous_capacity(mut self, on: bool) -> Self {
        self.heterogeneous_capacity = on;
        self
    }

    /// Size the case's goal-id range for a fleet of `fleet` concurrent
    /// cases (see [`GoalIdAllocator`]).
    pub fn fleet(mut self, fleet: usize) -> Self {
        self.fleet = fleet.max(1);
        self
    }

    /// The workload's deterministic name, derived from every knob.
    pub fn name(&self) -> String {
        format!(
            "gen-{}-w{}d{}-{}-s{}",
            self.shape.name(),
            self.width,
            self.depth,
            self.duration.name(),
            self.seed
        )
    }

    /// Build the workload.  Pure in the knobs: equal configurations
    /// yield byte-identical workloads.
    pub fn build(&self) -> Workload {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let plan = self.graph_plan(&mut rng);
        let graph = self.lower_graph(&plan);
        let case = self.case(&plan);
        let world_builder = self.world_builder(&plan, &mut rng);
        Workload {
            name: self.name(),
            graph,
            case,
            config: EnactmentConfig::default(),
            world_builder,
        }
    }

    /// Everything the shape decides before services become a world:
    /// the process source text, the service chain, and (for iterative
    /// shapes) the refinement schedule.
    fn graph_plan(&self, rng: &mut ChaCha8Rng) -> GraphPlan {
        let mut services: Vec<ServicePlan> = Vec::new();
        let class = |stage: usize| format!("K{stage}");
        let mut source = String::from("BEGIN ");
        let mut route = None;
        let mut refinement = None;
        match self.shape {
            GraphShape::Linear => {
                for stage in 0..self.depth {
                    let name = format!("s{stage}");
                    source.push_str(&format!("{name}; "));
                    services.push(ServicePlan::plain(&name, class(stage), class(stage + 1)));
                }
            }
            GraphShape::FanOutJoin => {
                for stage in 0..self.depth {
                    source.push_str("FORK { ");
                    for branch in 0..self.width {
                        let name = format!("f{stage}b{branch}");
                        if branch > 0 {
                            source.push_str(", ");
                        }
                        source.push_str(&format!("{{ {name}; }}"));
                        services.push(ServicePlan::plain(&name, class(stage), class(stage + 1)));
                    }
                    source.push_str(" } JOIN; ");
                }
            }
            GraphShape::ChoiceDense => {
                // Route is a seeded case property: arm j of every stage
                // guards on `Route < j+1`, the last arm on `true`, so
                // the drawn value picks one arm per stage (first true
                // guard wins) and different seeds walk different paths.
                let drawn: f64 = rng.gen_range(0.0..self.width as f64);
                route = Some(drawn);
                for stage in 0..self.depth {
                    source.push_str("CHOICE { ");
                    for arm in 0..self.width {
                        let name = format!("c{stage}a{arm}");
                        if arm > 0 {
                            source.push_str(", ");
                        }
                        if arm + 1 == self.width {
                            source.push_str(&format!("COND {{ true }} {{ {name}; }}"));
                        } else {
                            source.push_str(&format!(
                                "COND {{ D1.Route < {} }} {{ {name}; }}",
                                arm + 1
                            ));
                        }
                        services.push(ServicePlan::plain(&name, class(stage), class(stage + 1)));
                    }
                    source.push_str(" } MERGE; ");
                }
            }
            GraphShape::Iterative => {
                for stage in 0..self.depth {
                    let name = format!("s{stage}");
                    source.push_str(&format!("{name}; "));
                    services.push(ServicePlan::plain(&name, class(stage), class(stage + 1)));
                }
                // The refinement loop: `refine` writes the fixed-id
                // item R1, improving its Value by `step` per pass from
                // `initial`; the do-while loop-back guard keeps it
                // running until Value clears `target` — 2..=4 passes,
                // drawn from the seed.
                let passes: u64 = rng.gen_range(2..=4);
                let (initial, step) = (12.0_f64, 2.0_f64);
                // The first pass emits `initial` itself, so the value
                // after `passes` runs is `initial - step * (passes-1)`;
                // the guard stops the loop exactly there.
                let target = initial - step * (passes - 1) as f64;
                source.push_str(&format!(
                    "ITERATIVE {{ COND {{ R1.Value > {target} }} }} {{ refine; }}; "
                ));
                services.push(ServicePlan {
                    name: "refine".into(),
                    input: class(self.depth),
                    output: RefOutput::Refining {
                        classification: "Refined".into(),
                        id: "R1".into(),
                        initial,
                        step,
                    },
                });
                refinement = Some(RefinementPlan { target });
            }
        }
        source.push_str("END");
        GraphPlan {
            source,
            services,
            route,
            refinement,
        }
    }

    fn lower_graph(&self, plan: &GraphPlan) -> ProcessGraph {
        let ast = parse_process(&plan.source)
            .unwrap_or_else(|e| panic!("generated source must parse: {e}\n{}", plan.source));
        lower(self.name().as_str(), &ast).expect("generated graph lowers")
    }

    fn case(&self, plan: &GraphPlan) -> CaseDescription {
        let mut d1 = DataItem::classified("K0");
        if let Some(route) = plan.route {
            d1 = d1.with("Route", Value::Float(route));
        }
        let case = CaseDescription::new(self.name()).with_data("D1", d1);
        match &plan.refinement {
            Some(refinement) => case
                .with_goal("G1", Condition::classified("R1", "Refined"))
                .with_goal(
                    "G2",
                    Condition::compare("R1", "Value", CompareOp::Le, refinement.target),
                ),
            None => {
                // Fresh ids per case: one per activity that actually
                // executes a plain (fresh-id) output in a single pass.
                let ids_per_case = match self.shape {
                    GraphShape::Linear => self.depth,
                    GraphShape::FanOutJoin => self.depth * self.width,
                    GraphShape::ChoiceDense => self.depth,
                    GraphShape::Iterative => unreachable!("handled above"),
                };
                let allocator = GoalIdAllocator::new(ids_per_case).with_min_fleet(8);
                case.with_goal(
                    "G1",
                    allocator.exists_goal(&format!("K{}", self.depth), self.fleet),
                )
            }
        }
    }

    /// The captured world builder: topology, catalog, and capacity
    /// profile are fixed now (from the seed); every call builds a fresh
    /// world from them.
    fn world_builder(&self, plan: &GraphPlan, rng: &mut ChaCha8Rng) -> WorldBuilder {
        let mut resources = Vec::new();
        let mut containers = Vec::new();
        let mut capacities: BTreeMap<String, usize> = BTreeMap::new();
        for (si, service) in plan.services.iter().enumerate() {
            for host in 0..self.hosts_per_service {
                let rid = format!("r-{}-{host}", service.name);
                let kind = if (si + host) % 2 == 0 {
                    ResourceKind::PcCluster
                } else {
                    ResourceKind::Supercomputer
                };
                resources.push(
                    Resource::new(rid.clone(), kind)
                        .with_nodes(rng.gen_range(8..=64))
                        .with_software([service.name.clone()]),
                );
                let cid = format!("ac-{}-{host}", service.name);
                containers.push(
                    ApplicationContainer::new(cid.clone(), rid).hosting([service.name.clone()]),
                );
                if self.heterogeneous_capacity {
                    capacities.insert(cid, rng.gen_range(1..=3));
                }
            }
        }
        let topology = GridTopology {
            resources,
            containers,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(0x0FFE_71C5));
        let duration = self.duration;
        let offerings: Vec<ServiceOffering> = plan
            .services
            .iter()
            .map(|service| {
                let outputs = vec![match &service.output {
                    RefOutput::Plain(classification) => OutputSpec::plain(classification.clone()),
                    RefOutput::Refining {
                        classification,
                        id,
                        initial,
                        step,
                    } => OutputSpec::refining(classification.clone(), id.clone(), *initial, *step),
                }];
                ServiceOffering::new(service.name.clone(), [service.input.clone()], outputs)
                    .with_demand(duration.demand(&service.name, &mut rng))
            })
            .collect();
        WorldBuilder::new(move || {
            let mut world = GridWorld::new(topology.clone());
            for offering in &offerings {
                world.offer(offering.clone());
            }
            for (container, slots) in &capacities {
                world.set_capacity(container, *slots);
            }
            world
        })
    }
}

/// One generated end-user service: consumes `input`-classified data,
/// produces `output`.
#[derive(Debug, Clone)]
struct ServicePlan {
    name: String,
    input: String,
    output: RefOutput,
}

impl ServicePlan {
    fn plain(name: &str, input: String, output: String) -> Self {
        ServicePlan {
            name: name.to_string(),
            input,
            output: RefOutput::Plain(output),
        }
    }
}

#[derive(Debug, Clone)]
enum RefOutput {
    Plain(String),
    Refining {
        classification: String,
        id: String,
        initial: f64,
        step: f64,
    },
}

/// The iterative shape's refinement schedule.
#[derive(Debug, Clone, Copy)]
struct RefinementPlan {
    /// The goal's resolution target; `initial` clears it after the
    /// seeded 2–4 refinement `step`s.
    target: f64,
}

/// The generator's intermediate plan: process source, service chain,
/// and the case-level knobs the shape drew from the seed.
#[derive(Debug, Clone)]
struct GraphPlan {
    source: String,
    services: Vec<ServicePlan>,
    route: Option<f64>,
    refinement: Option<RefinementPlan>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use crate::MultiCaseScenario;

    #[test]
    fn every_shape_builds_and_enacts_cleanly() {
        for shape in GraphShape::ALL {
            let wl = WorkloadGen::new(11).shape(shape).width(3).depth(2).build();
            let outcome = MultiCaseScenario::new(&FaultPlan::default(), &wl, 2)
                .max_in_flight(2)
                .run();
            assert!(
                outcome.engine.all_succeeded(),
                "shape {:?} failed: {:?}",
                shape,
                outcome
                    .engine
                    .cases
                    .iter()
                    .map(|c| c.report.abort_reason.clone())
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn same_seed_same_workload_different_seed_different_route() {
        let a = WorkloadGen::new(5).shape(GraphShape::ChoiceDense).build();
        let b = WorkloadGen::new(5).shape(GraphShape::ChoiceDense).build();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different seeds shift at least the name; usually the route
        // and capacities too.
        let c = WorkloadGen::new(6).shape(GraphShape::ChoiceDense).build();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn heterogeneous_capacity_draws_multi_slot_containers() {
        let wl = WorkloadGen::new(3)
            .shape(GraphShape::FanOutJoin)
            .heterogeneous_capacity(true)
            .build();
        let world = wl.world_builder.build();
        let slots: Vec<usize> = world
            .topology
            .containers
            .iter()
            .map(|c| world.capacity_of(&c.id))
            .collect();
        assert!(
            slots.iter().any(|&s| s > 1),
            "seeded capacities should include a multi-slot container: {slots:?}"
        );
    }

    #[test]
    fn iterative_shape_refines_to_its_target() {
        let wl = WorkloadGen::new(9).shape(GraphShape::Iterative).build();
        let outcome = MultiCaseScenario::new(&FaultPlan::default(), &wl, 1).run();
        assert!(outcome.engine.all_succeeded());
        let report = &outcome.engine.cases[0].report;
        let passes = report
            .executions
            .iter()
            .filter(|e| e.service == "refine")
            .count();
        assert!(
            (2..=4).contains(&passes),
            "refine should run 2–4 seeded passes, ran {passes}"
        );
    }
}
