//! The paper's §4 case study as an engine workload.
//!
//! [`virus_reconstruction_workload`] packages the Figs. 10–13
//! virus-reconstruction pipeline — `POD` classifying the micrograph,
//! a four-way `P3DR` fan-out refining the 3D model, and the
//! `POR`/`PSF` refinement loop driving resolution from 12.0 Å down to
//! the 8.0 Å target — together with the virtual-laboratory grid world
//! (UCF clusters, Purdue/SDSC supercomputers, the ANL fallback site).
//!
//! The process graph, case description, offerings, and world all come
//! from `gridflow::casestudy`, the single source of truth for the
//! paper's scenario; this module only adapts them to the harness's
//! [`Workload`] shape so the engine, the fault harness, and the bench
//! matrix can drive the real thing instead of a toy.

use super::{Workload, WorldBuilder};
use gridflow::casestudy;
use gridflow_services::coordination::EnactmentConfig;

/// Seed for the virtual laboratory's deterministic site layout.
const WORLD_SEED: u64 = 7;

/// The paper's virus-reconstruction workflow (Figs. 10–13) over the
/// virtual-laboratory world.
///
/// The enactment is deterministic: the default [`EnactmentConfig`]
/// drives three `POR → PSF` refinement passes (12.0 → 10.0 → 8.0 Å)
/// after the `P3DR` fan-out joins, exactly the trajectory the paper
/// narrates.
pub fn virus_reconstruction_workload() -> Workload {
    Workload {
        name: "virus".to_string(),
        graph: casestudy::process_description(),
        case: casestudy::case_description(),
        config: EnactmentConfig::default(),
        world_builder: WorldBuilder::new(|| casestudy::virtual_lab_world(0, WORLD_SEED)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use crate::MultiCaseScenario;

    #[test]
    fn virus_workload_enacts_to_target_resolution() {
        let wl = virus_reconstruction_workload();
        let outcome = MultiCaseScenario::new(&FaultPlan::default(), &wl, 1).run();
        assert!(
            outcome.engine.all_succeeded(),
            "virus case aborted: {:?}",
            outcome.engine.cases[0].report.abort_reason
        );
        let report = &outcome.engine.cases[0].report;
        let psf_passes = report
            .executions
            .iter()
            .filter(|e| e.service == "PSF")
            .count();
        assert_eq!(psf_passes, 3, "12.0 → 8.0 Å at 2.0 Å/pass is 3 passes");
    }
}
