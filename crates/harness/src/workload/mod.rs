//! Canonical workloads the harness drives faults against.
//!
//! A [`Workload`] bundles everything one enactment needs — a world
//! builder (fresh state per run, so replays start identically), a
//! process graph, a case description, and an enactment configuration.
//! Three families live here:
//!
//! * the hand-built `dinner` family (this module), mirroring the
//!   coordination-service test fixture: each service hosted on two
//!   dedicated containers, with `nuke` as an alternative cooker so
//!   replanning has somewhere to go;
//! * the seeded generator ([`gen::WorkloadGen`]), which stamps out
//!   workloads along the Yu & Buyya taxonomy axes — graph shape, width,
//!   depth, duration profile, capacity heterogeneity;
//! * the paper's §4 case study ([`virus::virus_reconstruction_workload`]),
//!   the Figs. 10–13 virus-reconstruction workflow as an engine
//!   workload.

use crate::plan::FaultPlan;
use gridflow_grid::container::ApplicationContainer;
use gridflow_grid::failure::FailureModel;
use gridflow_grid::resource::{Resource, ResourceKind};
use gridflow_grid::GridTopology;
use gridflow_planner::prelude::GpConfig;
use gridflow_planner::GoalSpec;
use gridflow_process::lower::lower;
use gridflow_process::parser::parse_process;
use gridflow_process::{CaseDescription, Condition, DataItem, ProcessGraph};
use gridflow_recovery::RecoveryPolicy;
use gridflow_services::coordination::EnactmentConfig;
use gridflow_services::world::{GridWorld, OutputSpec, ServiceOffering};
use std::sync::Arc;

pub mod gen;
pub mod virus;

pub use gen::{DurationProfile, GraphShape, WorkloadGen};
pub use virus::virus_reconstruction_workload;

/// Builds a fresh [`GridWorld`] per run, so replays start identically.
///
/// Wraps either a plain `fn` (the hand-built workloads) or a captured
/// closure (generated workloads, whose topology and capacity profile
/// are derived from a seed at build time).  Cloning shares the builder;
/// every [`WorldBuilder::build`] call still returns an independent
/// world, so runs can't smuggle state between phases.
#[derive(Clone)]
pub struct WorldBuilder(Arc<dyn Fn() -> GridWorld + Send + Sync>);

impl WorldBuilder {
    /// Wrap a capturing builder closure.
    pub fn new(f: impl Fn() -> GridWorld + Send + Sync + 'static) -> Self {
        WorldBuilder(Arc::new(f))
    }

    /// Build a fresh world.
    pub fn build(&self) -> GridWorld {
        (self.0)()
    }
}

impl From<fn() -> GridWorld> for WorldBuilder {
    fn from(f: fn() -> GridWorld) -> Self {
        WorldBuilder(Arc::new(f))
    }
}

impl std::fmt::Debug for WorldBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WorldBuilder(..)")
    }
}

/// One fault-injection scenario's fixed inputs.
#[derive(Clone)]
pub struct Workload {
    /// Scenario name (for logs and failure messages).
    pub name: String,
    /// The workflow to enact.
    pub graph: ProcessGraph,
    /// The case driving it.
    pub case: CaseDescription,
    /// Enactment configuration.
    pub config: EnactmentConfig,
    /// Builds a fresh world (all containers up, no failure model).
    pub world_builder: WorldBuilder,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("graph", &self.graph.name)
            .finish()
    }
}

impl Workload {
    /// A fresh world with this plan's failure model installed.  `phase`
    /// distinguishes the initial run from post-crash resumes: the
    /// Bernoulli stream is re-seeded per phase (deterministically), so a
    /// recovered coordinator does not replay the exact failures that
    /// killed it.
    pub fn fresh_world(&self, plan: &FaultPlan, phase: usize) -> GridWorld {
        let mut world = self.world_builder.build();
        if plan.activity_failure_prob > 0.0 {
            let phase_seed = plan.seed.wrapping_add(7919u64.wrapping_mul(phase as u64));
            world.failure = FailureModel::new(phase_seed, plan.activity_failure_prob);
            world.failures_are_persistent = plan.persistent_activity_failures;
        }
        for s in &plan.slow_containers {
            world.set_slowdown(&s.container, s.factor);
        }
        world
    }

    /// The same workload with the given recovery policy installed in the
    /// enactment configuration.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.config.recovery = recovery;
        self
    }

    /// A structural fingerprint of the workload: graph, case, and the
    /// built world's topology, catalog, and capacity overrides, all
    /// rendered deterministically.  Two workloads with equal
    /// fingerprints enact identically under equal plans — the
    /// seed-determinism tests compare these byte-for-byte.
    pub fn fingerprint(&self) -> String {
        let world = self.world_builder.build();
        let mut containers: Vec<String> = world
            .topology
            .containers
            .iter()
            .map(|c| {
                format!(
                    "{}@{} hosting {:?} capacity {}",
                    c.id,
                    c.resource_id,
                    c.services,
                    world.capacity_of(&c.id)
                )
            })
            .collect();
        containers.sort();
        let mut offerings: Vec<String> =
            world.offerings.values().map(|o| format!("{o:?}")).collect();
        offerings.sort();
        format!(
            "name: {}\ngraph: {:?}\ncase: {:?}\ncontainers: {containers:#?}\nofferings: {offerings:#?}\n",
            self.name, self.graph, self.case
        )
    }
}

/// The shared goal-id allocator: sizes an "an item with classification
/// `X` exists" goal to a fleet of concurrent cases on one shared world.
///
/// The world's fresh-id counter is global and starts at
/// [`GoalIdAllocator::BASE`]; every produced item takes the next id
/// (`D101`, `D102`, …), so a fleet of N cases each producing
/// `ids_per_case` fresh items consumes ids up to
/// `BASE + ids_per_case * N` — and a case's goal must range over all of
/// them, because which ids land in which case depends on the
/// interleaving.  Both the dinner family and the generated workloads
/// size their goals through this one allocator, so the id-range
/// arithmetic cannot drift between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoalIdAllocator {
    ids_per_case: usize,
    min_fleet: usize,
}

impl GoalIdAllocator {
    /// The world's fresh-id counter starts here; the first produced
    /// item is `D101`.
    pub const BASE: usize = 100;

    /// An allocator for cases that produce `ids_per_case` fresh data
    /// items each, sized for at least [`Self::default_min_fleet`]
    /// concurrent cases (agent-stack scenarios enact repeatedly on one
    /// shared world, so even a single case's goal must stay reachable
    /// on later runs).
    pub fn new(ids_per_case: usize) -> Self {
        GoalIdAllocator {
            ids_per_case: ids_per_case.max(1),
            min_fleet: Self::default_min_fleet(),
        }
    }

    /// The default fleet floor (40 — the historical dinner goal range
    /// `D101..=D220` at three ids per case).
    pub const fn default_min_fleet() -> usize {
        40
    }

    /// Same allocator with a different fleet floor.
    pub fn with_min_fleet(mut self, min_fleet: usize) -> Self {
        self.min_fleet = min_fleet.max(1);
        self
    }

    /// The last data id a fleet of `fleet` cases can produce.
    pub fn last_id(&self, fleet: usize) -> usize {
        Self::BASE + self.ids_per_case * fleet.max(self.min_fleet)
    }

    /// Goal condition: *some* produced item (`D101` up to
    /// [`last_id`](Self::last_id)) is classified `classification`.
    pub fn exists_goal(&self, classification: &str, fleet: usize) -> Condition {
        let first = Self::BASE + 1;
        let mut layer: Vec<Condition> = (first..=self.last_id(fleet))
            .map(|i| Condition::classified(format!("D{i}"), classification))
            .collect();
        // Reduce pairwise into a *balanced* Or tree: a left-nested fold
        // would be linear in the fleet size, and everything that walks
        // the condition recursively (drop, serde, goal compilation)
        // would overflow the stack on 100k-case fleets.  Or is
        // associative, so the shape is free to choose.
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut rest = layer.into_iter();
            while let Some(a) = rest.next() {
                match rest.next() {
                    Some(b) => next.push(Condition::or(a, b)),
                    None => next.push(a),
                }
            }
            layer = next;
        }
        layer.pop().expect("goal id range is never empty")
    }
}

/// The dinner topology: each of `prep`, `cook`, `nuke`, `plate` hosted
/// on two dedicated containers (`ac-h0`…`ac-h7`), so failing one
/// service's hosts never disables another service.
pub fn dinner_topology() -> GridTopology {
    let mut resources = Vec::new();
    let mut containers = Vec::new();
    let hosting: [(&str, &[&str]); 8] = [
        ("h0", &["prep"]),
        ("h1", &["prep"]),
        ("h2", &["cook"]),
        ("h3", &["cook"]),
        ("h4", &["nuke"]),
        ("h5", &["nuke"]),
        ("h6", &["plate"]),
        ("h7", &["plate"]),
    ];
    for (i, (name, services)) in hosting.iter().enumerate() {
        resources.push(
            Resource::new(*name, ResourceKind::PcCluster)
                .with_nodes(4 + i as u32)
                .with_software(services.iter().map(|s| s.to_string())),
        );
        containers.push(
            ApplicationContainer::new(format!("ac-{name}"), *name)
                .hosting(services.iter().map(|s| s.to_string())),
        );
    }
    GridTopology {
        resources,
        containers,
    }
}

/// The dinner topology scaled out: `replicas` dedicated containers per
/// service instead of two, interleaved by service so consecutive
/// container positions (and hence shard stripes) mix all four services.
/// This is the fleet-bench shape — enough capacity that the schedule is
/// compute-bound rather than contention-bound, which is where the
/// sharded core's parallel prepare phase earns its keep.
pub fn dinner_topology_scaled(replicas: usize) -> GridTopology {
    let services = ["prep", "cook", "nuke", "plate"];
    let mut resources = Vec::new();
    let mut containers = Vec::new();
    for replica in 0..replicas.max(1) {
        for (slot, service) in services.iter().enumerate() {
            let name = format!("{service}{replica}");
            resources.push(
                Resource::new(&name, ResourceKind::PcCluster)
                    .with_nodes(4 + slot as u32)
                    .with_software([service.to_string()]),
            );
            containers.push(
                ApplicationContainer::new(format!("ac-{name}"), &name)
                    .hosting([service.to_string()]),
            );
        }
    }
    GridTopology {
        resources,
        containers,
    }
}

/// The dinner workload over [`dinner_topology_scaled`], with the case
/// goal sized for a fleet of `fleet` concurrent cases (the shared
/// world's fresh-id counter is fleet-global).
pub fn dinner_workload_scaled(replicas: usize, fleet: usize) -> Workload {
    let mut wl = dinner_workload();
    wl.name = format!("dinner-x{replicas}");
    wl.case = dinner_case_for_fleet(fleet);
    wl.world_builder = WorldBuilder::new(move || {
        let mut w = GridWorld::new(dinner_topology_scaled(replicas));
        offer_dinner_services(&mut w);
        // Every fiber ranks candidates identically, so with the default
        // one slot per container a whole fleet funnels into the same few
        // top-ranked hosts each tick.  Give each replica a real slot
        // budget so the schedule is compute-bound (machine rebuilds,
        // candidate ranking) rather than reservation-bound — the shape
        // the sharded core's parallel prepare phase is for.
        for container in w.hosting_containers("prep") {
            w.set_capacity(&container, 16);
        }
        for container in w.hosting_containers("cook") {
            w.set_capacity(&container, 16);
        }
        for container in w.hosting_containers("nuke") {
            w.set_capacity(&container, 16);
        }
        for container in w.hosting_containers("plate") {
            w.set_capacity(&container, 16);
        }
        w
    });
    wl
}

/// Install the four dinner service offerings on a world.
fn offer_dinner_services(w: &mut GridWorld) {
    w.offer(ServiceOffering::new(
        "prep",
        ["Raw"],
        vec![OutputSpec::plain("Prepped")],
    ));
    w.offer(ServiceOffering::new(
        "cook",
        ["Prepped"],
        vec![OutputSpec::plain("Cooked")],
    ));
    w.offer(ServiceOffering::new(
        "nuke",
        ["Prepped"],
        vec![OutputSpec::plain("Cooked")],
    ));
    w.offer(ServiceOffering::new(
        "plate",
        ["Cooked"],
        vec![OutputSpec::plain("Plated")],
    ));
}

/// The dinner world: `prep → cook|nuke → plate` over [`dinner_topology`].
pub fn dinner_world() -> GridWorld {
    let mut w = GridWorld::new(dinner_topology());
    offer_dinner_services(&mut w);
    w
}

/// The dinner goal-id allocator: three fresh items per case (`prep`,
/// `cook`, `plate` each produce one), default fleet floor, so a single
/// case's goal ranges over the historical `D101..=D220`.
fn dinner_goal_ids() -> GoalIdAllocator {
    GoalIdAllocator::new(3)
}

/// The dinner case: one `Raw` item, goal `Plated`.  Equivalent to
/// [`dinner_case_for_fleet`]`(1)` — the goal range is wide because the
/// agent-stack scenarios enact repeatedly on one *shared* world, and
/// the goal must still be reachable on the later runs.
pub fn dinner_case() -> CaseDescription {
    dinner_case_for_fleet(1)
}

/// A dinner case whose goal range is sized for a fleet of `fleet`
/// concurrent cases on one shared world.  The world's fresh-id counter
/// is global, so a fleet of N consumes ~3·N produced ids; the
/// [`GoalIdAllocator`] sizes the goal's id range accordingly (with the
/// default floor, fleets up to 40 share the `D101..=D220` range).
pub fn dinner_case_for_fleet(fleet: usize) -> CaseDescription {
    CaseDescription::new("dinner")
        .with_data("D1", DataItem::classified("Raw"))
        .with_goal("G1", dinner_goal_ids().exists_goal("Plated", fleet))
}

/// The linear dinner workflow `prep; cook; plate`.
pub fn dinner_graph() -> ProcessGraph {
    let ast = parse_process("BEGIN prep; cook; plate; END").expect("dinner source parses");
    lower("dinner", &ast).expect("dinner graph lowers")
}

/// The baseline workload: linear dinner, checkpoint after every
/// successful activity, no replanning.
pub fn dinner_workload() -> Workload {
    Workload {
        name: "dinner".into(),
        graph: dinner_graph(),
        case: dinner_case(),
        config: EnactmentConfig {
            checkpoint_every: Some(1),
            ..EnactmentConfig::default()
        },
        world_builder: WorldBuilder::new(dinner_world),
    }
}

/// The replanning workload: same dinner, but activity failure on every
/// candidate escalates to the GP planner (which can route `cook` →
/// `nuke`).
pub fn dinner_replan_workload(gp_seed: u64) -> Workload {
    let mut w = dinner_workload();
    w.name = "dinner+replan".into();
    w.config = EnactmentConfig {
        replan: true,
        planning_goals: vec![GoalSpec {
            classification: "Plated".into(),
            min_count: 1,
        }],
        gp: GpConfig {
            population_size: 80,
            generations: 25,
            seed: gp_seed,
            ..GpConfig::default()
        },
        checkpoint_every: Some(1),
        ..EnactmentConfig::default()
    };
    w
}

/// The replanning workload over [`dinner_topology_scaled`]: the scaled
/// dinner with the same escalate-to-GP configuration as
/// [`dinner_replan_workload`], sized for a fleet of `fleet` concurrent
/// cases.  The planning goal is fleet-independent (`Plated`, count 1),
/// so every case's replan of the same failure shares one [`PlanKey`]
/// regardless of fleet size.
///
/// [`PlanKey`]: gridflow_planner::PlanKey
pub fn dinner_replan_workload_scaled(replicas: usize, fleet: usize, gp_seed: u64) -> Workload {
    let mut w = dinner_workload_scaled(replicas, fleet);
    w.name = format!("dinner+replan-x{replicas}");
    // GP winners are valid but not always minimal — a replanned case
    // can execute (and consume fresh ids for) more than the baseline
    // three activities, so the goal's id range is sized for double the
    // fleet's nominal consumption.
    w.case = dinner_case_for_fleet(fleet * 2);
    w.config = EnactmentConfig {
        replan: true,
        planning_goals: vec![GoalSpec {
            classification: "Plated".into(),
            min_count: 1,
        }],
        gp: GpConfig {
            population_size: 80,
            generations: 25,
            seed: gp_seed,
            ..GpConfig::default()
        },
        checkpoint_every: Some(1),
        ..EnactmentConfig::default()
    };
    w
}

/// [`cook_loss_churn_plan`] for [`dinner_topology_scaled`]: every
/// `cook` replica (`ac-cook0` … `ac-cook{replicas-1}`) dies together
/// after the fleet's first activity execution.
pub fn cook_loss_churn_plan_scaled(replicas: usize, seed: u64) -> FaultPlan {
    (0..replicas.max(1)).fold(FaultPlan::seeded(seed), |p, i| {
        p.losing_node(format!("ac-cook{i}"), 1)
    })
}

/// The replan-under-churn fault plan: both `cook` hosts (`ac-h2`,
/// `ac-h3`) die together after the fleet's first activity execution —
/// every in-flight case has finished `prep` (or is about to) and must
/// escalate to the GP planner to reroute `cook` → `nuke`.
///
/// The loss fires after execution 1, not 0, so cases are admitted while
/// a cook host is still alive (a loss at admission would reject the
/// case outright as having no live candidate container).  Combined
/// with [`dinner_replan_workload`] and `max_in_flight >= fleet`, every
/// case replans the *same* content-addressed problem — goal `Plated`,
/// produced `["Prepped"]`, excluded `["cook"]` — which is the
/// worst-case stampede a fleet-shared plan cache exists to absorb.
pub fn cook_loss_churn_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .losing_node("ac-h2", 1)
        .losing_node("ac-h3", 1)
}

/// The recovery workload: the baseline dinner under the standard
/// escalation ladder (retries with backoff, 60-tick leases, circuit
/// breakers) — the configuration the `recovery_failover` acceptance
/// scenario drives.
pub fn dinner_recovery_workload() -> Workload {
    let mut w = dinner_workload();
    w.name = "dinner+recovery".into();
    w.config.recovery = RecoveryPolicy::standard();
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridflow_services::coordination::Enactor;

    #[test]
    fn dinner_happy_path_succeeds() {
        let wl = dinner_workload();
        let mut world = wl.fresh_world(&FaultPlan::default(), 0);
        let report = Enactor::builder()
            .config(wl.config.clone())
            .build()
            .enact(&mut world, &wl.graph, &wl.case);
        assert!(report.success, "abort: {:?}", report.abort_reason);
        assert_eq!(report.executions.len(), 3);
        assert_eq!(report.checkpoints.len(), 3);
    }

    #[test]
    fn fresh_world_installs_the_plan_failure_model() {
        let wl = dinner_workload();
        let plan = FaultPlan::seeded(3)
            .failing_activities(1.0)
            .transient_failures();
        let mut world = wl.fresh_world(&plan, 0);
        assert!(!world.failures_are_persistent);
        let c = world.executable_containers("prep")[0].clone();
        assert!(world.execute_service("prep", &c).is_err());
    }

    #[test]
    fn phases_reseed_the_failure_stream() {
        let wl = dinner_workload();
        let plan = FaultPlan::seeded(5).failing_activities(0.5);
        let mut w0 = wl.fresh_world(&plan, 0);
        let mut w1 = wl.fresh_world(&plan, 1);
        let draws0: Vec<bool> = (0..64).map(|_| w0.failure.execution_fails(1.0)).collect();
        let draws1: Vec<bool> = (0..64).map(|_| w1.failure.execution_fails(1.0)).collect();
        assert_ne!(draws0, draws1, "phase reseed must shift the stream");
    }

    #[test]
    fn fresh_world_installs_scripted_slowdowns() {
        let wl = dinner_workload();
        let plan = FaultPlan::seeded(9).slowing_container("ac-h1", 50.0);
        let world = wl.fresh_world(&plan, 0);
        assert_eq!(world.slowdowns.get("ac-h1"), Some(&50.0));
        assert!(!world.slowdowns.contains_key("ac-h0"));
    }

    #[test]
    fn recovery_workload_survives_a_slow_container_where_baseline_stalls() {
        // One slow `prep` host, no other faults.  The baseline trusts
        // the slow success and pays the stretched duration; the recovery
        // workload leases it out and fails over to the healthy host.
        let plan = FaultPlan::seeded(1).slowing_container("ac-h1", 50.0);
        let base = dinner_workload();
        let mut w = base.fresh_world(&plan, 0);
        let slow = Enactor::builder()
            .config(base.config.clone())
            .build()
            .enact(&mut w, &base.graph, &base.case);
        assert!(slow.success);
        assert_eq!(slow.executions[0].container, "ac-h1");

        let rec = dinner_recovery_workload();
        let mut w = rec.fresh_world(&plan, 0);
        let report = Enactor::builder()
            .config(rec.config.clone())
            .build()
            .enact(&mut w, &rec.graph, &rec.case);
        assert!(report.success, "abort: {:?}", report.abort_reason);
        assert_eq!(report.executions[0].container, "ac-h0");
        assert!(report.failed_attempts.iter().all(|(_, c)| c == "ac-h1"));
    }

    #[test]
    fn topology_isolates_services_per_container_pair() {
        let w = dinner_world();
        for s in ["prep", "cook", "nuke", "plate"] {
            assert_eq!(w.hosting_containers(s).len(), 2, "service {s}");
        }
    }
}
