//! The execution-cost model: how long and how expensive one task
//! execution is on a given resource.
//!
//! The model captures the §1 trade-offs: computational demand scales down
//! with aggregate CPU capacity; *fine-grain* parallel tasks pay a
//! latency-dominated synchronization penalty that makes commodity
//! clusters a poor fit; data staging pays bandwidth costs (the paper's
//! data sets are "GBytes or TBytes").

use crate::resource::Resource;
use serde::{Deserialize, Serialize};

/// Computational demand of one task execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDemand {
    /// Service name being executed (e.g. `P3DR`).
    pub service: String,
    /// Total compute demand in Gflop.
    pub gflop: f64,
    /// Input data to stage in, in MBytes.
    pub input_mb: f64,
    /// Output data to stage out, in MBytes.
    pub output_mb: f64,
    /// Degree of parallelism the task can exploit (nodes).
    pub max_parallelism: u32,
    /// Fine-grain parallel (frequent synchronization)?  If so, every
    /// compute step pays interconnect latency.
    pub fine_grain: bool,
    /// Synchronization rounds per Gflop when fine-grain.
    pub sync_rounds_per_gflop: f64,
}

impl TaskDemand {
    /// A coarse-grain task with the given demand.
    pub fn coarse(service: impl Into<String>, gflop: f64, input_mb: f64) -> Self {
        TaskDemand {
            service: service.into(),
            gflop,
            input_mb,
            output_mb: input_mb * 0.1,
            max_parallelism: 64,
            fine_grain: false,
            sync_rounds_per_gflop: 0.0,
        }
    }

    /// A fine-grain parallel task (e.g. the iterative 3D reconstruction).
    pub fn fine(service: impl Into<String>, gflop: f64, input_mb: f64) -> Self {
        TaskDemand {
            service: service.into(),
            gflop,
            input_mb,
            output_mb: input_mb * 0.1,
            max_parallelism: 64,
            fine_grain: true,
            sync_rounds_per_gflop: 50.0,
        }
    }
}

/// Predicted duration and cost of an execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionEstimate {
    /// Wall-clock seconds.
    pub duration_s: f64,
    /// Cost in market units.
    pub cost: f64,
    /// Nodes actually used.
    pub nodes_used: u32,
}

/// Estimate one execution of `demand` on `resource`.
///
/// duration = compute + synchronization + staging, where
///
/// * compute = gflop / (nodes × GHz) — a GHz-node does ~1 Gflop/s here;
/// * synchronization = rounds × latency (fine-grain only, and only when
///   more than one node cooperates);
/// * staging = (input+output) / bandwidth.
pub fn estimate(demand: &TaskDemand, resource: &Resource) -> ExecutionEstimate {
    let nodes_used = demand.max_parallelism.min(resource.nodes).max(1);
    let compute_rate = nodes_used as f64 * resource.hardware.cpu_ghz; // Gflop/s
    let compute_s = demand.gflop / compute_rate.max(1e-9);
    let sync_s = if demand.fine_grain && nodes_used > 1 {
        demand.gflop * demand.sync_rounds_per_gflop * (resource.hardware.latency_us * 1e-6)
    } else {
        0.0
    };
    let staging_s =
        (demand.input_mb + demand.output_mb) * 8.0 / resource.hardware.bandwidth_mbps.max(1e-9);
    let duration_s = compute_s + sync_s + staging_s;
    let cost = resource.cost_per_cpu_hour * nodes_used as f64 * (duration_s / 3600.0);
    ExecutionEstimate {
        duration_s,
        cost,
        nodes_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceKind;

    fn pc_cluster() -> Resource {
        Resource::new("pc", ResourceKind::PcCluster).with_nodes(32)
    }

    fn supercomputer() -> Resource {
        Resource::new("sc", ResourceKind::Supercomputer).with_nodes(32)
    }

    #[test]
    fn coarse_grain_prefers_raw_clock() {
        // Coarse-grain work: the higher-clocked PC cluster wins.
        let demand = TaskDemand::coarse("POD", 500.0, 10.0);
        let pc = estimate(&demand, &pc_cluster());
        let sc = estimate(&demand, &supercomputer());
        assert!(
            pc.duration_s < sc.duration_s,
            "pc {} vs sc {}",
            pc.duration_s,
            sc.duration_s
        );
    }

    #[test]
    fn fine_grain_prefers_fast_interconnect() {
        // Fine-grain work: latency penalties sink the PC cluster — the
        // paper's §1 example.
        let demand = TaskDemand::fine("P3DR", 500.0, 10.0);
        let pc = estimate(&demand, &pc_cluster());
        let sc = estimate(&demand, &supercomputer());
        assert!(
            sc.duration_s < pc.duration_s,
            "sc {} vs pc {}",
            sc.duration_s,
            pc.duration_s
        );
    }

    #[test]
    fn parallelism_is_capped_by_both_sides() {
        let mut demand = TaskDemand::coarse("X", 100.0, 1.0);
        demand.max_parallelism = 8;
        let est = estimate(&demand, &pc_cluster());
        assert_eq!(est.nodes_used, 8);
        demand.max_parallelism = 128;
        let est = estimate(&demand, &pc_cluster());
        assert_eq!(est.nodes_used, 32);
    }

    #[test]
    fn single_node_fine_grain_pays_no_sync() {
        let demand = TaskDemand::fine("X", 100.0, 1.0);
        let ws = Resource::new("ws", ResourceKind::Workstation);
        let est = estimate(&demand, &ws);
        let coarse_est = estimate(&TaskDemand::coarse("X", 100.0, 1.0), &ws);
        assert!((est.duration_s - coarse_est.duration_s).abs() < 1e-9);
    }

    #[test]
    fn staging_time_scales_with_data_size() {
        let small = TaskDemand::coarse("X", 1.0, 10.0);
        let big = TaskDemand::coarse("X", 1.0, 10_000.0);
        let r = pc_cluster();
        assert!(estimate(&big, &r).duration_s > estimate(&small, &r).duration_s);
    }

    #[test]
    fn cost_scales_with_duration_and_nodes() {
        let demand = TaskDemand::coarse("X", 1000.0, 1.0);
        let cheap = pc_cluster().with_cost(0.1);
        let pricey = pc_cluster().with_cost(10.0);
        assert!(estimate(&demand, &pricey).cost > estimate(&demand, &cheap).cost);
    }

    #[test]
    fn estimates_are_finite_and_positive() {
        let demand = TaskDemand::fine("X", 123.0, 45.0);
        for r in [pc_cluster(), supercomputer()] {
            let e = estimate(&demand, &r);
            assert!(e.duration_s.is_finite() && e.duration_s > 0.0);
            assert!(e.cost.is_finite() && e.cost >= 0.0);
        }
    }
}
