//! Seeded generators for heterogeneous grid topologies: resources plus
//! the application containers running on them.

use crate::container::ApplicationContainer;
use crate::hardware::HardwareSpec;
use crate::resource::{Resource, ResourceKind};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A generated grid: resources and the containers hosted on them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridTopology {
    /// All resources, in id order.
    pub resources: Vec<Resource>,
    /// All application containers.
    pub containers: Vec<ApplicationContainer>,
}

impl GridTopology {
    /// Generate a heterogeneous grid.
    ///
    /// * `sites` — number of sites; each gets one resource and one
    ///   container;
    /// * `services` — the pool of end-user service names; each container
    ///   hosts a random non-empty subset (every service is guaranteed to
    ///   be hosted somewhere);
    /// * `seed` — RNG seed (same seed ⇒ same topology).
    ///
    /// Resource kinds, node counts, reliability, and costs are drawn from
    /// distributions that mirror the paper's §1 description: mostly
    /// commodity clusters, a few supercomputers, varying reliability.
    pub fn generate(sites: usize, services: &[String], seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut resources = Vec::with_capacity(sites);
        let mut containers = Vec::with_capacity(sites);
        let domains = ["ucf.edu", "purdue.edu", "anl.gov", "sdsc.edu"];

        for i in 0..sites {
            let kind = match rng.gen_range(0..10u8) {
                0..=5 => ResourceKind::PcCluster,
                6..=7 => ResourceKind::Workstation,
                _ => ResourceKind::Supercomputer,
            };
            let nodes = match kind {
                ResourceKind::PcCluster => rng.gen_range(8..=128),
                ResourceKind::Supercomputer => rng.gen_range(64..=512),
                _ => 1,
            };
            let mut hardware = match kind {
                ResourceKind::PcCluster => HardwareSpec::pc_cluster_node(),
                ResourceKind::Supercomputer => HardwareSpec::supercomputer_node(),
                _ => HardwareSpec::workstation(),
            };
            // Jitter the hardware so no two sites are identical.
            hardware.cpu_ghz *= rng.gen_range(0.8..1.2);
            hardware.bandwidth_mbps *= rng.gen_range(0.8..1.2);
            hardware.latency_us *= rng.gen_range(0.8..1.2);

            let domain = domains[rng.gen_range(0..domains.len())];
            let resource = Resource::new(format!("site-{i}"), kind)
                .with_nodes(nodes)
                .at(format!("loc-{i}"), domain)
                .with_hardware(hardware)
                .with_reliability(rng.gen_range(0.7..1.0))
                .with_cost(rng.gen_range(0.1..2.0));

            // Host a random non-empty subset of services.
            let mut hosted: Vec<String> = services
                .iter()
                .filter(|_| rng.gen_bool(0.5))
                .cloned()
                .collect();
            if hosted.is_empty() && !services.is_empty() {
                hosted.push(services[rng.gen_range(0..services.len())].clone());
            }
            let container = ApplicationContainer::new(format!("ac-{i}"), format!("site-{i}"))
                .hosting(hosted.clone());
            let mut resource = resource.with_software(hosted);
            resource.software.sort();
            resource.software.dedup();

            resources.push(resource);
            containers.push(container);
        }

        // Guarantee global coverage: every service hosted somewhere.
        if !resources.is_empty() {
            for service in services {
                let hosted_anywhere = containers.iter().any(|c| c.hosts(service));
                if !hosted_anywhere {
                    let idx = rng.gen_range(0..containers.len());
                    containers[idx].services.push(service.clone());
                    resources[idx].software.push(service.clone());
                }
            }
        }
        // Shuffle container order to avoid positional bias, then restore
        // deterministic id order.
        containers.shuffle(&mut rng);
        containers.sort_by(|a, b| a.id.cmp(&b.id));

        GridTopology {
            resources,
            containers,
        }
    }

    /// Look up a resource by id.
    pub fn resource(&self, id: &str) -> Option<&Resource> {
        self.resources.iter().find(|r| r.id == id)
    }

    /// Look up a container by id.
    pub fn container(&self, id: &str) -> Option<&ApplicationContainer> {
        self.containers.iter().find(|c| c.id == id)
    }

    /// Containers hosting the given service.
    pub fn containers_hosting<'a>(
        &'a self,
        service: &'a str,
    ) -> impl Iterator<Item = &'a ApplicationContainer> + 'a {
        self.containers.iter().filter(move |c| c.hosts(service))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn services() -> Vec<String> {
        ["POD", "P3DR", "POR", "PSF"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = GridTopology::generate(20, &services(), 11);
        let b = GridTopology::generate(20, &services(), 11);
        assert_eq!(a, b);
        let c = GridTopology::generate(20, &services(), 12);
        assert_ne!(a, c);
    }

    #[test]
    fn every_service_is_hosted_somewhere() {
        for seed in 0..20 {
            let topo = GridTopology::generate(5, &services(), seed);
            for s in services() {
                assert!(
                    topo.containers_hosting(&s).count() > 0,
                    "service {s} unhosted at seed {seed}"
                );
            }
        }
    }

    #[test]
    fn topology_is_heterogeneous() {
        let topo = GridTopology::generate(40, &services(), 3);
        let kinds: std::collections::BTreeSet<_> =
            topo.resources.iter().map(|r| r.kind.label()).collect();
        assert!(kinds.len() >= 2, "only kinds {kinds:?}");
        let classes: std::collections::BTreeSet<_> = topo
            .resources
            .iter()
            .map(|r| r.equivalence_class())
            .collect();
        assert!(classes.len() >= 3, "only classes {classes:?}");
    }

    #[test]
    fn containers_bind_to_their_resources() {
        let topo = GridTopology::generate(10, &services(), 5);
        for c in &topo.containers {
            assert!(topo.resource(&c.resource_id).is_some());
        }
        assert!(topo.container("ac-0").is_some());
        assert!(topo.container("ac-99").is_none());
    }

    #[test]
    fn empty_grid_is_fine() {
        let topo = GridTopology::generate(0, &services(), 1);
        assert!(topo.resources.is_empty());
        assert!(topo.containers.is_empty());
    }

    #[test]
    fn hosted_services_have_matching_software() {
        let topo = GridTopology::generate(15, &services(), 9);
        for c in &topo.containers {
            let r = topo.resource(&c.resource_id).unwrap();
            for s in &c.services {
                assert!(
                    r.has_software(s),
                    "container {} hosts {s} but resource lacks the package",
                    c.id
                );
            }
        }
    }
}
