//! The spot market: "resource acquisition on the spot markets, based
//! upon some form of resource brokerage, generally faces stiff
//! competitions … hot-spot contention cannot be discounted" (§1).
//!
//! Resources post [`Offer`]s; acquisition prices rise with current load
//! (contention), desirable (reliable) resources attract load first, and
//! advance reservations are either unsupported or carry a configurable
//! premium — the paper's "prohibitive cost for the advanced reservation".

use crate::error::{GridError, Result};
use crate::resource::Resource;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One resource's standing offer on the market.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Offer {
    /// The offered resource.
    pub resource: Resource,
    /// Currently acquired (busy) node count.
    pub load: u32,
}

impl Offer {
    /// Utilization in [0, 1].
    pub fn utilization(&self) -> f64 {
        self.load as f64 / self.resource.nodes.max(1) as f64
    }

    /// Spot price per CPU-hour: base cost scaled by contention
    /// (quadratic in utilization so hot spots price out sharply).
    pub fn spot_price(&self) -> f64 {
        let u = self.utilization();
        self.resource.cost_per_cpu_hour * (1.0 + 3.0 * u * u)
    }
}

/// Reservation policy of a market.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReservationPolicy {
    /// Reservations are not supported at all.
    Unsupported,
    /// Reservations cost `premium ×` the spot price.
    Premium(f64),
}

/// The spot market over a set of resources.
#[derive(Debug, Clone)]
pub struct SpotMarket {
    offers: BTreeMap<String, Offer>,
    /// Reservation policy (§1's two unfriendly options).
    pub reservation_policy: ReservationPolicy,
    trades: u64,
}

impl SpotMarket {
    /// A market over the given resources, initially idle, with
    /// reservations priced at 5× (the default "prohibitive" premium).
    pub fn new<I: IntoIterator<Item = Resource>>(resources: I) -> Self {
        SpotMarket {
            offers: resources
                .into_iter()
                .map(|r| {
                    (
                        r.id.clone(),
                        Offer {
                            resource: r,
                            load: 0,
                        },
                    )
                })
                .collect(),
            reservation_policy: ReservationPolicy::Premium(5.0),
            trades: 0,
        }
    }

    /// Number of completed acquisitions.
    pub fn trades(&self) -> u64 {
        self.trades
    }

    /// All current offers, in resource-id order.
    pub fn offers(&self) -> impl Iterator<Item = &Offer> {
        self.offers.values()
    }

    /// Look up one offer.
    pub fn offer(&self, resource_id: &str) -> Option<&Offer> {
        self.offers.get(resource_id)
    }

    /// Offers grouped into brokerage equivalence classes.
    pub fn equivalence_classes(&self) -> BTreeMap<String, Vec<&Offer>> {
        let mut out: BTreeMap<String, Vec<&Offer>> = BTreeMap::new();
        for offer in self.offers.values() {
            out.entry(offer.resource.equivalence_class())
                .or_default()
                .push(offer);
        }
        out
    }

    /// Acquire `nodes` nodes on the cheapest offer that satisfies
    /// `filter`, spending from `budget`.  Returns `(resource id, price)`.
    pub fn acquire(
        &mut self,
        nodes: u32,
        budget: f64,
        filter: impl Fn(&Offer) -> bool,
    ) -> Result<(String, f64)> {
        let candidate = self
            .offers
            .values()
            .filter(|o| o.resource.nodes - o.load >= nodes && filter(o))
            .min_by(|a, b| {
                a.spot_price()
                    .partial_cmp(&b.spot_price())
                    .expect("prices are finite")
            })
            .map(|o| o.resource.id.clone());
        let Some(id) = candidate else {
            return Err(GridError::NoMatchingOffer(format!("{nodes} nodes")));
        };
        let price = {
            let offer = &self.offers[&id];
            offer.spot_price() * nodes as f64
        };
        if price > budget {
            return Err(GridError::InsufficientBudget { price, budget });
        }
        let offer = self.offers.get_mut(&id).expect("candidate exists");
        offer.load += nodes;
        self.trades += 1;
        Ok((id, price))
    }

    /// Release `nodes` previously acquired on `resource_id`.
    pub fn release(&mut self, resource_id: &str, nodes: u32) -> Result<()> {
        let offer = self
            .offers
            .get_mut(resource_id)
            .ok_or_else(|| GridError::UnknownResource(resource_id.to_owned()))?;
        offer.load = offer.load.saturating_sub(nodes);
        Ok(())
    }

    /// Place an advance reservation: pay the quoted premium up front and
    /// hold `nodes` on `resource_id`.  Fails like
    /// [`Self::reservation_quote`] when unsupported, and when the budget
    /// or remaining capacity cannot cover it.
    pub fn reserve(&mut self, resource_id: &str, nodes: u32, budget: f64) -> Result<f64> {
        let price = self.reservation_quote(resource_id, nodes)?;
        if price > budget {
            return Err(GridError::InsufficientBudget { price, budget });
        }
        let offer = self
            .offers
            .get_mut(resource_id)
            .ok_or_else(|| GridError::UnknownResource(resource_id.to_owned()))?;
        if offer.resource.nodes - offer.load < nodes {
            return Err(GridError::NoMatchingOffer(format!(
                "{nodes} nodes on `{resource_id}`"
            )));
        }
        offer.load += nodes;
        self.trades += 1;
        Ok(price)
    }

    /// Price an advance reservation of `nodes` on `resource_id` (§1's
    /// prohibitive-cost scenario), without acquiring.
    pub fn reservation_quote(&self, resource_id: &str, nodes: u32) -> Result<f64> {
        let offer = self
            .offers
            .get(resource_id)
            .ok_or_else(|| GridError::UnknownResource(resource_id.to_owned()))?;
        match self.reservation_policy {
            ReservationPolicy::Unsupported => Err(GridError::ReservationsUnsupported),
            ReservationPolicy::Premium(premium) => Ok(offer.spot_price() * nodes as f64 * premium),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceKind;

    fn market() -> SpotMarket {
        SpotMarket::new([
            Resource::new("cheap", ResourceKind::PcCluster)
                .with_nodes(16)
                .with_cost(0.5),
            Resource::new("pricey", ResourceKind::PcCluster)
                .with_nodes(16)
                .with_cost(2.0),
            Resource::new("small", ResourceKind::Workstation)
                .with_nodes(1)
                .with_cost(0.1),
        ])
    }

    #[test]
    fn acquire_picks_cheapest_fitting_offer() {
        let mut m = market();
        let (id, price) = m.acquire(4, 100.0, |_| true).unwrap();
        assert_eq!(id, "cheap");
        assert!((price - 0.5 * 4.0).abs() < 1e-9);
        assert_eq!(m.offer("cheap").unwrap().load, 4);
        assert_eq!(m.trades(), 1);
    }

    #[test]
    fn contention_raises_prices() {
        let mut m = market();
        let p0 = m.offer("cheap").unwrap().spot_price();
        m.acquire(12, 100.0, |o| o.resource.id == "cheap").unwrap();
        let p1 = m.offer("cheap").unwrap().spot_price();
        assert!(p1 > p0, "{p1} <= {p0}");
    }

    #[test]
    fn hot_spot_diverts_to_other_resources() {
        let mut m = market();
        // Saturate the cheap cluster to 100%; next acquisition should go
        // to the pricey one (cheap can't fit, or costs more under load).
        m.acquire(16, 100.0, |o| o.resource.id == "cheap").unwrap();
        let (id, _) = m.acquire(4, 100.0, |_| true).unwrap();
        assert_eq!(id, "pricey");
    }

    #[test]
    fn no_fitting_offer_errors() {
        let mut m = market();
        assert!(matches!(
            m.acquire(64, 1000.0, |_| true),
            Err(GridError::NoMatchingOffer(_))
        ));
    }

    #[test]
    fn budget_is_enforced() {
        let mut m = market();
        assert!(matches!(
            m.acquire(8, 0.5, |_| true),
            Err(GridError::InsufficientBudget { .. })
        ));
        // Failed acquisition must not hold load.
        assert_eq!(m.offer("cheap").unwrap().load, 0);
    }

    #[test]
    fn release_restores_capacity() {
        let mut m = market();
        m.acquire(16, 100.0, |o| o.resource.id == "cheap").unwrap();
        m.release("cheap", 16).unwrap();
        assert_eq!(m.offer("cheap").unwrap().load, 0);
        assert!(m.release("ghost", 1).is_err());
    }

    #[test]
    fn reservation_policies() {
        let mut m = market();
        let spot = m.offer("cheap").unwrap().spot_price();
        let quote = m.reservation_quote("cheap", 2).unwrap();
        assert!((quote - spot * 2.0 * 5.0).abs() < 1e-9, "5x premium");
        m.reservation_policy = ReservationPolicy::Unsupported;
        assert!(matches!(
            m.reservation_quote("cheap", 2),
            Err(GridError::ReservationsUnsupported)
        ));
    }

    #[test]
    fn reservations_hold_capacity_at_a_premium() {
        let mut m = market();
        let spot = m.offer("cheap").unwrap().spot_price();
        let price = m.reserve("cheap", 4, 1000.0).unwrap();
        assert!((price - spot * 4.0 * 5.0).abs() < 1e-9);
        assert_eq!(m.offer("cheap").unwrap().load, 4);
        assert_eq!(m.trades(), 1);
        // Budget and capacity limits apply.
        assert!(matches!(
            m.reserve("cheap", 4, 0.01),
            Err(GridError::InsufficientBudget { .. })
        ));
        assert!(matches!(
            m.reserve("cheap", 100, 1e9),
            Err(GridError::NoMatchingOffer(_))
        ));
        m.reservation_policy = ReservationPolicy::Unsupported;
        assert!(matches!(
            m.reserve("cheap", 1, 1e9),
            Err(GridError::ReservationsUnsupported)
        ));
        // Failed reservations must not leak load.
        assert_eq!(m.offer("cheap").unwrap().load, 4);
    }

    #[test]
    fn equivalence_classes_partition_offers() {
        let m = market();
        let classes = m.equivalence_classes();
        let total: usize = classes.values().map(|v| v.len()).sum();
        assert_eq!(total, 3);
        assert!(classes.keys().any(|k| k.contains("PC Cluster")));
        assert!(classes.keys().any(|k| k.contains("Workstation")));
    }
}
