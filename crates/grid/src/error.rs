//! Error type for the grid simulator.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, GridError>;

/// Errors raised by grid operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// The referenced resource does not exist.
    UnknownResource(String),
    /// The referenced application container does not exist.
    UnknownContainer(String),
    /// The container is down and cannot execute.
    ContainerDown(String),
    /// The container does not host the requested service.
    ServiceNotHosted {
        /// Container id.
        container: String,
        /// Requested service.
        service: String,
    },
    /// No offer matched a market query.
    NoMatchingOffer(String),
    /// Reservations are not supported by this market (§1: "the system may
    /// either not support resource reservations…").
    ReservationsUnsupported,
    /// Insufficient budget for the requested acquisition.
    InsufficientBudget {
        /// Price asked.
        price: f64,
        /// Budget available.
        budget: f64,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownResource(r) => write!(f, "unknown resource `{r}`"),
            Self::UnknownContainer(c) => write!(f, "unknown application container `{c}`"),
            Self::ContainerDown(c) => write!(f, "application container `{c}` is down"),
            Self::ServiceNotHosted { container, service } => {
                write!(
                    f,
                    "container `{container}` does not host service `{service}`"
                )
            }
            Self::NoMatchingOffer(q) => write!(f, "no offer matches query: {q}"),
            Self::ReservationsUnsupported => {
                write!(f, "this market does not support advance reservations")
            }
            Self::InsufficientBudget { price, budget } => {
                write!(f, "price {price:.2} exceeds budget {budget:.2}")
            }
        }
    }
}

impl std::error::Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(GridError::ContainerDown("ac-1".into())
            .to_string()
            .contains("ac-1"));
        assert!(GridError::InsufficientBudget {
            price: 5.0,
            budget: 1.0
        }
        .to_string()
        .contains("5.00"));
    }
}
