//! Failure models: seeded stochastic failures and deterministic failure
//! scripts.
//!
//! "The ability to recover from errors caused by the failure of
//! individual nodes is a critical aspect for the execution of complex
//! tasks" (§1).  The re-planning benches drive the coordination stack
//! under both a Bernoulli per-execution failure model and scripted
//! failures at chosen points.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Seeded Bernoulli per-execution failure model, optionally modulated by
/// resource reliability.
#[derive(Debug, Clone)]
pub struct FailureModel {
    rng: ChaCha8Rng,
    /// Base probability that any single execution fails.
    pub base_failure_prob: f64,
    /// When false, no execution ever fails (reliability is not consulted
    /// either) — the state [`FailureModel::none`] constructs.
    pub enabled: bool,
    draws: u64,
}

impl FailureModel {
    /// A model with the given per-execution failure probability.
    pub fn new(seed: u64, base_failure_prob: f64) -> Self {
        FailureModel {
            rng: ChaCha8Rng::seed_from_u64(seed),
            base_failure_prob: base_failure_prob.clamp(0.0, 1.0),
            enabled: true,
            draws: 0,
        }
    }

    /// A disabled model: no execution ever fails, regardless of resource
    /// reliability.
    pub fn none() -> Self {
        let mut model = Self::new(0, 0.0);
        model.enabled = false;
        model
    }

    /// Draw one execution outcome on a resource with the given
    /// reliability: the effective failure probability is
    /// `1 − reliability·(1 − base)`.
    ///
    /// The draw counter and the generator advance even when the model
    /// is disabled, so toggling `enabled` mid-run never shifts the
    /// outcome stream of later draws — a disabled stretch consumes
    /// exactly the randomness it would have when enabled.
    pub fn execution_fails(&mut self, resource_reliability: f64) -> bool {
        self.draws += 1;
        let survive = resource_reliability.clamp(0.0, 1.0) * (1.0 - self.base_failure_prob);
        let fails = self.rng.gen_range(0.0..1.0) >= survive;
        self.enabled && fails
    }

    /// Number of outcomes drawn so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Burn `n` draws to reposition the generator.  Because every
    /// [`FailureModel::execution_fails`] call consumes exactly one draw
    /// regardless of its arguments, a model restored from a checkpoint
    /// only needs the original seed and the draw count to resume the
    /// outcome stream exactly where the crashed run left it.
    pub fn advance_draws(&mut self, n: u64) {
        for _ in 0..n {
            self.draws += 1;
            let _ = self.rng.gen_range(0.0..1.0);
        }
    }
}

/// A deterministic failure script: which container fails before which
/// (0-based) execution attempt.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailureScript {
    /// container id → set of attempt indices at which it is down.
    downs: BTreeMap<String, Vec<u64>>,
}

impl FailureScript {
    /// An empty script (nothing fails).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `container` to be down for attempt `attempt`.
    pub fn fail_at(mut self, container: impl Into<String>, attempt: u64) -> Self {
        self.downs
            .entry(container.into())
            .or_default()
            .push(attempt);
        self
    }

    /// Is `container` scripted to be down at `attempt`?
    pub fn is_down(&self, container: &str, attempt: u64) -> bool {
        self.downs
            .get(container)
            .map(|v| v.contains(&attempt))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_fails_on_reliable_resources() {
        let mut m = FailureModel::new(1, 0.0);
        assert!((0..1000).all(|_| !m.execution_fails(1.0)));
        // …but an *active* zero-base model still respects reliability.
        let mut m = FailureModel::new(1, 0.0);
        let failures = (0..2000).filter(|_| m.execution_fails(0.5)).count();
        assert!(failures > 500, "reliability must matter when enabled");
    }

    #[test]
    fn disabled_model_never_fails_even_on_flaky_resources() {
        let mut m = FailureModel::none();
        assert!((0..1000).all(|_| !m.execution_fails(0.01)));
        // Draws are counted even while disabled, keeping the stream
        // position consistent with an enabled model.
        assert_eq!(m.draws(), 1000);
    }

    #[test]
    fn disabled_stretch_does_not_shift_the_stream() {
        // Model A stays enabled; model B is disabled for the first 100
        // draws.  Once B re-enables, both must produce identical
        // outcomes draw-for-draw: the disabled stretch consumed the
        // same randomness.
        let mut a = FailureModel::new(21, 0.3);
        let mut b = FailureModel::new(21, 0.3);
        b.enabled = false;
        for _ in 0..100 {
            a.execution_fails(0.9);
            assert!(!b.execution_fails(0.9));
        }
        b.enabled = true;
        let oa: Vec<bool> = (0..500).map(|_| a.execution_fails(0.9)).collect();
        let ob: Vec<bool> = (0..500).map(|_| b.execution_fails(0.9)).collect();
        assert_eq!(oa, ob);
        assert_eq!(a.draws(), b.draws());
    }

    #[test]
    fn one_probability_always_fails() {
        let mut m = FailureModel::new(1, 1.0);
        assert!((0..100).all(|_| m.execution_fails(1.0)));
    }

    #[test]
    fn failure_rate_tracks_probability() {
        let mut m = FailureModel::new(7, 0.2);
        let failures = (0..10_000).filter(|_| m.execution_fails(1.0)).count();
        let rate = failures as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
        assert_eq!(m.draws(), 10_000);
    }

    #[test]
    fn unreliable_resources_fail_more() {
        let mut m1 = FailureModel::new(3, 0.1);
        let mut m2 = FailureModel::new(3, 0.1);
        let reliable = (0..5_000).filter(|_| m1.execution_fails(0.99)).count();
        let flaky = (0..5_000).filter(|_| m2.execution_fails(0.5)).count();
        assert!(flaky > reliable);
    }

    #[test]
    fn same_seed_same_outcomes() {
        let mut a = FailureModel::new(9, 0.3);
        let mut b = FailureModel::new(9, 0.3);
        let oa: Vec<bool> = (0..100).map(|_| a.execution_fails(0.9)).collect();
        let ob: Vec<bool> = (0..100).map(|_| b.execution_fails(0.9)).collect();
        assert_eq!(oa, ob);
    }

    #[test]
    fn advance_draws_repositions_the_outcome_stream() {
        let mut a = FailureModel::new(42, 0.3);
        let outcomes: Vec<bool> = (0..10).map(|_| a.execution_fails(0.9)).collect();
        let mut b = FailureModel::new(42, 0.3);
        b.advance_draws(4);
        assert_eq!(b.draws(), 4);
        let resumed: Vec<bool> = (0..6).map(|_| b.execution_fails(0.9)).collect();
        assert_eq!(resumed, outcomes[4..]);
    }

    #[test]
    fn script_hits_exact_attempts() {
        let s = FailureScript::new().fail_at("ac-1", 2).fail_at("ac-1", 4);
        assert!(!s.is_down("ac-1", 0));
        assert!(s.is_down("ac-1", 2));
        assert!(!s.is_down("ac-1", 3));
        assert!(s.is_down("ac-1", 4));
        assert!(!s.is_down("ac-2", 2));
    }
}
