//! Application containers: the execution hosts of end-user services
//! ("Applications Containers (ACs) host end-user services", Fig. 1).

use crate::error::{GridError, Result};
use crate::resource::Resource;
use crate::workload::{estimate, ExecutionEstimate, TaskDemand};
use serde::{Deserialize, Serialize};

/// One application container, bound to a resource, hosting a set of
/// end-user services.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationContainer {
    /// Unique container id (e.g. `ac-ucf-1`).
    pub id: String,
    /// Id of the resource the container runs on.
    pub resource_id: String,
    /// Service names this container can execute.
    pub services: Vec<String>,
    /// Is the container currently up?  End-user services "may be
    /// short-lived"; their reliability "cannot be guaranteed" (§2).
    pub up: bool,
    /// Completed executions (for monitoring / history).
    pub completed: u64,
    /// Failed executions.
    pub failed: u64,
}

impl ApplicationContainer {
    /// A new, healthy container.
    pub fn new(id: impl Into<String>, resource_id: impl Into<String>) -> Self {
        ApplicationContainer {
            id: id.into(),
            resource_id: resource_id.into(),
            services: Vec::new(),
            up: true,
            completed: 0,
            failed: 0,
        }
    }

    /// Host additional services (builder style).
    pub fn hosting<I, S>(mut self, services: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.services.extend(services.into_iter().map(Into::into));
        self
    }

    /// Does the container host this service?
    pub fn hosts(&self, service: &str) -> bool {
        self.services.iter().any(|s| s == service)
    }

    /// Can the container execute this service right now?
    pub fn can_execute(&self, service: &str) -> bool {
        self.up && self.hosts(service)
    }

    /// Take the container down (failure injection).
    pub fn fail(&mut self) {
        self.up = false;
    }

    /// Bring the container back up.
    pub fn recover(&mut self) {
        self.up = true;
    }

    /// Estimate (and account) one execution of `demand` on this container
    /// running on `resource`.  Fails when the container is down, does not
    /// host the service, or the resource id mismatches.
    pub fn execute(
        &mut self,
        demand: &TaskDemand,
        resource: &Resource,
    ) -> Result<ExecutionEstimate> {
        if resource.id != self.resource_id {
            return Err(GridError::UnknownResource(resource.id.clone()));
        }
        if !self.up {
            self.failed += 1;
            return Err(GridError::ContainerDown(self.id.clone()));
        }
        if !self.hosts(&demand.service) {
            return Err(GridError::ServiceNotHosted {
                container: self.id.clone(),
                service: demand.service.clone(),
            });
        }
        self.completed += 1;
        Ok(estimate(demand, resource))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceKind;

    fn setup() -> (ApplicationContainer, Resource) {
        let resource = Resource::new("r1", ResourceKind::PcCluster).with_nodes(8);
        let ac = ApplicationContainer::new("ac-1", "r1").hosting(["P3DR", "POD"]);
        (ac, resource)
    }

    #[test]
    fn hosts_and_can_execute() {
        let (ac, _) = setup();
        assert!(ac.hosts("P3DR"));
        assert!(!ac.hosts("PSF"));
        assert!(ac.can_execute("POD"));
    }

    #[test]
    fn execute_happy_path_counts_completion() {
        let (mut ac, r) = setup();
        let est = ac
            .execute(&TaskDemand::coarse("POD", 10.0, 1.0), &r)
            .unwrap();
        assert!(est.duration_s > 0.0);
        assert_eq!(ac.completed, 1);
        assert_eq!(ac.failed, 0);
    }

    #[test]
    fn down_container_refuses_and_counts_failure() {
        let (mut ac, r) = setup();
        ac.fail();
        assert!(!ac.can_execute("POD"));
        let err = ac
            .execute(&TaskDemand::coarse("POD", 10.0, 1.0), &r)
            .unwrap_err();
        assert!(matches!(err, GridError::ContainerDown(_)));
        assert_eq!(ac.failed, 1);
        ac.recover();
        assert!(ac.can_execute("POD"));
    }

    #[test]
    fn unhosted_service_rejected() {
        let (mut ac, r) = setup();
        let err = ac
            .execute(&TaskDemand::coarse("PSF", 10.0, 1.0), &r)
            .unwrap_err();
        assert!(matches!(err, GridError::ServiceNotHosted { .. }));
    }

    #[test]
    fn mismatched_resource_rejected() {
        let (mut ac, _) = setup();
        let other = Resource::new("r2", ResourceKind::Workstation);
        let err = ac
            .execute(&TaskDemand::coarse("POD", 10.0, 1.0), &other)
            .unwrap_err();
        assert!(matches!(err, GridError::UnknownResource(_)));
    }
}
