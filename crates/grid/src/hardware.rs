//! Hardware characteristics (the `Hardware` ontology class of Fig. 12:
//! Type, Speed, Size, Bandwidth, Latency, Manufacturer, Model).

use serde::{Deserialize, Serialize};

/// Hardware of one resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Per-core CPU speed in GHz (the figure's `Speed`).
    pub cpu_ghz: f64,
    /// Main memory per node in MBytes (the figure's `Size`).
    pub memory_mb: u64,
    /// Interconnect bandwidth in Mbit/s.
    pub bandwidth_mbps: f64,
    /// Interconnect latency in microseconds.
    pub latency_us: f64,
    /// Architecture label (the figure's `Type`).
    pub arch: String,
}

impl HardwareSpec {
    /// A 2004-era commodity PC-cluster node: decent CPU, commodity
    /// Ethernet — high latency, modest bandwidth.  The paper's §1 example
    /// of a *poor* choice for fine-grain parallelism.
    pub fn pc_cluster_node() -> Self {
        HardwareSpec {
            cpu_ghz: 2.4,
            memory_mb: 1024,
            bandwidth_mbps: 100.0,
            latency_us: 150.0,
            arch: "x86".into(),
        }
    }

    /// A supercomputer node: fast interconnect (low latency, high
    /// bandwidth), good for fine-grain parallel computations.
    pub fn supercomputer_node() -> Self {
        HardwareSpec {
            cpu_ghz: 1.9,
            memory_mb: 4096,
            bandwidth_mbps: 2000.0,
            latency_us: 5.0,
            arch: "power".into(),
        }
    }

    /// A desktop workstation.
    pub fn workstation() -> Self {
        HardwareSpec {
            cpu_ghz: 1.6,
            memory_mb: 512,
            bandwidth_mbps: 10.0,
            latency_us: 400.0,
            arch: "x86".into(),
        }
    }

    /// A crude single-number speed index used for coarse ranking:
    /// GHz weighted by a memory factor.
    pub fn speed_index(&self) -> f64 {
        self.cpu_ghz * (1.0 + (self.memory_mb as f64 / 4096.0).min(1.0))
    }

    /// Is the interconnect suitable for fine-grain parallelism?  The
    /// paper's rule of thumb: high latency + low bandwidth disqualifies.
    pub fn suits_fine_grain(&self) -> bool {
        self.latency_us <= 20.0 && self.bandwidth_mbps >= 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_heterogeneous() {
        let pc = HardwareSpec::pc_cluster_node();
        let sc = HardwareSpec::supercomputer_node();
        let ws = HardwareSpec::workstation();
        assert!(pc.cpu_ghz > sc.cpu_ghz, "commodity CPUs clock higher");
        assert!(sc.bandwidth_mbps > pc.bandwidth_mbps);
        assert!(sc.latency_us < pc.latency_us);
        assert!(ws.memory_mb < pc.memory_mb);
    }

    #[test]
    fn fine_grain_suitability_follows_the_papers_rule() {
        assert!(HardwareSpec::supercomputer_node().suits_fine_grain());
        assert!(!HardwareSpec::pc_cluster_node().suits_fine_grain());
        assert!(!HardwareSpec::workstation().suits_fine_grain());
    }

    #[test]
    fn speed_index_orders_sensibly() {
        let pc = HardwareSpec::pc_cluster_node();
        let ws = HardwareSpec::workstation();
        assert!(pc.speed_index() > ws.speed_index());
    }

    #[test]
    fn serde_round_trip() {
        let hw = HardwareSpec::pc_cluster_node();
        let json = serde_json::to_string(&hw).unwrap();
        let back: HardwareSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(hw, back);
    }
}
