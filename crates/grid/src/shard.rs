//! Deterministic shard partitioning of a grid topology.
//!
//! The sharded scheduler core splits the world's containers (and the
//! fleet's cases) into `shards` disjoint groups so each shard's prepare
//! phase can rank candidates against a local index.  The assignment is
//! a pure function of the topology's canonical container order — shard
//! `i` owns the containers at positions `p` with `p % shards == i` — so
//! every node, every run, and every `(shards, workers)` combination
//! derives the identical map without coordination.
//!
//! Round-robin by position (rather than contiguous ranges) keeps the
//! shards balanced under the generator's id-ordered container list:
//! neighbouring positions tend to host similar service subsets, so
//! striping spreads each service's candidate set across shards instead
//! of concentrating it in one.

use crate::topology::GridTopology;
use std::collections::BTreeMap;

/// The shard assignment for one topology: container id → shard.
///
/// Built once per `(topology, shards)` pair and immutable after; the
/// scheduler rebuilds it only when the shard count changes (never
/// mid-run).  Container up/down flips do *not* move assignments — a
/// down container stays owned by its shard and is simply filtered at
/// ranking time, exactly as the global matchmaker filters it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    by_container: BTreeMap<String, usize>,
    members: Vec<Vec<String>>,
}

impl ShardMap {
    /// Partition `topology`'s containers into `shards` groups by
    /// position stripe.  `shards` is clamped to at least 1; a shard
    /// count above the container count leaves the excess shards empty
    /// (legal — their prepare phase is a no-op).
    pub fn new(topology: &GridTopology, shards: usize) -> Self {
        let shards = shards.max(1);
        let mut by_container = BTreeMap::new();
        let mut members = vec![Vec::new(); shards];
        for (pos, container) in topology.containers.iter().enumerate() {
            let shard = pos % shards;
            by_container.insert(container.id.clone(), shard);
            members[shard].push(container.id.clone());
        }
        ShardMap {
            shards,
            by_container,
            members,
        }
    }

    /// The shard count this map was built for (≥ 1).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning container position `pos` — the assignment rule
    /// itself, usable without a map instance.
    pub fn shard_of_position(pos: usize, shards: usize) -> usize {
        pos % shards.max(1)
    }

    /// The shard owning the case at submission index `index`.  Cases
    /// stripe exactly like containers so both halves of the ownership
    /// map read the same way.
    pub fn shard_of_case(index: usize, shards: usize) -> usize {
        index % shards.max(1)
    }

    /// The shard owning `container`, or `None` if the id is not in the
    /// topology this map was built from.
    pub fn shard_of(&self, container: &str) -> Option<usize> {
        self.by_container.get(container).copied()
    }

    /// The container ids owned by `shard`, in topology position order.
    pub fn containers_in(&self, shard: usize) -> &[String] {
        self.members.get(shard).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total containers across all shards.
    pub fn len(&self) -> usize {
        self.by_container.len()
    }

    /// `true` when the topology had no containers.
    pub fn is_empty(&self) -> bool {
        self.by_container.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn services() -> Vec<String> {
        ["POD", "P3DR"].iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn striping_is_disjoint_and_exhaustive() {
        let topo = GridTopology::generate(10, &services(), 7);
        let map = ShardMap::new(&topo, 3);
        assert_eq!(map.shards(), 3);
        assert_eq!(map.len(), 10);
        let mut seen = std::collections::BTreeSet::new();
        for shard in 0..3 {
            for id in map.containers_in(shard) {
                assert!(seen.insert(id.clone()), "{id} owned twice");
                assert_eq!(map.shard_of(id), Some(shard));
            }
        }
        assert_eq!(seen.len(), 10);
        // Balanced to within one.
        let sizes: Vec<usize> = (0..3).map(|s| map.containers_in(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn assignment_follows_topology_position() {
        let topo = GridTopology::generate(8, &services(), 1);
        let map = ShardMap::new(&topo, 4);
        for (pos, c) in topo.containers.iter().enumerate() {
            assert_eq!(map.shard_of(&c.id), Some(pos % 4));
            assert_eq!(ShardMap::shard_of_position(pos, 4), pos % 4);
        }
        assert_eq!(map.shard_of("no-such-container"), None);
    }

    #[test]
    fn degenerate_shapes_are_legal() {
        let topo = GridTopology::generate(3, &services(), 2);
        // shards = 0 clamps to 1: everything in shard 0.
        let one = ShardMap::new(&topo, 0);
        assert_eq!(one.shards(), 1);
        assert_eq!(one.containers_in(0).len(), 3);
        // More shards than containers: the excess are empty.
        let many = ShardMap::new(&topo, 8);
        assert_eq!(many.shards(), 8);
        assert_eq!(
            (0..8).map(|s| many.containers_in(s).len()).sum::<usize>(),
            3
        );
        assert!(many.containers_in(5).is_empty());
        assert!(many.containers_in(99).is_empty());
        // Empty topology.
        let empty = ShardMap::new(&GridTopology::generate(0, &services(), 1), 2);
        assert!(empty.is_empty());
    }

    #[test]
    fn case_striping_mirrors_container_striping() {
        assert_eq!(ShardMap::shard_of_case(0, 4), 0);
        assert_eq!(ShardMap::shard_of_case(7, 4), 3);
        assert_eq!(ShardMap::shard_of_case(5, 0), 0, "clamped shard count");
    }
}
