//! Resources: the `Resource` ontology class of Fig. 12 (Name, Type,
//! Location, Number of Nodes, Administration Domain, Hardware, Software,
//! Access Set), extended with the reliability and cost attributes the
//! paper's brokerage discussion requires ("the heterogeneity makes some
//! of the resources (e.g. those with a proven record of reliability) more
//! desirable", §1).

use crate::hardware::HardwareSpec;
use serde::{Deserialize, Serialize};

/// Kind of resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// A commodity PC cluster.
    PcCluster,
    /// A tightly coupled parallel machine.
    Supercomputer,
    /// A single interactive workstation.
    Workstation,
    /// A storage site (persistent storage service substrate).
    Storage,
}

impl ResourceKind {
    /// Display label (the ontology `Type` slot value).
    pub fn label(&self) -> &'static str {
        match self {
            ResourceKind::PcCluster => "PC Cluster",
            ResourceKind::Supercomputer => "Supercomputer",
            ResourceKind::Workstation => "Workstation",
            ResourceKind::Storage => "Storage",
        }
    }
}

/// One grid resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    /// Unique identifier (e.g. `ucf-cluster-1`).
    pub id: String,
    /// Kind of resource.
    pub kind: ResourceKind,
    /// Geographic / site label.
    pub location: String,
    /// Administrative domain (autonomy: negotiations cross domains, §1).
    pub domain: String,
    /// Number of nodes.
    pub nodes: u32,
    /// Per-node hardware.
    pub hardware: HardwareSpec,
    /// Installed software packages (service prerequisites).
    pub software: Vec<String>,
    /// Probability that a task submitted here completes without the
    /// resource failing under it (0–1].
    pub reliability: f64,
    /// Base cost per CPU-hour on the spot market.
    pub cost_per_cpu_hour: f64,
}

impl Resource {
    /// Builder-entry: a resource with the given id/kind and preset
    /// hardware, one node, perfect reliability, unit cost.
    pub fn new(id: impl Into<String>, kind: ResourceKind) -> Self {
        let hardware = match kind {
            ResourceKind::PcCluster => HardwareSpec::pc_cluster_node(),
            ResourceKind::Supercomputer => HardwareSpec::supercomputer_node(),
            ResourceKind::Workstation | ResourceKind::Storage => HardwareSpec::workstation(),
        };
        Resource {
            id: id.into(),
            kind,
            location: "unknown".into(),
            domain: "default".into(),
            nodes: 1,
            hardware,
            software: Vec::new(),
            reliability: 1.0,
            cost_per_cpu_hour: 1.0,
        }
    }

    /// Set node count (builder style).
    pub fn with_nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes.max(1);
        self
    }

    /// Set location and domain (builder style).
    pub fn at(mut self, location: impl Into<String>, domain: impl Into<String>) -> Self {
        self.location = location.into();
        self.domain = domain.into();
        self
    }

    /// Set hardware (builder style).
    pub fn with_hardware(mut self, hardware: HardwareSpec) -> Self {
        self.hardware = hardware;
        self
    }

    /// Add installed software (builder style).
    pub fn with_software<I, S>(mut self, packages: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.software.extend(packages.into_iter().map(Into::into));
        self
    }

    /// Set reliability (builder style; clamped to (0, 1]).
    pub fn with_reliability(mut self, reliability: f64) -> Self {
        self.reliability = reliability.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Set base cost (builder style).
    pub fn with_cost(mut self, cost_per_cpu_hour: f64) -> Self {
        self.cost_per_cpu_hour = cost_per_cpu_hour.max(0.0);
        self
    }

    /// Aggregate compute capacity: nodes × per-node speed index.
    pub fn capacity(&self) -> f64 {
        self.nodes as f64 * self.hardware.speed_index()
    }

    /// The equivalence-class key used by brokers: "brokers must maintain
    /// full information about resources with similar characteristics and
    /// group them in multiple equivalence classes based upon different
    /// sets of properties" (§1).  The default class groups by (kind,
    /// fine-grain suitability, reliability band).
    pub fn equivalence_class(&self) -> String {
        let band = if self.reliability >= 0.99 {
            "high-rel"
        } else if self.reliability >= 0.9 {
            "mid-rel"
        } else {
            "low-rel"
        };
        let grain = if self.hardware.suits_fine_grain() {
            "fine-grain"
        } else {
            "coarse-grain"
        };
        format!("{}/{}/{}", self.kind.label(), grain, band)
    }

    /// Does the resource have this software package installed?
    pub fn has_software(&self, package: &str) -> bool {
        self.software.iter().any(|p| p == package)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let r = Resource::new("ucf-1", ResourceKind::PcCluster)
            .with_nodes(64)
            .at("Orlando", "ucf.edu")
            .with_software(["P3DR", "POD"])
            .with_reliability(0.95)
            .with_cost(0.4);
        assert_eq!(r.nodes, 64);
        assert_eq!(r.domain, "ucf.edu");
        assert!(r.has_software("P3DR"));
        assert!(!r.has_software("PSF"));
        assert_eq!(r.reliability, 0.95);
    }

    #[test]
    fn reliability_is_clamped() {
        assert_eq!(
            Resource::new("x", ResourceKind::Workstation)
                .with_reliability(7.0)
                .reliability,
            1.0
        );
        assert!(
            Resource::new("x", ResourceKind::Workstation)
                .with_reliability(-1.0)
                .reliability
                > 0.0
        );
    }

    #[test]
    fn node_count_is_at_least_one() {
        assert_eq!(
            Resource::new("x", ResourceKind::PcCluster)
                .with_nodes(0)
                .nodes,
            1
        );
    }

    #[test]
    fn capacity_scales_with_nodes() {
        let small = Resource::new("s", ResourceKind::PcCluster).with_nodes(4);
        let big = Resource::new("b", ResourceKind::PcCluster).with_nodes(64);
        assert!(big.capacity() > small.capacity());
    }

    #[test]
    fn equivalence_classes_group_by_kind_grain_reliability() {
        let a = Resource::new("a", ResourceKind::PcCluster).with_reliability(0.995);
        let b = Resource::new("b", ResourceKind::PcCluster).with_reliability(0.992);
        let c = Resource::new("c", ResourceKind::PcCluster).with_reliability(0.5);
        let d = Resource::new("d", ResourceKind::Supercomputer).with_reliability(0.995);
        assert_eq!(a.equivalence_class(), b.equivalence_class());
        assert_ne!(a.equivalence_class(), c.equivalence_class());
        assert_ne!(a.equivalence_class(), d.equivalence_class());
        assert!(d.equivalence_class().contains("fine-grain"));
    }

    #[test]
    fn kind_presets_pick_matching_hardware() {
        assert!(Resource::new("x", ResourceKind::Supercomputer)
            .hardware
            .suits_fine_grain());
        assert!(!Resource::new("x", ResourceKind::PcCluster)
            .hardware
            .suits_fine_grain());
    }
}
