//! # gridflow-grid
//!
//! A simulated computational grid — the substrate substituting for the
//! physical testbed of the paper (§1 motivates it: a "resource-rich …
//! highly heterogeneous" environment where "a PC cluster with a switch
//! with high latency and low bandwidth will be a poor choice" for fine-
//! grain parallel computations, nodes fail, and resources trade on spot
//! markets with hot-spot contention).
//!
//! The crate provides:
//!
//! * [`hardware`] — hardware characteristics (CPU speed, memory,
//!   interconnect bandwidth/latency) with heterogeneous presets;
//! * [`resource`] — resources (clusters, workstations, supercomputers,
//!   storage sites) with administrative domains, reliability, cost, and
//!   the *equivalence classes* brokers group them into;
//! * [`container`] — application containers hosting end-user services,
//!   with failure/recovery state;
//! * [`workload`] — the execution-cost model mapping a task's
//!   computational demand onto a resource (compute + communication +
//!   data-staging time);
//! * [`failure`] — seeded stochastic failure models and deterministic
//!   failure injection;
//! * [`transform`] — the migration transformations of §1 (compression,
//!   encryption, byte swapping) with their cost model;
//! * [`market`] — the spot market: offers, load-dependent pricing,
//!   advance reservations (optionally at prohibitive cost, as §1 warns);
//! * [`sim`] — a small discrete-event engine driving all of the above;
//! * [`topology`] — seeded generators for heterogeneous grid topologies;
//! * [`shard`] — deterministic shard partitioning of a topology's
//!   containers, the ownership map behind the engine's sharded core.

#![warn(missing_docs)]

pub mod container;
pub mod error;
pub mod failure;
pub mod hardware;
pub mod market;
pub mod resource;
pub mod shard;
pub mod sim;
pub mod topology;
pub mod transform;
pub mod workload;

pub use container::ApplicationContainer;
pub use error::{GridError, Result};
pub use failure::FailureModel;
pub use hardware::HardwareSpec;
pub use market::{Offer, SpotMarket};
pub use resource::{Resource, ResourceKind};
pub use shard::ShardMap;
pub use sim::{Event, SimEngine, SimTime};
pub use topology::GridTopology;
pub use transform::{Transform, TransformPlan};
pub use workload::{ExecutionEstimate, TaskDemand};
