//! A small discrete-event simulation engine.
//!
//! The paper lists *simulation services* among the core services:
//! "necessary to study the scalability of the system and … useful for
//! end-users to simulate an experiment before actually conducting it"
//! (§2).  [`SimEngine`] is the kernel those services are built on: a
//! virtual clock and a time-ordered event queue with deterministic
//! tie-breaking (FIFO within a timestamp).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time in microseconds.
pub type SimTime = u64;

/// A scheduled event of payload type `E`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event<E> {
    /// Firing time.
    pub time: SimTime,
    /// Monotonic sequence number (FIFO tie-break).
    pub seq: u64,
    /// Payload.
    pub payload: E,
}

/// Reverse ordering so the `BinaryHeap` pops the earliest event.
impl<E: Eq> Ord for Event<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: Eq> PartialOrd for Event<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The engine: a clock plus a pending-event queue.
#[derive(Debug)]
pub struct SimEngine<E: Eq> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Event<E>>,
    processed: u64,
}

impl<E: Eq> SimEngine<E> {
    /// A fresh engine at time 0.
    pub fn new() -> Self {
        SimEngine {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `payload` at absolute time `time`.  Scheduling in the past
    /// clamps to `now` (the event fires immediately next).
    pub fn schedule_at(&mut self, time: SimTime, payload: E) {
        let time = time.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { time, seq, payload });
    }

    /// Schedule `payload` after a delay.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        self.schedule_at(self.now.saturating_add(delay), payload);
    }

    /// Pop the next event, advancing the clock to its time.
    #[allow(clippy::should_implement_trait)] // queue pop, not an Iterator
    pub fn next(&mut self) -> Option<Event<E>> {
        let event = self.queue.pop()?;
        self.now = event.time;
        self.processed += 1;
        Some(event)
    }

    /// Run until the queue drains or `limit` events have been processed,
    /// calling `handler(time, payload, engine)` for each; the handler may
    /// schedule follow-up events.  Returns the number processed.
    pub fn run(&mut self, limit: u64, mut handler: impl FnMut(SimTime, E, &mut Self)) -> u64 {
        let mut n = 0;
        while n < limit {
            let Some(event) = self.next() else { break };
            handler(event.time, event.payload, self);
            n += 1;
        }
        n
    }
}

impl<E: Eq> Default for SimEngine<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut sim = SimEngine::new();
        sim.schedule_at(30, "c");
        sim.schedule_at(10, "a");
        sim.schedule_at(20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| sim.next().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim = SimEngine::new();
        sim.schedule_at(5, "first");
        sim.schedule_at(5, "second");
        sim.schedule_at(5, "third");
        let order: Vec<&str> = std::iter::from_fn(|| sim.next().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut sim = SimEngine::new();
        sim.schedule_at(100, ());
        sim.schedule_at(50, ());
        assert_eq!(sim.now(), 0);
        sim.next();
        assert_eq!(sim.now(), 50);
        sim.next();
        assert_eq!(sim.now(), 100);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut sim = SimEngine::new();
        sim.schedule_at(100, "late");
        sim.next();
        sim.schedule_at(10, "past");
        let e = sim.next().unwrap();
        assert_eq!(e.time, 100);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut sim = SimEngine::new();
        sim.schedule_at(40, "base");
        sim.next();
        sim.schedule_in(5, "after");
        assert_eq!(sim.next().unwrap().time, 45);
    }

    #[test]
    fn run_with_cascading_events() {
        // Each event schedules a follow-up until time 50.
        let mut sim = SimEngine::new();
        sim.schedule_at(10, 0u32);
        let processed = sim.run(1000, |time, gen, engine| {
            if time < 50 {
                engine.schedule_in(10, gen + 1);
            }
        });
        // Events at 10,20,30,40,50 = 5.
        assert_eq!(processed, 5);
        assert_eq!(sim.processed(), 5);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn run_respects_limit() {
        let mut sim = SimEngine::new();
        for t in 0..100 {
            sim.schedule_at(t, ());
        }
        assert_eq!(sim.run(10, |_, _, _| {}), 10);
        assert_eq!(sim.pending(), 90);
    }
}
