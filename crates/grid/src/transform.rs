//! Data transformations for task migration (§1): "Additional data
//! transformations may be necessary before and/or after migrating a
//! task.  Transformation such as data compression/decompression,
//! encryption/decryption and byte swapping are likely to be necessary."
//!
//! A [`TransformPlan`] is derived from the two endpoints of a migration:
//! byte swapping when architectures differ in endianness, compression
//! when the path is bandwidth-starved, encryption when the
//! administrative domain changes.  Each step has a throughput cost, so a
//! migration's total time is transfer + transformation.

use crate::hardware::HardwareSpec;
use crate::resource::Resource;
use serde::{Deserialize, Serialize};

/// One transformation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transform {
    /// Compress before the wire, decompress after (lossless, ratio ~2×).
    Compression,
    /// Encrypt before leaving the administrative domain, decrypt after.
    Encryption,
    /// Swap byte order between endianness-incompatible architectures.
    ByteSwap,
}

impl Transform {
    /// Throughput of the step in MB/s (2004-era single-core figures).
    pub fn throughput_mb_s(&self) -> f64 {
        match self {
            Transform::Compression => 40.0,
            Transform::Encryption => 25.0,
            Transform::ByteSwap => 400.0,
        }
    }

    /// Factor applied to the on-the-wire size (compression shrinks it).
    pub fn wire_size_factor(&self) -> f64 {
        match self {
            Transform::Compression => 0.5,
            _ => 1.0,
        }
    }

    /// Does the step run on both endpoints (encode + decode)?
    pub fn is_symmetric(&self) -> bool {
        matches!(self, Transform::Compression | Transform::Encryption)
    }
}

/// Endianness of an architecture label (the `arch` field of
/// [`HardwareSpec`]).  Unknown labels default to little-endian —
/// commodity hardware.
pub fn endianness(arch: &str) -> &'static str {
    match arch {
        "power" | "sparc" => "big",
        _ => "little",
    }
}

/// The ordered transformation steps a migration needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TransformPlan {
    /// Steps, applied source-side in order (and mirrored destination-side
    /// for symmetric steps).
    pub steps: Vec<Transform>,
}

impl TransformPlan {
    /// Derive the plan for moving `data_mb` from `source` to `dest`:
    ///
    /// * differing endianness ⇒ byte swap;
    /// * differing administrative domains ⇒ encryption;
    /// * a bottleneck link under 100 Mbit/s ⇒ compression (the CPU cost
    ///   pays for itself on slow wires).
    pub fn for_migration(source: &Resource, dest: &Resource) -> TransformPlan {
        let mut steps = Vec::new();
        let bottleneck = source
            .hardware
            .bandwidth_mbps
            .min(dest.hardware.bandwidth_mbps);
        if bottleneck < 100.0 {
            steps.push(Transform::Compression);
        }
        if source.domain != dest.domain {
            steps.push(Transform::Encryption);
        }
        if endianness(&source.hardware.arch) != endianness(&dest.hardware.arch) {
            steps.push(Transform::ByteSwap);
        }
        TransformPlan { steps }
    }

    /// Is any transformation needed?
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Seconds of CPU time the transformations take for `data_mb` MB
    /// (symmetric steps run twice: encode at the source, decode at the
    /// destination).
    pub fn transform_time_s(&self, data_mb: f64) -> f64 {
        self.steps
            .iter()
            .map(|s| {
                let passes = if s.is_symmetric() { 2.0 } else { 1.0 };
                passes * data_mb / s.throughput_mb_s()
            })
            .sum()
    }

    /// On-the-wire size after source-side transformations.
    pub fn wire_size_mb(&self, data_mb: f64) -> f64 {
        self.steps
            .iter()
            .fold(data_mb, |size, s| size * s.wire_size_factor())
    }

    /// Total migration time: transformations + transfer over the
    /// bottleneck link between the endpoints' interconnects.
    pub fn migration_time_s(
        &self,
        data_mb: f64,
        source: &HardwareSpec,
        dest: &HardwareSpec,
    ) -> f64 {
        let bottleneck_mbps = source.bandwidth_mbps.min(dest.bandwidth_mbps).max(1e-9);
        let transfer = self.wire_size_mb(data_mb) * 8.0 / bottleneck_mbps;
        self.transform_time_s(data_mb) + transfer
    }
}

/// Estimate a task migration between two resources: the derived plan and
/// its total time for `data_mb` of checkpoint/state data.
pub fn estimate_migration(
    source: &Resource,
    dest: &Resource,
    data_mb: f64,
) -> (TransformPlan, f64) {
    let plan = TransformPlan::for_migration(source, dest);
    let time = plan.migration_time_s(data_mb, &source.hardware, &dest.hardware);
    (plan, time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceKind;

    fn pc(domain: &str) -> Resource {
        Resource::new(format!("pc-{domain}"), ResourceKind::PcCluster).at("x", domain)
    }

    fn sc(domain: &str) -> Resource {
        Resource::new(format!("sc-{domain}"), ResourceKind::Supercomputer).at("y", domain)
    }

    fn ws(domain: &str) -> Resource {
        Resource::new(format!("ws-{domain}"), ResourceKind::Workstation).at("z", domain)
    }

    #[test]
    fn same_domain_same_arch_fast_link_needs_nothing() {
        let a = sc("anl.gov");
        let mut b = sc("anl.gov");
        b.id = "sc-2".into();
        let plan = TransformPlan::for_migration(&a, &b);
        assert!(plan.is_empty());
        assert_eq!(plan.transform_time_s(1000.0), 0.0);
    }

    #[test]
    fn cross_domain_adds_encryption() {
        let plan = TransformPlan::for_migration(&pc("ucf.edu"), &pc("purdue.edu"));
        assert!(plan.steps.contains(&Transform::Encryption));
        assert!(
            !plan.steps.contains(&Transform::ByteSwap),
            "same endianness"
        );
    }

    #[test]
    fn endianness_mismatch_adds_byte_swap() {
        // PC cluster is x86 (little); supercomputer preset is power (big).
        let plan = TransformPlan::for_migration(&pc("ucf.edu"), &sc("ucf.edu"));
        assert!(plan.steps.contains(&Transform::ByteSwap));
        assert_eq!(endianness("x86"), "little");
        assert_eq!(endianness("power"), "big");
        assert_eq!(endianness("mystery"), "little");
    }

    #[test]
    fn slow_links_add_compression() {
        // Workstation preset: 10 Mbit/s — well under the threshold.
        let plan = TransformPlan::for_migration(&ws("ucf.edu"), &pc("ucf.edu"));
        assert!(plan.steps.contains(&Transform::Compression));
        // Supercomputer-to-supercomputer: no compression.
        let fast = TransformPlan::for_migration(&sc("a"), &sc("a"));
        assert!(!fast.steps.contains(&Transform::Compression));
    }

    #[test]
    fn compression_halves_wire_size_and_costs_two_passes() {
        let plan = TransformPlan {
            steps: vec![Transform::Compression],
        };
        assert_eq!(plan.wire_size_mb(100.0), 50.0);
        let t = plan.transform_time_s(100.0);
        assert!((t - 2.0 * 100.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn byte_swap_is_one_pass_and_size_neutral() {
        let plan = TransformPlan {
            steps: vec![Transform::ByteSwap],
        };
        assert_eq!(plan.wire_size_mb(64.0), 64.0);
        assert!((plan.transform_time_s(64.0) - 64.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn compression_pays_off_on_slow_wires_only() {
        let data = 1000.0;
        let slow_src = ws("a");
        let slow_dst = ws("a");
        let with = TransformPlan {
            steps: vec![Transform::Compression],
        }
        .migration_time_s(data, &slow_src.hardware, &slow_dst.hardware);
        let without =
            TransformPlan::default().migration_time_s(data, &slow_src.hardware, &slow_dst.hardware);
        assert!(with < without, "compression must win on a 10 Mbit/s link");

        let fast_src = sc("a");
        let fast_dst = sc("a");
        let with = TransformPlan {
            steps: vec![Transform::Compression],
        }
        .migration_time_s(data, &fast_src.hardware, &fast_dst.hardware);
        let without =
            TransformPlan::default().migration_time_s(data, &fast_src.hardware, &fast_dst.hardware);
        assert!(with > without, "compression must lose on a 2 Gbit/s link");
    }

    #[test]
    fn estimate_migration_composes() {
        let (plan, time) = estimate_migration(&pc("ucf.edu"), &sc("anl.gov"), 500.0);
        // Cross-domain + endianness mismatch; PC link is 100 Mbit/s (not
        // under the threshold), so no compression.
        assert_eq!(plan.steps, vec![Transform::Encryption, Transform::ByteSwap]);
        assert!(time > 0.0);
    }
}
