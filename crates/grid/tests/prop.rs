//! Property-based tests for the grid substrate.

use gridflow_grid::failure::FailureModel;
use gridflow_grid::market::SpotMarket;
use gridflow_grid::resource::{Resource, ResourceKind};
use gridflow_grid::sim::SimEngine;
use gridflow_grid::transform::TransformPlan;
use gridflow_grid::workload::{estimate, TaskDemand};
use gridflow_grid::GridTopology;
use proptest::prelude::*;

fn resource_kind() -> impl Strategy<Value = ResourceKind> {
    prop_oneof![
        Just(ResourceKind::PcCluster),
        Just(ResourceKind::Supercomputer),
        Just(ResourceKind::Workstation),
    ]
}

fn resource() -> impl Strategy<Value = Resource> {
    (
        resource_kind(),
        1u32..256,
        0.1f64..1.0,
        0.01f64..5.0,
        "[a-z]{3,8}",
    )
        .prop_map(|(kind, nodes, reliability, cost, domain)| {
            Resource::new(format!("r-{domain}-{nodes}"), kind)
                .with_nodes(nodes)
                .at("loc", domain)
                .with_reliability(reliability)
                .with_cost(cost)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Execution estimates are finite, positive, and monotone in compute
    /// demand and data size.
    #[test]
    fn estimates_monotone(r in resource(), gflop in 1.0f64..10_000.0, mb in 0.1f64..10_000.0) {
        let base = TaskDemand::coarse("t", gflop, mb);
        let more_compute = TaskDemand::coarse("t", gflop * 2.0, mb);
        let more_data = TaskDemand::coarse("t", gflop, mb * 2.0);
        let e0 = estimate(&base, &r);
        prop_assert!(e0.duration_s.is_finite() && e0.duration_s > 0.0);
        prop_assert!(e0.cost >= 0.0);
        prop_assert!(estimate(&more_compute, &r).duration_s > e0.duration_s);
        prop_assert!(estimate(&more_data, &r).duration_s > e0.duration_s);
        // Fine-grain variant of the same work is never faster.
        let fine = TaskDemand::fine("t", gflop, mb);
        prop_assert!(estimate(&fine, &r).duration_s >= e0.duration_s - 1e-12);
    }

    /// More nodes never slow a task down (up to its parallelism cap).
    #[test]
    fn more_nodes_never_hurt(kind in resource_kind(), gflop in 1.0f64..1000.0) {
        let small = Resource::new("s", kind).with_nodes(4);
        let big = Resource::new("b", kind).with_nodes(64);
        let demand = TaskDemand::coarse("t", gflop, 1.0);
        prop_assert!(estimate(&demand, &big).duration_s <= estimate(&demand, &small).duration_s + 1e-12);
    }

    /// Market load conservation: every acquire is matched by its release,
    /// returning the market to zero load, with prices never below base.
    #[test]
    fn market_load_conserves(resources in prop::collection::vec(resource(), 1..8),
                             requests in prop::collection::vec(1u32..16, 0..12)) {
        // Ensure unique ids.
        let resources: Vec<Resource> = resources
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| { r.id = format!("r{i}"); r })
            .collect();
        let mut market = SpotMarket::new(resources.clone());
        let mut held: Vec<(String, u32)> = Vec::new();
        for nodes in requests {
            if let Ok((id, price)) = market.acquire(nodes, f64::INFINITY, |_| true) {
                let base = resources.iter().find(|r| r.id == id).unwrap().cost_per_cpu_hour;
                prop_assert!(price >= base * nodes as f64 - 1e-9, "price below base");
                held.push((id, nodes));
            }
        }
        for (id, nodes) in held {
            market.release(&id, nodes).unwrap();
        }
        for offer in market.offers() {
            prop_assert_eq!(offer.load, 0);
        }
    }

    /// The sim engine delivers events in nondecreasing time order and
    /// FIFO within a timestamp, for arbitrary schedules.
    #[test]
    fn sim_engine_ordering(times in prop::collection::vec(0u64..1000, 1..64)) {
        let mut sim = SimEngine::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(t, i);
        }
        let mut last_time = 0;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut current_time = u64::MAX;
        while let Some(e) = sim.next() {
            prop_assert!(e.time >= last_time);
            if e.time != current_time {
                current_time = e.time;
                seen_at_time.clear();
            }
            // FIFO within a timestamp: payload indices increase.
            if let Some(&prev) = seen_at_time.last() {
                prop_assert!(e.payload > prev, "FIFO violated at t={}", e.time);
            }
            seen_at_time.push(e.payload);
            last_time = e.time;
        }
    }

    /// Failure models are deterministic per seed and their empirical rate
    /// tracks the configured probability.
    #[test]
    fn failure_rate_statistics(seed in any::<u64>(), prob in 0.0f64..1.0) {
        let mut a = FailureModel::new(seed, prob);
        let mut b = FailureModel::new(seed, prob);
        let oa: Vec<bool> = (0..500).map(|_| a.execution_fails(1.0)).collect();
        let ob: Vec<bool> = (0..500).map(|_| b.execution_fails(1.0)).collect();
        prop_assert_eq!(&oa, &ob);
        let rate = oa.iter().filter(|&&f| f).count() as f64 / 500.0;
        prop_assert!((rate - prob).abs() < 0.1, "rate {rate} vs prob {prob}");
    }

    /// Topology generation is deterministic per seed and hosts every
    /// service somewhere.
    #[test]
    fn topology_invariants(sites in 1usize..20, seed in any::<u64>()) {
        let services: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let t1 = GridTopology::generate(sites, &services, seed);
        let t2 = GridTopology::generate(sites, &services, seed);
        prop_assert_eq!(&t1, &t2);
        prop_assert_eq!(t1.resources.len(), sites);
        for s in &services {
            prop_assert!(t1.containers_hosting(s).count() > 0, "{s} unhosted");
        }
        for c in &t1.containers {
            prop_assert!(t1.resource(&c.resource_id).is_some());
        }
    }

    /// Migration plans: transform time and wire size are nonnegative and
    /// compression never increases the wire size.
    #[test]
    fn migration_plan_sanity(a in resource(), b in resource(), mb in 0.1f64..10_000.0) {
        let plan = TransformPlan::for_migration(&a, &b);
        prop_assert!(plan.transform_time_s(mb) >= 0.0);
        prop_assert!(plan.wire_size_mb(mb) <= mb + 1e-9);
        let t = plan.migration_time_s(mb, &a.hardware, &b.hardware);
        prop_assert!(t.is_finite() && t > 0.0);
        // Same endpoints ⇒ at most an encryption-free, swap-free plan.
        let self_plan = TransformPlan::for_migration(&a, &a);
        prop_assert!(!self_plan.steps.contains(&gridflow_grid::Transform::Encryption));
        prop_assert!(!self_plan.steps.contains(&gridflow_grid::Transform::ByteSwap));
    }
}
