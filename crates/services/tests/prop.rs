//! Property-based tests for the service layer: scheduling bounds,
//! storage versioning, enactment accounting, and tracker validity.

use gridflow_grid::container::ApplicationContainer;
use gridflow_grid::resource::{Resource, ResourceKind};
use gridflow_grid::GridTopology;
use gridflow_process::{lower::lower, parser::parse_process, CaseDescription, DataItem};
use gridflow_services::coordination::{EnactmentConfig, Enactor};
use gridflow_services::scheduling::schedule;
use gridflow_services::storage::StorageService;
use gridflow_services::tracker::track_enactment;
use gridflow_services::world::{GridWorld, OutputSpec, ServiceOffering};
use proptest::prelude::*;
use serde_json::json;

/// A world with `n_resources` uniform hosts all hosting `services`.
fn uniform_world(n_resources: usize, services: &[String]) -> GridWorld {
    let resources: Vec<Resource> = (0..n_resources)
        .map(|i| {
            Resource::new(format!("r{i}"), ResourceKind::PcCluster)
                .with_nodes(8 + i as u32)
                .with_software(services.to_vec())
        })
        .collect();
    let containers: Vec<ApplicationContainer> = (0..n_resources)
        .map(|i| {
            ApplicationContainer::new(format!("ac{i}"), format!("r{i}")).hosting(services.to_vec())
        })
        .collect();
    let mut world = GridWorld::new(GridTopology {
        resources,
        containers,
    });
    for (i, s) in services.iter().enumerate() {
        world.offer(
            ServiceOffering::new(
                s.clone(),
                Vec::<String>::new(),
                vec![OutputSpec::plain("out")],
            )
            .with_demand(gridflow_grid::TaskDemand::coarse(
                s.clone(),
                50.0 * (i + 1) as f64,
                1.0,
            )),
        );
    }
    world
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Scheduling bounds: makespan is at least the longest single job's
    /// best duration and at most the serial sum; per-resource queues
    /// never overlap.
    #[test]
    fn scheduling_bounds(n_resources in 1usize..5, job_picks in prop::collection::vec(0usize..3, 1..12)) {
        let services: Vec<String> = vec!["s0".into(), "s1".into(), "s2".into()];
        let world = uniform_world(n_resources, &services);
        let jobs: Vec<String> = job_picks.iter().map(|&i| services[i].clone()).collect();
        let (sched, skipped) = schedule(&world, &jobs).unwrap();
        prop_assert!(skipped.is_empty());
        prop_assert_eq!(sched.placements.len(), jobs.len());
        let serial: f64 = sched.placements.iter().map(|p| p.duration_s).sum();
        let longest: f64 = sched
            .placements
            .iter()
            .map(|p| p.duration_s)
            .fold(0.0, f64::max);
        prop_assert!(sched.makespan_s <= serial + 1e-9);
        prop_assert!(sched.makespan_s >= longest - 1e-9);
        // No overlap per resource.
        let mut by_resource: std::collections::BTreeMap<&str, Vec<(f64, f64)>> =
            std::collections::BTreeMap::new();
        for p in &sched.placements {
            by_resource
                .entry(p.resource.as_str())
                .or_default()
                .push((p.start_s, p.start_s + p.duration_s));
        }
        for (_, mut spans) in by_resource {
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for pair in spans.windows(2) {
                prop_assert!(pair[0].1 <= pair[1].0 + 1e-9);
            }
        }
    }

    /// Storage versioning: N puts produce versions 1..=N, the latest get
    /// returns the last body, and every historical version stays intact.
    #[test]
    fn storage_versions_are_dense(bodies in prop::collection::vec(any::<i64>(), 1..20)) {
        let mut store = StorageService::new();
        for (i, body) in bodies.iter().enumerate() {
            let v = store.put("k", json!(body));
            prop_assert_eq!(v, i as u64 + 1);
        }
        prop_assert_eq!(store.version_count("k"), bodies.len() as u64);
        prop_assert_eq!(&store.get("k").unwrap().body, &json!(bodies.last().unwrap()));
        for (i, body) in bodies.iter().enumerate() {
            prop_assert_eq!(
                &store.get_version("k", i as u64 + 1).unwrap().body,
                &json!(body)
            );
        }
        // Snapshot/restore preserves the whole history.
        let snap = store.snapshot().unwrap();
        prop_assert_eq!(StorageService::restore(&snap).unwrap(), store);
    }

    /// Checkpoint/resume equivalence: resuming any checkpoint of a run on
    /// a fresh world reproduces the uninterrupted run's final state and
    /// total execution count.
    #[test]
    fn any_checkpoint_resumes_to_the_same_outcome(picks in prop::collection::vec(0usize..3, 2..8)) {
        let services: Vec<String> = vec!["s0".into(), "s1".into(), "s2".into()];
        let body: String = picks.iter().map(|&i| format!("s{i}; ")).collect();
        let graph = lower("chain", &parse_process(&format!("BEGIN {body} END")).unwrap()).unwrap();
        let case = CaseDescription::new("prop").with_data("D1", DataItem::classified("seed"));
        let config = EnactmentConfig {
            checkpoint_every: Some(1),
            ..EnactmentConfig::default()
        };
        let mut world = uniform_world(3, &services);
        let full = Enactor::builder().config(config.clone()).build().enact(&mut world, &graph, &case);
        prop_assert!(full.success);
        prop_assert_eq!(full.checkpoints.len(), picks.len());
        for checkpoint in &full.checkpoints {
            let mut fresh = uniform_world(3, &services);
            let resumed =
                Enactor::builder().config(config.clone()).build().resume(&mut fresh, checkpoint.clone(), &case);
            prop_assert!(resumed.success, "abort: {:?}", resumed.abort_reason);
            prop_assert_eq!(&resumed.final_state, &full.final_state);
            prop_assert_eq!(resumed.executions.len(), full.executions.len());
        }
    }

    /// Enactment accounting: for any sequential chain over a permissive
    /// world, the report's totals equal the world's history, every
    /// execution succeeds, and the tracker produces a valid ontology.
    #[test]
    fn enactment_accounting_and_tracking(picks in prop::collection::vec(0usize..3, 1..10)) {
        let services: Vec<String> = vec!["s0".into(), "s1".into(), "s2".into()];
        let mut world = uniform_world(3, &services);
        let body: String = picks.iter().map(|&i| format!("s{i}; ")).collect();
        let graph = lower("chain", &parse_process(&format!("BEGIN {body} END")).unwrap()).unwrap();
        let case = CaseDescription::new("prop").with_data("D1", DataItem::classified("seed"));
        let report = Enactor::default().enact(&mut world, &graph, &case);
        prop_assert!(report.success);
        prop_assert_eq!(report.executions.len(), picks.len());
        let world_total: f64 = world.history.iter().map(|r| r.duration_s).sum();
        prop_assert!((world_total - report.total_duration_s).abs() < 1e-6);
        prop_assert!(world.history.iter().all(|r| r.success));

        let kb = track_enactment("T1", &graph, &case, &report, "coordination-1").unwrap();
        prop_assert!(kb.validate_all().is_empty());
        prop_assert!(kb.dangling_refs().is_empty());
        // The task completed and references everything it should.
        let task = kb.instance("T1").unwrap();
        prop_assert_eq!(task.get_str("Status"), Some("Completed"));
    }
}
