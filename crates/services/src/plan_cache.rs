//! Fleet-shared, content-addressed plan cache with single-flight
//! coalescing.
//!
//! GP planning is a pure function of `(GpConfig, PlanningProblem)` (see
//! `gridflow_planner::key`), so once any case in a fleet has planned a
//! given [`PlanKey`], every other same-key request — 511 identical-goal
//! siblings, or a storm of concurrent replans after a node loss — can
//! reuse the byte-identical result instead of re-running the search.
//!
//! Two mechanisms cooperate:
//!
//! * a [`PlanCache`] store (in-proc reference impl:
//!   [`InProcPlanCache`]) holding completed plans by content address;
//! * a **single-flight latch** on [`PlanCacheHandle`], reusing the
//!   `WakeCoordinator` bounded-latch pattern: the first caller to miss
//!   on a key becomes the *leader* and runs GP outside the lock; later
//!   same-key callers subscribe to a `bounded(1)` broadcast channel and
//!   block until the leader publishes, so N concurrent cold requests
//!   run GP exactly once.
//!
//! The handle itself is cheap to clone and is shared fleet-wide: every
//! `CaseFiber` holding a clone sees every other case's plans.

use crate::error::ServiceError;
use crate::planning::PlanResponse;
use crossbeam_channel::{bounded, Sender};
use gridflow_planner::PlanKey;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Storage backend for completed plans, keyed by content address.
///
/// Implementations must be safe to share across threads; the reference
/// in-proc impl is a mutexed map, but the same trait admits an external
/// store (disk, network) without touching the planning layer.
pub trait PlanCache: Send + Sync {
    /// Fetch the cached plan for `key`, if present.
    fn get(&self, key: &PlanKey) -> Option<Arc<PlanResponse>>;
    /// Publish a completed plan under `key`.
    fn insert(&self, key: PlanKey, response: Arc<PlanResponse>);
    /// Number of cached plans.
    fn len(&self) -> usize;
    /// Is the cache empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The in-process reference [`PlanCache`]: a mutexed ordered map.
#[derive(Debug, Default)]
pub struct InProcPlanCache {
    entries: Mutex<BTreeMap<PlanKey, Arc<PlanResponse>>>,
}

impl PlanCache for InProcPlanCache {
    fn get(&self, key: &PlanKey) -> Option<Arc<PlanResponse>> {
        self.entries.lock().get(key).cloned()
    }

    fn insert(&self, key: PlanKey, response: Arc<PlanResponse>) {
        self.entries.lock().insert(key, response);
    }

    fn len(&self) -> usize {
        self.entries.lock().len()
    }
}

/// How one [`PlanCacheHandle::fetch_or_plan`] call resolved.
#[derive(Debug, Clone)]
pub enum PlanFetchOutcome {
    /// Served straight from the store; no GP run.
    Hit(Arc<PlanResponse>),
    /// This caller ran GP (cache miss, or a coalesce timeout forced an
    /// independent run); a success is now in the store.
    Ran(Result<Arc<PlanResponse>, ServiceError>),
    /// Another caller's in-flight same-key run was awaited and its
    /// result reused.
    Coalesced(Result<Arc<PlanResponse>, ServiceError>),
}

/// Monotonic counters kept by a [`PlanCacheHandle`] (cheap to read,
/// maintained without tracing — the bench reads these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Requests served from the store.
    pub hits: u64,
    /// Requests that ran GP.
    pub misses: u64,
    /// Requests that coalesced onto an in-flight run.
    pub coalesced: u64,
}

impl PlanCacheStats {
    /// Hit rate over all resolved requests (hits + coalesced count as
    /// avoided runs); 0 when nothing has been requested.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            return 0.0;
        }
        (self.hits + self.coalesced) as f64 / total as f64
    }
}

#[derive(Default)]
struct Flight {
    waiters: Vec<Sender<Result<Arc<PlanResponse>, ServiceError>>>,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

/// A cloneable, fleet-shared handle bundling a [`PlanCache`] store with
/// the single-flight latch.  Clones share everything; handle identity
/// (for `PartialEq`, mirroring `StoreBinding`) is the latch allocation.
#[derive(Clone)]
pub struct PlanCacheHandle {
    store: Arc<dyn PlanCache>,
    flights: Arc<Mutex<BTreeMap<PlanKey, Flight>>>,
    counters: Arc<Counters>,
    wait: Duration,
}

impl fmt::Debug for PlanCacheHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanCacheHandle")
            .field("len", &self.store.len())
            .field("wait", &self.wait)
            .finish_non_exhaustive()
    }
}

impl PartialEq for PlanCacheHandle {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flights, &other.flights)
    }
}

impl Default for PlanCacheHandle {
    fn default() -> Self {
        Self::in_proc()
    }
}

impl PlanCacheHandle {
    /// Default patience for a coalescing caller awaiting an in-flight
    /// run before giving up and planning independently.
    pub const DEFAULT_WAIT: Duration = Duration::from_secs(30);

    /// A handle over the given store.
    pub fn new(store: Arc<dyn PlanCache>) -> Self {
        PlanCacheHandle {
            store,
            flights: Arc::new(Mutex::new(BTreeMap::new())),
            counters: Arc::new(Counters::default()),
            wait: Self::DEFAULT_WAIT,
        }
    }

    /// A handle over a fresh [`InProcPlanCache`].
    pub fn in_proc() -> Self {
        Self::new(Arc::new(InProcPlanCache::default()))
    }

    /// Override the coalescing wait (tests shorten it).
    pub fn with_wait(mut self, wait: Duration) -> Self {
        self.wait = wait;
        self
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.store.len() == 0
    }

    /// Current counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
        }
    }

    /// How many callers are currently parked on the in-flight run for
    /// `key` (0 when no flight is open) — observability for coalescing
    /// proofs.
    pub fn inflight_waiters(&self, key: &PlanKey) -> usize {
        self.flights
            .lock()
            .get(key)
            .map(|f| f.waiters.len())
            .unwrap_or(0)
    }

    /// Total callers currently parked across every open flight —
    /// lets race harnesses synchronize on "all followers are waiting"
    /// without knowing the key under contention.
    pub fn parked_waiters(&self) -> usize {
        self.flights.lock().values().map(|f| f.waiters.len()).sum()
    }

    /// Resolve `key`: store hit, coalesce onto an in-flight same-key
    /// run, or lead a fresh run of `run` (executed outside every lock so
    /// concurrent callers can subscribe).  Successful runs are published
    /// to the store and broadcast to every waiter.
    pub fn fetch_or_plan(
        &self,
        key: PlanKey,
        run: impl FnOnce() -> Result<Arc<PlanResponse>, ServiceError>,
    ) -> PlanFetchOutcome {
        let waiter = {
            let mut flights = self.flights.lock();
            // The store check lives under the flights lock so it is
            // atomic with the leader's publish-then-close-flight section
            // below: a request either sees the published plan, finds the
            // open flight, or becomes the leader — never none of those.
            if let Some(response) = self.store.get(&key) {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                return PlanFetchOutcome::Hit(response);
            }
            match flights.get_mut(&key) {
                Some(flight) => {
                    let (tx, rx) = bounded(1);
                    flight.waiters.push(tx);
                    Some(rx)
                }
                None => {
                    flights.insert(key, Flight::default());
                    None
                }
            }
        };

        if let Some(rx) = waiter {
            return match rx.recv_timeout(self.wait) {
                Ok(result) => {
                    self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                    PlanFetchOutcome::Coalesced(result)
                }
                Err(_) => {
                    // The in-flight run never reported back in time;
                    // plan independently rather than deadlock.
                    self.counters.misses.fetch_add(1, Ordering::Relaxed);
                    let result = run();
                    if let Ok(response) = &result {
                        self.store.insert(key, response.clone());
                    }
                    PlanFetchOutcome::Ran(result)
                }
            };
        }

        // This caller leads the flight; run GP outside the lock.
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let result = run();
        let waiters = {
            let mut flights = self.flights.lock();
            if let Ok(response) = &result {
                self.store.insert(key, response.clone());
            }
            flights.remove(&key).map(|f| f.waiters).unwrap_or_default()
        };
        for tx in waiters {
            let _ = tx.send(result.clone());
        }
        PlanFetchOutcome::Ran(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridflow_plan::PlanNode;
    use gridflow_planner::prelude::*;
    use gridflow_process::ProcessGraph;

    fn key(n: u64) -> PlanKey {
        let cfg = GpConfig {
            seed: n,
            ..GpConfig::default()
        };
        let problem = PlanningProblem::builder().initial(["Raw"]).build();
        PlanKey::compute(&cfg, &problem, &[])
    }

    fn response() -> Arc<PlanResponse> {
        Arc::new(PlanResponse {
            tree: PlanNode::Sequential(vec![]),
            graph: ProcessGraph::new("plan"),
            fitness: Fitness {
                validity: 0.0,
                goal: 0.0,
                representation: 1.0,
                overall: 0.3,
                size: 1,
            },
            viable: false,
            history: vec![],
        })
    }

    #[test]
    fn store_round_trips_and_counts() {
        let cache = InProcPlanCache::default();
        assert!(cache.is_empty());
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), response());
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
    }

    #[test]
    fn fetch_runs_once_then_hits() {
        let handle = PlanCacheHandle::in_proc();
        let first = handle.fetch_or_plan(key(1), || Ok(response()));
        assert!(matches!(first, PlanFetchOutcome::Ran(Ok(_))));
        let second = handle.fetch_or_plan(key(1), || panic!("must not run again"));
        assert!(matches!(second, PlanFetchOutcome::Hit(_)));
        let stats = handle.stats();
        assert_eq!((stats.misses, stats.hits, stats.coalesced), (1, 1, 0));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn failed_runs_are_not_cached() {
        let handle = PlanCacheHandle::in_proc();
        let first = handle.fetch_or_plan(key(1), || Err(ServiceError::NoViablePlan("boom".into())));
        assert!(matches!(first, PlanFetchOutcome::Ran(Err(_))));
        assert!(handle.is_empty());
        // The key is retryable: the next caller leads a fresh flight.
        let second = handle.fetch_or_plan(key(1), || Ok(response()));
        assert!(matches!(second, PlanFetchOutcome::Ran(Ok(_))));
        assert_eq!(handle.len(), 1);
    }

    #[test]
    fn concurrent_same_key_requests_coalesce_into_one_run() {
        let handle = PlanCacheHandle::in_proc();
        let k = key(7);
        let followers = 8;
        // The leader blocks inside its run until released, giving the
        // followers a deterministic window to subscribe.
        let (entered_tx, entered_rx) = bounded::<()>(0);
        let (release_tx, release_rx) = bounded::<()>(0);
        let runs = Arc::new(AtomicU64::new(0));

        std::thread::scope(|scope| {
            let leader = {
                let handle = handle.clone();
                let runs = Arc::clone(&runs);
                scope.spawn(move || {
                    handle.fetch_or_plan(k, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        entered_tx.send(()).unwrap();
                        release_rx.recv().unwrap();
                        Ok(response())
                    })
                })
            };
            entered_rx.recv().unwrap();

            let follower_handles: Vec<_> = (0..followers)
                .map(|_| {
                    let handle = handle.clone();
                    let runs = Arc::clone(&runs);
                    scope.spawn(move || {
                        handle.fetch_or_plan(k, || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            Ok(response())
                        })
                    })
                })
                .collect();
            // Wait until every follower is parked on the flight, then
            // let the leader finish.
            while handle.inflight_waiters(&k) < followers {
                std::thread::yield_now();
            }
            release_tx.send(()).unwrap();

            assert!(matches!(
                leader.join().unwrap(),
                PlanFetchOutcome::Ran(Ok(_))
            ));
            for f in follower_handles {
                assert!(matches!(
                    f.join().unwrap(),
                    PlanFetchOutcome::Coalesced(Ok(_))
                ));
            }
        });

        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one GP run");
        let stats = handle.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.coalesced, followers as u64);
    }

    #[test]
    fn handle_equality_is_latch_identity() {
        let a = PlanCacheHandle::in_proc();
        let b = a.clone();
        let c = PlanCacheHandle::in_proc();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(format!("{a:?}").contains("PlanCacheHandle"));
    }
}
