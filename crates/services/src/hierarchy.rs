//! Hierarchical organization of core services: "Core services may be
//! organized hierarchically, in a manner similar to the DNS (Domain Name
//! Services) in the Internet" (§2).
//!
//! [`InformationHierarchy`] arranges information-service registries in a
//! domain tree (e.g. `grid` → `grid.ucf` → `grid.ucf.biology`).  Lookups
//! resolve locally first and then walk up toward the root (the DNS
//! referral pattern inverted into parent delegation); type searches can
//! be *scoped* (this zone and everything beneath it) so a campus-level
//! matchmaker only sees campus services while the root sees everything.

use crate::error::{Result, ServiceError};
use crate::information::{InformationService, Registration};
use std::collections::BTreeMap;

/// A tree of information-service zones, keyed by dotted zone names.
#[derive(Debug, Clone, Default)]
pub struct InformationHierarchy {
    zones: BTreeMap<String, InformationService>,
}

impl InformationHierarchy {
    /// An empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a zone.  The parent zone (everything before the last `.`)
    /// must already exist, except for root zones (no dot).
    pub fn add_zone(&mut self, zone: impl Into<String>) -> Result<()> {
        let zone = zone.into();
        if self.zones.contains_key(&zone) {
            return Err(ServiceError::BadRequest(format!(
                "zone `{zone}` already exists"
            )));
        }
        if let Some(parent) = parent_zone(&zone) {
            if !self.zones.contains_key(parent) {
                return Err(ServiceError::BadRequest(format!(
                    "parent zone `{parent}` of `{zone}` does not exist"
                )));
            }
        }
        self.zones.insert(zone, InformationService::new());
        Ok(())
    }

    /// Register a service in a zone.
    pub fn register(&mut self, zone: &str, registration: Registration) -> Result<()> {
        self.zones
            .get_mut(zone)
            .ok_or_else(|| ServiceError::NotFound(format!("zone `{zone}`")))?
            .register(registration)
    }

    /// Resolve a name starting at `zone` and walking up to the root — the
    /// DNS-style lookup: local knowledge first, then increasingly global.
    /// Returns the registration and the zone that answered.
    pub fn lookup(&self, zone: &str, name: &str) -> Result<(Registration, String)> {
        let mut current = Some(zone);
        while let Some(z) = current {
            let service = self
                .zones
                .get(z)
                .ok_or_else(|| ServiceError::NotFound(format!("zone `{z}`")))?;
            if let Some(reg) = service.lookup(name) {
                return Ok((reg, z.to_owned()));
            }
            current = parent_zone(z);
        }
        Err(ServiceError::NotFound(format!(
            "`{name}` (searched from zone `{zone}` to the root)"
        )))
    }

    /// All registrations of `service_type` in `zone` and every zone
    /// beneath it (scoped search).
    pub fn find_by_type_scoped(
        &self,
        zone: &str,
        service_type: &str,
    ) -> Vec<(Registration, String)> {
        let prefix = format!("{zone}.");
        self.zones
            .iter()
            .filter(|(z, _)| z.as_str() == zone || z.starts_with(&prefix))
            .flat_map(|(z, svc)| {
                svc.find_by_type(service_type)
                    .into_iter()
                    .map(move |r| (r, z.clone()))
            })
            .collect()
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Total registrations across all zones.
    pub fn total_registrations(&self) -> usize {
        self.zones.values().map(InformationService::len).sum()
    }
}

fn parent_zone(zone: &str) -> Option<&str> {
    zone.rsplit_once('.').map(|(parent, _)| parent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(name: &str, service_type: &str) -> Registration {
        Registration {
            name: name.into(),
            service_type: service_type.into(),
            location: name.into(),
            description: String::new(),
        }
    }

    fn hierarchy() -> InformationHierarchy {
        let mut h = InformationHierarchy::new();
        h.add_zone("grid").unwrap();
        h.add_zone("grid.ucf").unwrap();
        h.add_zone("grid.ucf.biology").unwrap();
        h.add_zone("grid.purdue").unwrap();
        h.register("grid", reg("root-broker", "brokerage")).unwrap();
        h.register("grid.ucf", reg("ucf-broker", "brokerage"))
            .unwrap();
        h.register("grid.ucf.biology", reg("p3dr-svc", "end-user"))
            .unwrap();
        h.register("grid.purdue", reg("purdue-broker", "brokerage"))
            .unwrap();
        h
    }

    #[test]
    fn zones_require_existing_parents() {
        let mut h = InformationHierarchy::new();
        assert!(h.add_zone("grid.ucf").is_err(), "no root yet");
        h.add_zone("grid").unwrap();
        h.add_zone("grid.ucf").unwrap();
        assert!(h.add_zone("grid.ucf").is_err(), "duplicate");
        assert_eq!(h.zone_count(), 2);
    }

    #[test]
    fn lookup_walks_toward_the_root() {
        let h = hierarchy();
        // Local hit.
        let (r, zone) = h.lookup("grid.ucf.biology", "p3dr-svc").unwrap();
        assert_eq!(r.name, "p3dr-svc");
        assert_eq!(zone, "grid.ucf.biology");
        // One level up.
        let (r, zone) = h.lookup("grid.ucf.biology", "ucf-broker").unwrap();
        assert_eq!(r.name, "ucf-broker");
        assert_eq!(zone, "grid.ucf");
        // All the way to the root.
        let (_, zone) = h.lookup("grid.ucf.biology", "root-broker").unwrap();
        assert_eq!(zone, "grid");
        // Sibling zones are NOT searched.
        assert!(h.lookup("grid.ucf.biology", "purdue-broker").is_err());
    }

    #[test]
    fn scoped_type_search_covers_the_subtree_only() {
        let h = hierarchy();
        let from_root = h.find_by_type_scoped("grid", "brokerage");
        assert_eq!(from_root.len(), 3);
        let from_ucf = h.find_by_type_scoped("grid.ucf", "brokerage");
        assert_eq!(from_ucf.len(), 1);
        assert_eq!(from_ucf[0].0.name, "ucf-broker");
        // Zone-name prefixing must not leak `grid.ucfX` into `grid.ucf`.
        let mut h2 = hierarchy();
        h2.add_zone("grid.ucfsibling").unwrap();
        h2.register("grid.ucfsibling", reg("decoy", "brokerage"))
            .unwrap();
        assert_eq!(h2.find_by_type_scoped("grid.ucf", "brokerage").len(), 1);
    }

    #[test]
    fn totals_aggregate() {
        let h = hierarchy();
        assert_eq!(h.zone_count(), 4);
        assert_eq!(h.total_registrations(), 4);
    }

    #[test]
    fn unknown_zone_errors() {
        let h = hierarchy();
        assert!(h.lookup("grid.mit", "x").is_err());
        let mut h = hierarchy();
        assert!(h.register("grid.mit", reg("x", "t")).is_err());
    }
}
