//! The information service: "all end-user services and other core
//! services register their offerings with the information services" (§2).
//!
//! Registrations are kept as ontology instances of the `Service` class so
//! the same queries work for matchmaking and for the ontology service.

use gridflow_ontology::{Instance, KnowledgeBase, Query, SlotCond, Value};
use serde::{Deserialize, Serialize};

/// One registration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Registration {
    /// Registered name (unique).
    pub name: String,
    /// Service type (e.g. `"brokerage"`, `"end-user"`).
    pub service_type: String,
    /// Where the service runs (agent name or container id).
    pub location: String,
    /// Free-text description.
    pub description: String,
}

/// The information service core.
#[derive(Debug, Clone)]
pub struct InformationService {
    kb: KnowledgeBase,
}

impl Default for InformationService {
    fn default() -> Self {
        Self::new()
    }
}

impl InformationService {
    /// An empty registry.
    pub fn new() -> Self {
        let mut kb = gridflow_ontology::schema::grid_ontology_shell();
        kb.name = "information-registry".into();
        InformationService { kb }
    }

    /// Register (or re-register) a service.
    pub fn register(&mut self, reg: Registration) -> crate::Result<()> {
        // Re-registration replaces the previous record.
        let _ = self.kb.remove_instance(&reg.name);
        self.kb.add_instance(
            Instance::new(
                reg.name.clone(),
                gridflow_ontology::schema::classes::SERVICE,
            )
            .with("Name", Value::str(reg.name.clone()))
            .with("Type", Value::str(reg.service_type))
            .with("Location", Value::str(reg.location))
            .with("Description", Value::str(reg.description)),
        )?;
        Ok(())
    }

    /// Remove a registration.
    pub fn deregister(&mut self, name: &str) -> crate::Result<()> {
        self.kb.remove_instance(name)?;
        Ok(())
    }

    /// Look up one registration by name.
    pub fn lookup(&self, name: &str) -> Option<Registration> {
        self.kb.instance(name).map(Self::to_registration)
    }

    /// All registrations of a given service type, in name order — the
    /// query the planning service issues in step 1 of the Fig. 3 flow
    /// ("the planning service asks the information service for a
    /// brokerage service that is available in the system").
    pub fn find_by_type(&self, service_type: &str) -> Vec<Registration> {
        Query::cond(SlotCond::Eq("Type".into(), Value::str(service_type)))
            .run(&self.kb, Some(gridflow_ontology::schema::classes::SERVICE))
            .into_iter()
            .map(Self::to_registration)
            .collect()
    }

    /// Total number of registrations.
    pub fn len(&self) -> usize {
        self.kb.instance_count()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.kb.instance_count() == 0
    }

    /// All registrations, in name order.
    pub fn all(&self) -> Vec<Registration> {
        self.kb.instances().map(Self::to_registration).collect()
    }

    fn to_registration(inst: &Instance) -> Registration {
        Registration {
            name: inst.get_str("Name").unwrap_or(&inst.id).to_owned(),
            service_type: inst.get_str("Type").unwrap_or("").to_owned(),
            location: inst.get_str("Location").unwrap_or("").to_owned(),
            description: inst.get_str("Description").unwrap_or("").to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(name: &str, service_type: &str) -> Registration {
        Registration {
            name: name.into(),
            service_type: service_type.into(),
            location: format!("{name}@host"),
            description: format!("{service_type} service"),
        }
    }

    #[test]
    fn register_lookup_deregister() {
        let mut info = InformationService::new();
        info.register(reg("broker-1", "brokerage")).unwrap();
        assert_eq!(info.len(), 1);
        let r = info.lookup("broker-1").unwrap();
        assert_eq!(r.service_type, "brokerage");
        info.deregister("broker-1").unwrap();
        assert!(info.is_empty());
        assert!(info.lookup("broker-1").is_none());
        assert!(info.deregister("broker-1").is_err());
    }

    #[test]
    fn find_by_type_returns_matching_in_name_order() {
        let mut info = InformationService::new();
        info.register(reg("broker-2", "brokerage")).unwrap();
        info.register(reg("broker-1", "brokerage")).unwrap();
        info.register(reg("planner-1", "planning")).unwrap();
        let brokers = info.find_by_type("brokerage");
        assert_eq!(brokers.len(), 2);
        assert_eq!(brokers[0].name, "broker-1");
        assert!(info.find_by_type("nonexistent").is_empty());
    }

    #[test]
    fn reregistration_replaces() {
        let mut info = InformationService::new();
        info.register(reg("svc", "planning")).unwrap();
        info.register(reg("svc", "brokerage")).unwrap();
        assert_eq!(info.len(), 1);
        assert_eq!(info.lookup("svc").unwrap().service_type, "brokerage");
    }

    #[test]
    fn all_lists_everything() {
        let mut info = InformationService::new();
        for i in 0..5 {
            info.register(reg(&format!("s{i}"), "end-user")).unwrap();
        }
        assert_eq!(info.all().len(), 5);
    }
}
