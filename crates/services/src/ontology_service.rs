//! The ontology service: "maintain\[s\] and distribute\[s\] ontology shells
//! (i.e., ontologies with classes and slots but without instances) as
//! well as ontologies populated with instances, global ontologies, and
//! user-specific ontologies" (§2).

use crate::error::{Result, ServiceError};
use gridflow_ontology::KnowledgeBase;
use std::collections::BTreeMap;

/// The ontology service core: a catalog of named knowledge bases.
#[derive(Debug, Clone, Default)]
pub struct OntologyService {
    ontologies: BTreeMap<String, KnowledgeBase>,
}

impl OntologyService {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// A catalog preloaded with the paper's grid ontology shell
    /// (Fig. 12) under the name `"grid-core"`.
    pub fn with_grid_core() -> Self {
        let mut svc = Self::new();
        svc.publish(gridflow_ontology::schema::grid_ontology_shell());
        svc
    }

    /// Publish (or replace) an ontology under its own name.
    pub fn publish(&mut self, kb: KnowledgeBase) {
        self.ontologies.insert(kb.name.clone(), kb);
    }

    /// Retrieve a full (possibly populated) ontology.
    pub fn get(&self, name: &str) -> Result<&KnowledgeBase> {
        self.ontologies
            .get(name)
            .ok_or_else(|| ServiceError::NotFound(format!("ontology `{name}`")))
    }

    /// Retrieve the *shell* of an ontology: classes and slots, no
    /// instances.
    pub fn get_shell(&self, name: &str) -> Result<KnowledgeBase> {
        Ok(self.get(name)?.shell())
    }

    /// Merge a user-specific populated ontology into a global one,
    /// in place.
    pub fn merge_into(&mut self, global: &str, user: &KnowledgeBase) -> Result<()> {
        let target = self
            .ontologies
            .get_mut(global)
            .ok_or_else(|| ServiceError::NotFound(format!("ontology `{global}`")))?;
        target.merge(user)?;
        Ok(())
    }

    /// Names of all published ontologies.
    pub fn names(&self) -> Vec<&str> {
        self.ontologies.keys().map(String::as_str).collect()
    }

    /// Validate every instance of every published ontology; returns
    /// `(ontology name, error)` pairs.
    pub fn audit(&self) -> Vec<(String, gridflow_ontology::OntologyError)> {
        let mut out = Vec::new();
        for (name, kb) in &self.ontologies {
            for err in kb.validate_all() {
                out.push((name.clone(), err));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridflow_ontology::{Instance, Value};

    #[test]
    fn grid_core_is_preloaded_as_shell() {
        let svc = OntologyService::with_grid_core();
        let kb = svc.get("grid-core").unwrap();
        assert!(kb.is_shell());
        assert_eq!(kb.class_count(), 10);
        assert_eq!(svc.names(), vec!["grid-core"]);
    }

    #[test]
    fn get_shell_strips_instances() {
        let mut svc = OntologyService::with_grid_core();
        let mut populated = svc.get("grid-core").unwrap().clone();
        populated.name = "user-1".into();
        populated
            .add_instance(Instance::new("D1", "Data").with("Name", Value::str("projections")))
            .unwrap();
        svc.publish(populated);
        assert_eq!(svc.get("user-1").unwrap().instance_count(), 1);
        let shell = svc.get_shell("user-1").unwrap();
        assert!(shell.is_shell());
    }

    #[test]
    fn missing_ontology_is_not_found() {
        let svc = OntologyService::new();
        assert!(matches!(svc.get("nope"), Err(ServiceError::NotFound(_))));
    }

    #[test]
    fn merge_into_combines_user_data() {
        let mut svc = OntologyService::with_grid_core();
        let mut user = svc.get_shell("grid-core").unwrap();
        user.name = "user-kb".into();
        user.add_instance(Instance::new("D1", "Data").with("Name", Value::str("x")))
            .unwrap();
        svc.merge_into("grid-core", &user).unwrap();
        assert_eq!(svc.get("grid-core").unwrap().instance_count(), 1);
        // Second merge collides.
        assert!(svc.merge_into("grid-core", &user).is_err());
    }

    #[test]
    fn audit_reports_corruption() {
        let mut svc = OntologyService::with_grid_core();
        let mut kb = svc.get_shell("grid-core").unwrap();
        kb.name = "user".into();
        kb.add_instance(Instance::new("D1", "Data").with("Name", Value::str("x")))
            .unwrap();
        kb.instance_mut("D1").unwrap().set("Size", Value::Int(-4));
        svc.publish(kb);
        let problems = svc.audit();
        assert_eq!(problems.len(), 1);
        assert_eq!(problems[0].0, "user");
    }
}
