//! # gridflow-services
//!
//! The core services of the paper's intelligent grid environment (Fig. 1):
//! authentication, brokerage, coordination, information, matchmaking,
//! monitoring, ontology, planning, persistent storage, scheduling, and
//! simulation.
//!
//! Each service exists in two layers:
//!
//! * a **core** — a plain synchronous struct with the service's logic,
//!   unit-testable in isolation (e.g. [`coordination::Enactor`],
//!   [`matchmaking::matchmake`], [`brokerage::BrokerageService`]);
//! * an **agent wrapper** (module [`agents`]) — an implementation of
//!   [`gridflow_agents::Agent`] speaking the JSON/ACL protocols of the
//!   paper's message-flow figures (Fig. 2: coordination ↔ planning;
//!   Fig. 3: the re-planning probe through information → brokerage →
//!   application containers).
//!
//! Shared mutable substrate state (topology, market, execution history,
//! virtual clock) lives in [`world::GridWorld`], typically wrapped in
//! [`world::SharedWorld`] when agents run concurrently.

#![warn(missing_docs)]

pub mod agents;
pub mod auth;
pub mod brokerage;
pub mod coordination;
pub mod error;
pub mod hierarchy;
pub mod information;
pub mod matchmaking;
pub mod monitoring;
pub mod ontology_service;
pub mod plan_cache;
pub mod planning;
pub mod scheduling;
pub mod simulation;
pub mod storage;
pub mod tracker;
pub mod wake;
pub mod world;

pub use coordination::{
    CaseFiber, EnactmentCheckpoint, EnactmentConfig, EnactmentReport, Enactor, EnactorBuilder,
    FiberImage, FiberStatus, PendingImage, PreparedStep,
};
pub use error::{Result, ServiceError};
pub use matchmaking::{MatchIndex, MatchRequest, RankedMatch, ShardedMatchIndex};
pub use plan_cache::{
    InProcPlanCache, PlanCache, PlanCacheHandle, PlanCacheStats, PlanFetchOutcome,
};
pub use planning::{PlanRequest, PlanResponse, PlanningService};
pub use wake::{ServiceState, WakeCoordinator, WakeOutcome};
pub use world::{
    ContainerImage, ExecutionRecord, GridWorld, OutputSpec, ServiceOffering, SharedWorld,
    WorldImage,
};
