//! On-demand wake of cold Application Containers.
//!
//! The paper's coordinator keeps rarely-used services asleep and wakes
//! them when a request arrives.  [`WakeCoordinator`] implements the
//! standard shape of that mechanism: per-service Cold → Waking →
//! Running state, **coalescing** of concurrent wake requests (the first
//! caller performs the wake, everyone else subscribes to its completion
//! broadcast — N concurrent requests to a cold service perform exactly
//! one wake), and an idle-timeout reaper that puts unused services back
//! to sleep.
//!
//! Wakes and sleeps surface as `wake.woken` / `wake.slept` trace
//! events when a sink is installed.

use crossbeam_channel::{bounded, Sender};
use gridflow_telemetry::{TraceEvent, TraceSink, TraceSlot};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Observable lifecycle state of one service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceState {
    /// Asleep: the next request must wake it.
    Cold,
    /// A wake is in flight; new requests coalesce onto it.
    Waking,
    /// Awake and serving.
    Running,
}

/// How a caller's `ensure_running` resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WakeOutcome {
    /// The service was already running; nothing to do.
    AlreadyRunning,
    /// This caller performed the wake.
    Woke,
    /// Another caller's in-flight wake was awaited and succeeded.
    Coalesced,
    /// The wake (own or awaited) failed with this reason.
    Failed(String),
}

#[derive(Debug, Default)]
struct Entry {
    state: Option<ServiceState>,
    waiters: Vec<Sender<Result<(), String>>>,
    wakes: u64,
    last_used_tick: u64,
}

impl Entry {
    fn state(&self) -> ServiceState {
        self.state.unwrap_or(ServiceState::Cold)
    }
}

/// Tracks per-service wake state; clones share it.
#[derive(Debug, Default, Clone)]
pub struct WakeCoordinator {
    inner: Arc<Mutex<BTreeMap<String, Entry>>>,
    trace: TraceSlot,
}

impl WakeCoordinator {
    /// A coordinator with every service cold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a trace sink observing `wake.woken` / `wake.slept`.
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) {
        self.trace.set(sink);
    }

    /// The current state of a service (never-seen services are cold).
    pub fn state(&self, service: &str) -> ServiceState {
        self.inner
            .lock()
            .get(service)
            .map(Entry::state)
            .unwrap_or(ServiceState::Cold)
    }

    /// How many actual wakes this service has undergone — the number
    /// every coalescing proof checks.
    pub fn wake_count(&self, service: &str) -> u64 {
        self.inner.lock().get(service).map(|e| e.wakes).unwrap_or(0)
    }

    /// Record that the service handled traffic at `tick`, deferring its
    /// idle sleep.
    pub fn note_used(&self, service: &str, tick: u64) {
        let mut map = self.inner.lock();
        let entry = map.entry(service.to_string()).or_default();
        entry.last_used_tick = entry.last_used_tick.max(tick);
    }

    /// Ensure the service is running, waking it if cold.
    ///
    /// * Running → returns immediately ([`WakeOutcome::AlreadyRunning`]).
    /// * Cold → this caller transitions it to Waking, runs `wake`, then
    ///   broadcasts the result to every caller that arrived meanwhile.
    /// * Waking → blocks (up to `wait`) on the in-flight wake's
    ///   broadcast instead of waking again ([`WakeOutcome::Coalesced`]).
    ///
    /// `tick` stamps last-use for the idle reaper.
    pub fn ensure_running(
        &self,
        service: &str,
        tick: u64,
        wait: Duration,
        wake: impl FnOnce() -> Result<(), String>,
    ) -> WakeOutcome {
        let waiter = {
            let mut map = self.inner.lock();
            let entry = map.entry(service.to_string()).or_default();
            entry.last_used_tick = entry.last_used_tick.max(tick);
            match entry.state() {
                ServiceState::Running => return WakeOutcome::AlreadyRunning,
                ServiceState::Waking => {
                    let (tx, rx) = bounded(1);
                    entry.waiters.push(tx);
                    Some(rx)
                }
                ServiceState::Cold => {
                    entry.state = Some(ServiceState::Waking);
                    None
                }
            }
        };

        if let Some(rx) = waiter {
            return match rx.recv_timeout(wait) {
                Ok(Ok(())) => WakeOutcome::Coalesced,
                Ok(Err(reason)) => WakeOutcome::Failed(reason),
                Err(_) => WakeOutcome::Failed("timed out awaiting in-flight wake".into()),
            };
        }

        // This caller owns the wake; run it outside the lock so
        // concurrent requests can subscribe.
        let result = wake();
        let (waiters, woken) = {
            let mut map = self.inner.lock();
            let entry = map.entry(service.to_string()).or_default();
            let waiters = std::mem::take(&mut entry.waiters);
            match &result {
                Ok(()) => {
                    entry.state = Some(ServiceState::Running);
                    entry.wakes += 1;
                    (waiters, true)
                }
                Err(_) => {
                    entry.state = Some(ServiceState::Cold);
                    (waiters, false)
                }
            }
        };
        if woken {
            self.trace.emit(
                "wake",
                TraceEvent::ServiceWoken {
                    service: service.to_string(),
                    waiters: waiters.len(),
                },
            );
        }
        for tx in waiters {
            let _ = tx.send(result.clone());
        }
        match result {
            Ok(()) => WakeOutcome::Woke,
            Err(reason) => WakeOutcome::Failed(reason),
        }
    }

    /// Put every running service that has been idle for at least
    /// `idle_timeout` ticks back to sleep, invoking `sleep` for each
    /// (e.g. to stop its container) and emitting `wake.slept`.
    /// Returns the services slept, in name order.
    pub fn reap_idle(
        &self,
        now_tick: u64,
        idle_timeout: u64,
        mut sleep: impl FnMut(&str),
    ) -> Vec<String> {
        let mut slept = Vec::new();
        {
            let mut map = self.inner.lock();
            for (service, entry) in map.iter_mut() {
                if entry.state() == ServiceState::Running {
                    let idle = now_tick.saturating_sub(entry.last_used_tick);
                    if idle >= idle_timeout {
                        entry.state = Some(ServiceState::Cold);
                        slept.push((service.clone(), idle));
                    }
                }
            }
        }
        for (service, idle) in &slept {
            sleep(service);
            self.trace.emit(
                "wake",
                TraceEvent::ServiceSlept {
                    service: service.clone(),
                    idle_ticks: *idle,
                },
            );
        }
        slept.into_iter().map(|(s, _)| s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    const WAIT: Duration = Duration::from_secs(5);

    #[test]
    fn cold_service_wakes_once_then_runs() {
        let wc = WakeCoordinator::new();
        assert_eq!(wc.state("planning"), ServiceState::Cold);
        let out = wc.ensure_running("planning", 0, WAIT, || Ok(()));
        assert_eq!(out, WakeOutcome::Woke);
        assert_eq!(wc.state("planning"), ServiceState::Running);
        assert_eq!(wc.wake_count("planning"), 1);
        let out = wc.ensure_running("planning", 1, WAIT, || panic!("must not re-wake"));
        assert_eq!(out, WakeOutcome::AlreadyRunning);
        assert_eq!(wc.wake_count("planning"), 1);
    }

    #[test]
    fn concurrent_requests_coalesce_into_one_wake() {
        let wc = WakeCoordinator::new();
        let wakes = Arc::new(AtomicU64::new(0));
        let (release_tx, release_rx) = bounded::<()>(0);
        let (entered_tx, entered_rx) = bounded::<()>(1);

        // First caller holds the wake open until released.
        let leader = {
            let wc = wc.clone();
            let wakes = Arc::clone(&wakes);
            thread::spawn(move || {
                wc.ensure_running("ac-1", 0, WAIT, move || {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    wakes.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
            })
        };
        entered_rx.recv_timeout(WAIT).unwrap();

        // N concurrent callers arrive while the wake is in flight.
        let followers: Vec<_> = (0..8)
            .map(|_| {
                let wc = wc.clone();
                let wakes = Arc::clone(&wakes);
                thread::spawn(move || {
                    wc.ensure_running("ac-1", 0, WAIT, move || {
                        wakes.fetch_add(1, Ordering::SeqCst);
                        Ok(())
                    })
                })
            })
            .collect();
        // Give followers time to park on the broadcast, then release.
        thread::sleep(Duration::from_millis(50));
        release_tx.send(()).unwrap();

        assert_eq!(leader.join().unwrap(), WakeOutcome::Woke);
        for f in followers {
            assert_eq!(f.join().unwrap(), WakeOutcome::Coalesced);
        }
        assert_eq!(wakes.load(Ordering::SeqCst), 1, "exactly one wake ran");
        assert_eq!(wc.wake_count("ac-1"), 1);
    }

    #[test]
    fn failed_wake_returns_to_cold_and_reports_waiters() {
        let wc = WakeCoordinator::new();
        let out = wc.ensure_running("ac-2", 0, WAIT, || Err("no capacity".into()));
        assert_eq!(out, WakeOutcome::Failed("no capacity".into()));
        assert_eq!(wc.state("ac-2"), ServiceState::Cold);
        assert_eq!(wc.wake_count("ac-2"), 0);
        // A later attempt may succeed.
        assert_eq!(
            wc.ensure_running("ac-2", 1, WAIT, || Ok(())),
            WakeOutcome::Woke
        );
    }

    #[test]
    fn idle_reaper_sleeps_only_stale_services() {
        let wc = WakeCoordinator::new();
        wc.ensure_running("busy", 0, WAIT, || Ok(()));
        wc.ensure_running("stale", 0, WAIT, || Ok(()));
        wc.note_used("busy", 90);
        let mut slept_calls = Vec::new();
        let slept = wc.reap_idle(100, 50, |s| slept_calls.push(s.to_string()));
        assert_eq!(slept, vec!["stale".to_string()]);
        assert_eq!(slept_calls, vec!["stale".to_string()]);
        assert_eq!(wc.state("stale"), ServiceState::Cold);
        assert_eq!(wc.state("busy"), ServiceState::Running);
        // A re-wake after sleep counts again.
        assert_eq!(
            wc.ensure_running("stale", 101, WAIT, || Ok(())),
            WakeOutcome::Woke
        );
        assert_eq!(wc.wake_count("stale"), 2);
    }

    #[test]
    fn wake_and_sleep_emit_trace_events() {
        use gridflow_telemetry::TraceLog;
        let wc = WakeCoordinator::new();
        let log = TraceLog::new();
        wc.set_trace_sink(Arc::new(log.clone()));
        wc.ensure_running("svc", 0, WAIT, || Ok(()));
        wc.reap_idle(100, 10, |_| {});
        let labels: Vec<_> = log.records().iter().map(|r| r.event.label()).collect();
        assert_eq!(labels, vec!["wake.woken", "wake.slept"]);
    }
}
