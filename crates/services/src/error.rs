//! Error type spanning the service layer.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ServiceError>;

/// Errors raised by core services.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Underlying grid substrate error.
    Grid(gridflow_grid::GridError),
    /// Underlying process/workflow error.
    Process(gridflow_process::ProcessError),
    /// Underlying ontology error.
    Ontology(gridflow_ontology::OntologyError),
    /// Underlying agent-substrate error.
    Agent(gridflow_agents::AgentError),
    /// No service offering registered under this name.
    UnknownOffering(String),
    /// No container could execute the activity, even after retries.
    ActivityFailed {
        /// The activity that could not execute.
        activity: String,
        /// The service it needed.
        service: String,
    },
    /// Enactment needed re-planning but it was disabled or exhausted.
    ReplanExhausted {
        /// Re-plans attempted.
        attempts: usize,
    },
    /// Re-planning could not produce a viable plan.
    NoViablePlan(String),
    /// Authentication failure.
    AuthDenied(String),
    /// Storage key not found.
    NotFound(String),
    /// Malformed request payload at the agent protocol layer.
    BadRequest(String),
    /// A checkpoint was written by a newer coordinator than this one:
    /// resuming it could silently misinterpret state, so we refuse.
    UnsupportedCheckpoint {
        /// Version found in the checkpoint.
        found: u32,
        /// Highest version this coordinator understands.
        supported: u32,
    },
    /// A checkpoint failed validation.  Every violation found is listed
    /// — validation never bails on the first problem, so one refusal
    /// message is enough to diagnose a corrupt checkpoint fully.
    InvalidCheckpoint {
        /// All violations, in field order.
        violations: Vec<String>,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Grid(e) => write!(f, "grid: {e}"),
            Self::Process(e) => write!(f, "process: {e}"),
            Self::Ontology(e) => write!(f, "ontology: {e}"),
            Self::Agent(e) => write!(f, "agent: {e}"),
            Self::UnknownOffering(s) => write!(f, "unknown service offering `{s}`"),
            Self::ActivityFailed { activity, service } => {
                write!(f, "activity `{activity}` (service `{service}`) failed on every candidate container")
            }
            Self::ReplanExhausted { attempts } => {
                write!(f, "re-planning exhausted after {attempts} attempts")
            }
            Self::NoViablePlan(msg) => write!(f, "no viable plan: {msg}"),
            Self::AuthDenied(msg) => write!(f, "authentication denied: {msg}"),
            Self::NotFound(key) => write!(f, "not found: `{key}`"),
            Self::BadRequest(msg) => write!(f, "bad request: {msg}"),
            Self::UnsupportedCheckpoint { found, supported } => write!(
                f,
                "checkpoint version {found} is newer than the supported version \
                 {supported}; refusing to resume"
            ),
            Self::InvalidCheckpoint { violations } => {
                write!(f, "invalid checkpoint: {}", violations.join("; "))
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<gridflow_grid::GridError> for ServiceError {
    fn from(e: gridflow_grid::GridError) -> Self {
        ServiceError::Grid(e)
    }
}

impl From<gridflow_process::ProcessError> for ServiceError {
    fn from(e: gridflow_process::ProcessError) -> Self {
        ServiceError::Process(e)
    }
}

impl From<gridflow_ontology::OntologyError> for ServiceError {
    fn from(e: gridflow_ontology::OntologyError) -> Self {
        ServiceError::Ontology(e)
    }
}

impl From<gridflow_agents::AgentError> for ServiceError {
    fn from(e: gridflow_agents::AgentError) -> Self {
        ServiceError::Agent(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ServiceError = gridflow_grid::GridError::ContainerDown("ac".into()).into();
        assert!(e.to_string().contains("ac"));
        let e: ServiceError = gridflow_process::ProcessError::Enactment("boom".into()).into();
        assert!(e.to_string().contains("boom"));
        assert!(ServiceError::ActivityFailed {
            activity: "P3DR1".into(),
            service: "P3DR".into()
        }
        .to_string()
        .contains("P3DR1"));
        let msg = ServiceError::UnsupportedCheckpoint {
            found: 9,
            supported: 1,
        }
        .to_string();
        assert!(msg.contains("version 9") && msg.contains("refusing to resume"));
        let msg = ServiceError::InvalidCheckpoint {
            violations: vec!["first problem".into(), "second problem".into()],
        }
        .to_string();
        assert!(msg.contains("first problem; second problem"), "{msg}");
    }
}
