//! The matchmaking service: "Matchmaking services allow individual users
//! represented by their proxies (coordination services) to locate
//! resources in a spot market, subject to a wide range of conditions"
//! (§2).
//!
//! A [`MatchRequest`] expresses those conditions — soft deadline, budget,
//! interconnect requirements, administrative domain, minimum reliability
//! — and [`matchmake`] ranks the containers that satisfy all of them.

use crate::error::{Result, ServiceError};
use crate::world::{GridWorld, ServiceOffering};
use gridflow_grid::workload::estimate;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Conditions on a resource match.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchRequest {
    /// The end-user service to place.
    pub service: String,
    /// Soft deadline on the execution duration (seconds).
    pub deadline_s: Option<f64>,
    /// Budget cap on the execution cost.
    pub budget: Option<f64>,
    /// Require an interconnect suitable for fine-grain parallelism.
    pub require_fine_grain: bool,
    /// Restrict to one administrative domain.
    pub domain: Option<String>,
    /// Minimum resource reliability.
    pub min_reliability: f64,
}

impl MatchRequest {
    /// An unconstrained request for the given service.
    pub fn for_service(service: impl Into<String>) -> Self {
        MatchRequest {
            service: service.into(),
            deadline_s: None,
            budget: None,
            require_fine_grain: false,
            domain: None,
            min_reliability: 0.0,
        }
    }
}

/// One ranked match.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedMatch {
    /// Container that would run the service.
    pub container: String,
    /// Backing resource.
    pub resource: String,
    /// Predicted duration (seconds).
    pub duration_s: f64,
    /// Predicted cost.
    pub cost: f64,
    /// Resource reliability.
    pub reliability: f64,
}

/// One precomputed candidate for a service: everything about the
/// `(container, resource)` pair that does not change between
/// matchmaking-visible world mutations.  Liveness (`up`) is the one
/// dynamic fact, re-checked against the topology at query time via the
/// recorded container position.
#[derive(Debug, Clone)]
struct IndexEntry {
    /// Candidate container id.
    container: String,
    /// Its position in `topology.containers` (verified at query time).
    container_pos: usize,
    /// Backing resource id.
    resource: String,
    /// Model-estimated duration for the service on this resource.
    duration_s: f64,
    /// Model-estimated cost.
    cost: f64,
    /// Resource reliability.
    reliability: f64,
    /// Does the interconnect suit fine-grain parallelism?
    fine_grain: bool,
    /// Administrative domain.
    domain: String,
}

/// Precomputed per-service candidate rankings, keyed to a
/// [`GridWorld::generation`].
///
/// Built lazily by [`matchmake`] and cached on the world; a generation
/// mismatch (container flip, catalog change) invalidates it wholesale.
/// Entries are pre-sorted by matchmaking's ranking key `(duration,
/// container id)`, so a query is a filtered copy instead of a full
/// container scan, resource lookup, estimate, and sort per call.
#[derive(Debug)]
pub struct MatchIndex {
    /// The world generation this index reflects.
    generation: u64,
    /// service name → ranked candidate entries (hosting containers,
    /// up or not — liveness is checked at query time).
    by_service: BTreeMap<String, Vec<IndexEntry>>,
}

impl MatchIndex {
    /// Build the index for the world's current catalog and topology.
    pub fn build(world: &GridWorld) -> Self {
        let resources: BTreeMap<&str, &gridflow_grid::resource::Resource> = world
            .topology
            .resources
            .iter()
            .map(|r| (r.id.as_str(), r))
            .collect();
        let mut by_service = BTreeMap::new();
        for (name, offering) in &world.offerings {
            let mut entries = Vec::new();
            for (container_pos, container) in world.topology.containers.iter().enumerate() {
                if !container.hosts(name) {
                    continue;
                }
                let Some(resource) = resources.get(container.resource_id.as_str()) else {
                    continue;
                };
                let est = estimate(&offering.demand, resource);
                entries.push(IndexEntry {
                    container: container.id.clone(),
                    container_pos,
                    resource: resource.id.clone(),
                    duration_s: est.duration_s,
                    cost: est.cost,
                    reliability: resource.reliability,
                    fine_grain: resource.hardware.suits_fine_grain(),
                    domain: resource.domain.clone(),
                });
            }
            entries.sort_by(|a, b| {
                a.duration_s
                    .partial_cmp(&b.duration_s)
                    .expect("durations are finite")
                    .then_with(|| a.container.cmp(&b.container))
            });
            by_service.insert(name.clone(), entries);
        }
        MatchIndex {
            generation: world.generation(),
            by_service,
        }
    }

    /// The generation this index was built at.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// Does `entry` pass every *static* condition of `request`?  Liveness
/// (`container.up`) is the one check this cannot answer — the caller
/// verifies it against the topology.  Shared by the cached-index query
/// and the sharded index so the two filters cannot drift apart.
fn admit_entry(entry: &IndexEntry, request: &MatchRequest) -> bool {
    if request.require_fine_grain && !entry.fine_grain {
        return false;
    }
    if let Some(domain) = &request.domain {
        if &entry.domain != domain {
            return false;
        }
    }
    if entry.reliability < request.min_reliability {
        return false;
    }
    if let Some(deadline) = request.deadline_s {
        if entry.duration_s > deadline {
            return false;
        }
    }
    if let Some(budget) = request.budget {
        if entry.cost > budget {
            return false;
        }
    }
    true
}

/// Matchmaking's ranking key: `(estimated duration, container id)`.
/// Total because container ids are unique, so it never answers `Equal`
/// for distinct entries.
fn entry_before(a: &IndexEntry, b: &IndexEntry) -> bool {
    a.duration_s
        .partial_cmp(&b.duration_s)
        .expect("durations are finite")
        .then_with(|| a.container.cmp(&b.container))
        .is_lt()
}

/// Per-service candidate rankings partitioned by container shard — the
/// read-only index the engine's sharded core shares across its prepare
/// threads.
///
/// Unlike the world-cached [`MatchIndex`] (a `Mutex`-guarded lazy
/// cache), this index is engine-owned and queried through `&self` with
/// no interior locking, so `N` shard workers rank candidates
/// concurrently without serializing on a cache lock.  The engine
/// rebuilds it whenever [`GridWorld::generation`] moves (container
/// flips, catalog changes) — between rebuilds the world's
/// matchmaking-visible state is frozen, which is what makes the
/// lock-free reads sound.
///
/// Partitioning is the ownership map of the sharded core: the entries
/// for shard `s` cover exactly the containers at topology positions
/// `p` with `p % shards == s` (see `gridflow_grid::ShardMap`).  A
/// query k-way merges the per-shard lists under matchmaking's ranking
/// key `(duration, container id)` — a *total* order, so the merged
/// ranking is byte-identical to the global [`MatchIndex`] answer and
/// to the legacy scan.
#[derive(Debug)]
pub struct ShardedMatchIndex {
    /// The world generation this index reflects.
    generation: u64,
    /// The shard count the entries are partitioned by.
    shards: usize,
    /// service name → per-shard ranked candidate entries.
    by_service: BTreeMap<String, Vec<Vec<IndexEntry>>>,
}

impl ShardedMatchIndex {
    /// Build the index for the world's current catalog and topology,
    /// partitioned into `shards` (clamped to ≥ 1) groups.  Delegates
    /// entry construction to [`MatchIndex::build`] so the candidate
    /// set, estimates, and per-shard sort order are identical to the
    /// global index by construction.
    pub fn build(world: &GridWorld, shards: usize) -> Self {
        let shards = shards.max(1);
        let global = MatchIndex::build(world);
        let mut by_service = BTreeMap::new();
        for (name, entries) in global.by_service {
            let mut parts = vec![Vec::new(); shards];
            for entry in entries {
                // Splitting a sorted list preserves order within parts.
                parts[entry.container_pos % shards].push(entry);
            }
            by_service.insert(name, parts);
        }
        ShardedMatchIndex {
            generation: global.generation,
            shards,
            by_service,
        }
    }

    /// The generation this index was built at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The shard count this index was partitioned by.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Answer `request` by k-way merging the per-shard rankings,
    /// applying exactly the conditions [`matchmake`] applies.
    ///
    /// Returns `None` — telling the caller to fall back to the full
    /// [`matchmake`] path — when the index is stale (generation
    /// mismatch), the service is not in the catalog it was built from,
    /// or a recorded container position no longer matches the topology
    /// (a mutation behind the generation counter's back).  An empty
    /// `Some` is a real answer: nothing qualifies.
    pub fn matches(&self, world: &GridWorld, request: &MatchRequest) -> Option<Vec<RankedMatch>> {
        if self.generation != world.generation() {
            return None;
        }
        let parts = self.by_service.get(&request.service)?;
        let mut cursors = vec![0usize; parts.len()];
        let mut matches = Vec::new();
        loop {
            // The frontier entry with the smallest ranking key wins;
            // the key is total, so the merge order is unambiguous.
            let mut best: Option<usize> = None;
            for (shard, part) in parts.iter().enumerate() {
                let Some(entry) = part.get(cursors[shard]) else {
                    continue;
                };
                best = match best {
                    Some(b) if !entry_before(entry, &parts[b][cursors[b]]) => Some(b),
                    _ => Some(shard),
                };
            }
            let Some(shard) = best else {
                break;
            };
            let entry = &parts[shard][cursors[shard]];
            cursors[shard] += 1;
            let container = world.topology.containers.get(entry.container_pos)?;
            if container.id != entry.container {
                return None;
            }
            if !container.up || !admit_entry(entry, request) {
                continue;
            }
            matches.push(RankedMatch {
                container: entry.container.clone(),
                resource: entry.resource.clone(),
                duration_s: entry.duration_s,
                cost: entry.cost,
                reliability: entry.reliability,
            });
        }
        Some(matches)
    }
}

/// Answer `request` from the world's cached [`MatchIndex`],
/// (re)building it on generation mismatch.  Returns `None` — falling
/// back to the scan path — when the index turns out to be stale in a
/// way the generation could not see (pub topology fields mutated
/// without [`GridWorld::bump_generation`]); the cache is dropped so the
/// next call rebuilds.
fn indexed_matches(world: &GridWorld, request: &MatchRequest) -> Option<Vec<RankedMatch>> {
    let mut cache = world.match_index.lock();
    let stale = cache
        .as_ref()
        .is_none_or(|idx| idx.generation != world.generation());
    if stale {
        *cache = Some(MatchIndex::build(world));
    }
    let index = cache.as_ref().expect("cache populated above");
    let entries = index.by_service.get(&request.service)?;
    let mut matches = Vec::with_capacity(entries.len());
    for entry in entries {
        let Some(container) = world.topology.containers.get(entry.container_pos) else {
            *cache = None;
            return None;
        };
        if container.id != entry.container {
            *cache = None;
            return None;
        }
        if !container.up || !admit_entry(entry, request) {
            continue;
        }
        matches.push(RankedMatch {
            container: entry.container.clone(),
            resource: entry.resource.clone(),
            duration_s: entry.duration_s,
            cost: entry.cost,
            reliability: entry.reliability,
        });
    }
    Some(matches)
}

/// The pre-index matchmaking path: scan every container, look up its
/// resource, estimate, filter, sort.  Kept verbatim as the fallback
/// when the index cannot be trusted — and as the oracle the index
/// equivalence tests compare against.
fn scan_matches(
    world: &GridWorld,
    offering: &ServiceOffering,
    request: &MatchRequest,
) -> Vec<RankedMatch> {
    let mut matches = Vec::new();
    for container in world
        .topology
        .containers
        .iter()
        .filter(|c| c.can_execute(&request.service))
    {
        let Some(resource) = world.topology.resource(&container.resource_id) else {
            continue;
        };
        if request.require_fine_grain && !resource.hardware.suits_fine_grain() {
            continue;
        }
        if let Some(domain) = &request.domain {
            if &resource.domain != domain {
                continue;
            }
        }
        if resource.reliability < request.min_reliability {
            continue;
        }
        let est = estimate(&offering.demand, resource);
        if let Some(deadline) = request.deadline_s {
            if est.duration_s > deadline {
                continue;
            }
        }
        if let Some(budget) = request.budget {
            if est.cost > budget {
                continue;
            }
        }
        matches.push(RankedMatch {
            container: container.id.clone(),
            resource: resource.id.clone(),
            duration_s: est.duration_s,
            cost: est.cost,
            reliability: resource.reliability,
        });
    }
    matches.sort_by(|a, b| {
        a.duration_s
            .partial_cmp(&b.duration_s)
            .expect("durations are finite")
            .then_with(|| a.container.cmp(&b.container))
    });
    matches
}

/// Rank the containers that can execute the request's service *and*
/// satisfy every condition, fastest first.  Fails with
/// [`ServiceError::Grid`] wrapping [`gridflow_grid::GridError::NoMatchingOffer`]
/// when nothing qualifies.
///
/// Served from the world's cached [`MatchIndex`] (rebuilt on
/// [`GridWorld::generation`] mismatch); the legacy full scan remains as
/// the fallback and produces identical rankings — both orderings are
/// `(estimated duration, container id)`, which is total, so the two
/// paths cannot disagree.
pub fn matchmake(world: &GridWorld, request: &MatchRequest) -> Result<Vec<RankedMatch>> {
    let offering = world.offering(&request.service)?;
    let matches = match indexed_matches(world, request) {
        Some(matches) => matches,
        None => scan_matches(world, offering, request),
    };
    if matches.is_empty() {
        return Err(ServiceError::Grid(
            gridflow_grid::GridError::NoMatchingOffer(format!(
                "service `{}` under the given conditions",
                request.service
            )),
        ));
    }
    Ok(matches)
}

/// Like [`matchmake`], but containers whose circuit breaker is open are
/// excluded from the candidate list — a quarantined container is
/// invisible to placement until its half-open probe readmits it.  An
/// open breaker whose cooldown has elapsed transitions to half-open
/// during this filter (and is admitted as a probe candidate), so the
/// call takes the recovery manager mutably.  Unlike [`matchmake`], an
/// all-quarantined result is `Ok(vec![])` rather than an error: the
/// enactor treats it as "every candidate failed" and escalates.
pub fn matchmake_admitted(
    world: &GridWorld,
    request: &MatchRequest,
    recovery: &mut gridflow_recovery::RecoveryManager,
) -> Result<Vec<RankedMatch>> {
    let ranked = matchmake(world, request)?;
    Ok(ranked
        .into_iter()
        .filter(|m| recovery.is_admitted(&m.container))
        .collect())
}

/// Like [`matchmake`], but duration estimates prefer the brokerage
/// service's *observed* history over the hardware model — §1: when a task
/// has soft deadlines, "the search for a site with adequate resources …
/// must be complemented by the ability to access history information
/// about the past execution of the task, as well as hardware performance
/// data".  Containers with recorded executions are judged by their
/// observed mean duration; containers without history fall back to the
/// model estimate.
pub fn matchmake_with_history(
    world: &GridWorld,
    broker: &crate::brokerage::BrokerageService,
    request: &MatchRequest,
) -> Result<Vec<RankedMatch>> {
    let mut matches = matchmake(
        world,
        &MatchRequest {
            // Apply deadline after the duration substitution.
            deadline_s: None,
            ..request.clone()
        },
    )?;
    for m in &mut matches {
        let stats = broker.performance(&request.service, &m.container);
        if stats.successes > 0 {
            m.duration_s = stats.mean_duration_s;
        }
    }
    if let Some(deadline) = request.deadline_s {
        matches.retain(|m| m.duration_s <= deadline);
    }
    if matches.is_empty() {
        return Err(ServiceError::Grid(
            gridflow_grid::GridError::NoMatchingOffer(format!(
                "service `{}` under the given conditions (history-informed)",
                request.service
            )),
        ));
    }
    matches.sort_by(|a, b| {
        a.duration_s
            .partial_cmp(&b.duration_s)
            .expect("durations are finite")
            .then_with(|| a.container.cmp(&b.container))
    });
    Ok(matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{OutputSpec, ServiceOffering};
    use gridflow_grid::container::ApplicationContainer;
    use gridflow_grid::resource::{Resource, ResourceKind};
    use gridflow_grid::workload::TaskDemand;
    use gridflow_grid::GridTopology;

    /// A hand-built world: one supercomputer, one PC cluster, one flaky
    /// workstation — all hosting service `X`.
    fn world(fine_grain: bool) -> GridWorld {
        let resources = vec![
            Resource::new("sc", ResourceKind::Supercomputer)
                .with_nodes(64)
                .at("anl", "anl.gov")
                .with_reliability(0.999)
                .with_cost(2.0),
            Resource::new("pc", ResourceKind::PcCluster)
                .with_nodes(64)
                .at("ucf", "ucf.edu")
                .with_reliability(0.95)
                .with_cost(0.5),
            Resource::new("ws", ResourceKind::Workstation)
                .at("dorm", "ucf.edu")
                .with_reliability(0.6)
                .with_cost(0.05),
        ];
        let containers = vec![
            ApplicationContainer::new("ac-sc", "sc").hosting(["X"]),
            ApplicationContainer::new("ac-pc", "pc").hosting(["X"]),
            ApplicationContainer::new("ac-ws", "ws").hosting(["X"]),
        ];
        let mut w = GridWorld::new(GridTopology {
            resources,
            containers,
        });
        let demand = if fine_grain {
            TaskDemand::fine("X", 500.0, 10.0)
        } else {
            TaskDemand::coarse("X", 500.0, 10.0)
        };
        w.offer(
            ServiceOffering::new("X", Vec::<String>::new(), vec![OutputSpec::plain("Out")])
                .with_demand(demand),
        );
        w
    }

    #[test]
    fn unconstrained_request_ranks_all_by_duration() {
        let w = world(false);
        let matches = matchmake(&w, &MatchRequest::for_service("X")).unwrap();
        assert_eq!(matches.len(), 3);
        for pair in matches.windows(2) {
            assert!(pair[0].duration_s <= pair[1].duration_s);
        }
        // Coarse-grain: the high-clock PC cluster wins.
        assert_eq!(matches[0].container, "ac-pc");
    }

    #[test]
    fn fine_grain_requirement_selects_the_supercomputer() {
        let w = world(true);
        let req = MatchRequest {
            require_fine_grain: true,
            ..MatchRequest::for_service("X")
        };
        let matches = matchmake(&w, &req).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].container, "ac-sc");
    }

    #[test]
    fn domain_condition_filters() {
        let w = world(false);
        let req = MatchRequest {
            domain: Some("ucf.edu".into()),
            ..MatchRequest::for_service("X")
        };
        let matches = matchmake(&w, &req).unwrap();
        assert_eq!(matches.len(), 2);
        assert!(matches.iter().all(|m| m.resource != "sc"));
    }

    #[test]
    fn reliability_condition_filters() {
        let w = world(false);
        let req = MatchRequest {
            min_reliability: 0.9,
            ..MatchRequest::for_service("X")
        };
        let matches = matchmake(&w, &req).unwrap();
        assert_eq!(matches.len(), 2);
        assert!(matches.iter().all(|m| m.reliability >= 0.9));
    }

    #[test]
    fn deadline_and_budget_conditions() {
        let w = world(false);
        let all = matchmake(&w, &MatchRequest::for_service("X")).unwrap();
        let fastest = all[0].duration_s;
        // Deadline just above the fastest admits at least the fastest.
        let req = MatchRequest {
            deadline_s: Some(fastest * 1.01),
            ..MatchRequest::for_service("X")
        };
        assert!(!matchmake(&w, &req).unwrap().is_empty());
        // Impossible deadline matches nothing.
        let req = MatchRequest {
            deadline_s: Some(fastest * 0.01),
            ..MatchRequest::for_service("X")
        };
        assert!(matchmake(&w, &req).is_err());
        // Budget zero matches nothing.
        let req = MatchRequest {
            budget: Some(0.0),
            ..MatchRequest::for_service("X")
        };
        assert!(matchmake(&w, &req).is_err());
    }

    #[test]
    fn down_containers_are_excluded() {
        let mut w = world(false);
        w.set_container_up("ac-pc", false).unwrap();
        let matches = matchmake(&w, &MatchRequest::for_service("X")).unwrap();
        assert!(matches.iter().all(|m| m.container != "ac-pc"));
    }

    #[test]
    fn history_overrides_the_model_for_deadlines() {
        use crate::brokerage::BrokerageService;
        use crate::world::ExecutionRecord;
        let mut w = world(false);
        // The model thinks the PC cluster is fastest; fabricate a history
        // where it has been pathologically slow (hot-spot contention the
        // model cannot see).
        let model = matchmake(&w, &MatchRequest::for_service("X")).unwrap();
        assert_eq!(model[0].container, "ac-pc");
        let model_best = model[0].duration_s;
        for _ in 0..3 {
            w.history.push(ExecutionRecord {
                service: "X".into(),
                container: "ac-pc".into(),
                resource: "pc".into(),
                duration_s: model_best * 50.0,
                cost: 1.0,
                success: true,
                at_s: 0.0,
            });
        }
        let mut broker = BrokerageService::new();
        broker.refresh(&w);
        // A deadline the model would accept for ac-pc, but history rejects.
        let request = MatchRequest {
            deadline_s: Some(model_best * 10.0),
            ..MatchRequest::for_service("X")
        };
        let informed = matchmake_with_history(&w, &broker, &request).unwrap();
        assert!(
            informed.iter().all(|m| m.container != "ac-pc"),
            "history-informed matching must drop the historically slow host: {informed:?}"
        );
        // Without history the same request happily picks ac-pc.
        let naive = matchmake(&w, &request).unwrap();
        assert_eq!(naive[0].container, "ac-pc");
    }

    #[test]
    fn history_informed_matching_errors_when_nothing_fits() {
        use crate::brokerage::BrokerageService;
        let w = world(false);
        let broker = BrokerageService::new();
        let request = MatchRequest {
            deadline_s: Some(1e-9),
            ..MatchRequest::for_service("X")
        };
        assert!(matchmake_with_history(&w, &broker, &request).is_err());
    }

    #[test]
    fn empty_topology_degrades_to_no_matching_offer() {
        // A world with the offering registered but no grid behind it:
        // matchmaking must answer with its usual error, not panic.
        let mut w = GridWorld::new(GridTopology {
            resources: vec![],
            containers: vec![],
        });
        w.offer(ServiceOffering::new(
            "X",
            Vec::<String>::new(),
            vec![OutputSpec::plain("Out")],
        ));
        assert!(matches!(
            matchmake(&w, &MatchRequest::for_service("X")),
            Err(ServiceError::Grid(
                gridflow_grid::GridError::NoMatchingOffer(_)
            ))
        ));
        let broker = crate::brokerage::BrokerageService::new();
        assert!(matchmake_with_history(&w, &broker, &MatchRequest::for_service("X")).is_err());
    }

    #[test]
    fn all_nodes_down_degrades_to_no_matching_offer() {
        let mut w = world(false);
        for id in ["ac-sc", "ac-pc", "ac-ws"] {
            w.set_container_up(id, false).unwrap();
        }
        assert!(matches!(
            matchmake(&w, &MatchRequest::for_service("X")),
            Err(ServiceError::Grid(
                gridflow_grid::GridError::NoMatchingOffer(_)
            ))
        ));
        // Back up, matches flow again — the outage was not sticky.
        w.set_container_up("ac-pc", true).unwrap();
        assert_eq!(
            matchmake(&w, &MatchRequest::for_service("X"))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn quarantined_containers_are_filtered_from_matches() {
        use gridflow_recovery::{Admission, RecoveryManager, RecoveryPolicy};
        let w = world(false);
        let mut recovery = RecoveryManager::new(RecoveryPolicy::standard());
        // Trip ac-pc's breaker (threshold 3 under the standard policy).
        for _ in 0..3 {
            recovery.record_failure("ac-pc");
        }
        let admitted =
            matchmake_admitted(&w, &MatchRequest::for_service("X"), &mut recovery).unwrap();
        assert_eq!(admitted.len(), 2);
        assert!(admitted.iter().all(|m| m.container != "ac-pc"));
        // Serve the cooldown: the filter itself moves the breaker to
        // half-open and readmits the container as a probe candidate.
        recovery.tick(1_000);
        let readmitted =
            matchmake_admitted(&w, &MatchRequest::for_service("X"), &mut recovery).unwrap();
        assert_eq!(readmitted.len(), 3);
        assert_eq!(recovery.admit("ac-pc"), Admission::Probe);
        // Quarantining everything yields an empty (not error) result.
        let mut all_out = RecoveryManager::new(RecoveryPolicy::standard());
        for c in ["ac-sc", "ac-pc", "ac-ws"] {
            for _ in 0..3 {
                all_out.record_failure(c);
            }
        }
        assert!(
            matchmake_admitted(&w, &MatchRequest::for_service("X"), &mut all_out)
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn indexed_path_matches_the_scan_oracle_across_mutations() {
        let mut w = world(false);
        let requests = [
            MatchRequest::for_service("X"),
            MatchRequest {
                require_fine_grain: true,
                ..MatchRequest::for_service("X")
            },
            MatchRequest {
                domain: Some("ucf.edu".into()),
                min_reliability: 0.9,
                ..MatchRequest::for_service("X")
            },
            MatchRequest {
                budget: Some(1.0e9),
                deadline_s: Some(1.0e9),
                ..MatchRequest::for_service("X")
            },
        ];
        let assert_agree = |w: &GridWorld| {
            for request in &requests {
                let offering = w.offering(&request.service).unwrap();
                let indexed = indexed_matches(w, request).expect("index path answers");
                let scanned = scan_matches(w, offering, request);
                assert_eq!(indexed, scanned, "request {request:?}");
            }
        };
        assert_agree(&w);
        // Container flips bump the generation; the rebuilt index must
        // track them exactly.
        w.set_container_up("ac-pc", false).unwrap();
        assert_agree(&w);
        w.set_container_up("ac-pc", true).unwrap();
        assert_agree(&w);
        // Catalog changes too (the new offering re-ranks nothing for
        // `X` but forces a rebuild).
        w.offer(
            ServiceOffering::new("Y", Vec::<String>::new(), vec![OutputSpec::plain("Out")])
                .with_demand(TaskDemand::coarse("Y", 5.0, 1.0)),
        );
        assert_agree(&w);
    }

    #[test]
    fn index_rebuilds_on_generation_bump_not_per_call() {
        let w = world(false);
        let _ = matchmake(&w, &MatchRequest::for_service("X")).unwrap();
        let gen_after_first = w.match_index.lock().as_ref().unwrap().generation();
        let _ = matchmake(&w, &MatchRequest::for_service("X")).unwrap();
        assert_eq!(
            w.match_index.lock().as_ref().unwrap().generation(),
            gen_after_first,
            "a second query at the same generation reuses the cache"
        );
        assert_eq!(gen_after_first, w.generation());
    }

    #[test]
    fn untracked_topology_mutation_falls_back_to_the_scan() {
        let mut w = world(false);
        let before = matchmake(&w, &MatchRequest::for_service("X")).unwrap();
        assert_eq!(before.len(), 3);
        // Remove a container behind the generation counter's back: the
        // index's position check must notice and the scan must answer.
        w.topology.containers.retain(|c| c.id != "ac-pc");
        let after = matchmake(&w, &MatchRequest::for_service("X")).unwrap();
        assert_eq!(after.len(), 2);
        assert!(after.iter().all(|m| m.container != "ac-pc"));
        // The poisoned cache was dropped; the next call rebuilds a
        // fresh index that agrees with the scan again.
        let offering = w.offering("X").unwrap();
        let indexed =
            indexed_matches(&w, &MatchRequest::for_service("X")).expect("rebuilt index answers");
        assert_eq!(
            indexed,
            scan_matches(&w, offering, &MatchRequest::for_service("X"))
        );
    }

    #[test]
    fn sharded_index_merges_to_the_exact_global_ranking() {
        let mut w = world(false);
        let requests = [
            MatchRequest::for_service("X"),
            MatchRequest {
                require_fine_grain: true,
                ..MatchRequest::for_service("X")
            },
            MatchRequest {
                domain: Some("ucf.edu".into()),
                min_reliability: 0.9,
                ..MatchRequest::for_service("X")
            },
            MatchRequest {
                budget: Some(1.0e9),
                deadline_s: Some(1.0e9),
                ..MatchRequest::for_service("X")
            },
        ];
        let assert_agree = |w: &GridWorld| {
            for shards in [1, 2, 3, 8] {
                let idx = ShardedMatchIndex::build(w, shards);
                assert_eq!(idx.shards(), shards);
                assert_eq!(idx.generation(), w.generation());
                for request in &requests {
                    let offering = w.offering(&request.service).unwrap();
                    let sharded = idx.matches(w, request).expect("fresh index answers");
                    let scanned = scan_matches(w, offering, request);
                    assert_eq!(sharded, scanned, "shards={shards} request={request:?}");
                }
            }
        };
        assert_agree(&w);
        w.set_container_up("ac-pc", false).unwrap();
        assert_agree(&w);
        w.set_container_up("ac-pc", true).unwrap();
        assert_agree(&w);
    }

    #[test]
    fn sharded_index_declines_when_stale_or_poisoned() {
        let mut w = world(false);
        let idx = ShardedMatchIndex::build(&w, 2);
        // Unknown service: no answer (matchmake would error on it too).
        assert!(idx
            .matches(&w, &MatchRequest::for_service("nope"))
            .is_none());
        // A generation bump invalidates the whole index.
        w.set_container_up("ac-pc", false).unwrap();
        assert!(idx.matches(&w, &MatchRequest::for_service("X")).is_none());
        // An untracked topology mutation trips the position check.
        let mut w2 = world(false);
        let idx2 = ShardedMatchIndex::build(&w2, 2);
        w2.topology.containers.retain(|c| c.id != "ac-pc");
        assert!(idx2.matches(&w2, &MatchRequest::for_service("X")).is_none());
        // An empty-but-valid answer is Some(vec![]), not None: every
        // candidate filtered is an answer, not a fallback.
        let w3 = world(false);
        let idx3 = ShardedMatchIndex::build(&w3, 2);
        let impossible = MatchRequest {
            budget: Some(0.0),
            ..MatchRequest::for_service("X")
        };
        assert_eq!(idx3.matches(&w3, &impossible), Some(vec![]));
    }

    #[test]
    fn sharded_index_on_generated_topologies_agrees_with_matchmake() {
        use crate::world::OutputSpec;
        use gridflow_grid::workload::TaskDemand;
        // Fleet-scale shape: a generated topology, several services,
        // every (shards, request) cell against the matchmake oracle.
        let services: Vec<String> = ["POD", "P3DR", "POR"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let topo = gridflow_grid::GridTopology::generate(24, &services, 42);
        let mut w = GridWorld::new(topo);
        for s in &services {
            w.offer(
                ServiceOffering::new(
                    s.clone(),
                    Vec::<String>::new(),
                    vec![OutputSpec::plain("Out")],
                )
                .with_demand(TaskDemand::coarse(s.clone(), 100.0, 5.0)),
            );
        }
        w.set_container_up("ac-3", false).unwrap();
        for shards in [1, 2, 5, 24, 64] {
            let idx = ShardedMatchIndex::build(&w, shards);
            for s in &services {
                let sharded = idx.matches(&w, &MatchRequest::for_service(s.as_str()));
                let global = matchmake(&w, &MatchRequest::for_service(s.as_str())).unwrap();
                assert_eq!(sharded, Some(global), "shards={shards} service={s}");
            }
        }
    }

    #[test]
    fn unknown_service_errors() {
        let w = world(false);
        assert!(matches!(
            matchmake(&w, &MatchRequest::for_service("nope")),
            Err(ServiceError::UnknownOffering(_))
        ));
    }
}
