//! The persistent storage service: "Persistent storage services provide
//! access to the data needed for the execution of user tasks" (§2), and
//! process descriptions "can be archived using the system knowledge
//! base" (§3).
//!
//! A versioned key-value store over JSON documents: every `put` appends a
//! new version; readers fetch the latest or any historical version; the
//! whole store snapshots to a single JSON document for durability.

use crate::error::{Result, ServiceError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One stored version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionedDoc {
    /// 1-based version number.
    pub version: u64,
    /// The document.
    pub body: serde_json::Value,
}

/// The storage service core.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StorageService {
    entries: BTreeMap<String, Vec<VersionedDoc>>,
}

impl StorageService {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a document under `key`, returning the new version number.
    pub fn put(&mut self, key: impl Into<String>, body: serde_json::Value) -> u64 {
        let versions = self.entries.entry(key.into()).or_default();
        let version = versions.len() as u64 + 1;
        versions.push(VersionedDoc { version, body });
        version
    }

    /// Fetch the latest version of `key`.
    pub fn get(&self, key: &str) -> Result<&VersionedDoc> {
        self.entries
            .get(key)
            .and_then(|v| v.last())
            .ok_or_else(|| ServiceError::NotFound(key.to_owned()))
    }

    /// Fetch a specific version of `key`.
    pub fn get_version(&self, key: &str, version: u64) -> Result<&VersionedDoc> {
        self.entries
            .get(key)
            .and_then(|v| v.iter().find(|d| d.version == version))
            .ok_or_else(|| ServiceError::NotFound(format!("{key}@v{version}")))
    }

    /// Delete all versions of `key`, returning how many were removed.
    pub fn delete(&mut self, key: &str) -> Result<usize> {
        self.entries
            .remove(key)
            .map(|v| v.len())
            .ok_or_else(|| ServiceError::NotFound(key.to_owned()))
    }

    /// All keys, in order.
    pub fn keys(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Keys matching a prefix (cheap namespace listing).
    pub fn keys_with_prefix<'a>(&'a self, prefix: &'a str) -> Vec<&'a str> {
        self.entries
            .keys()
            .filter(move |k| k.starts_with(prefix))
            .map(String::as_str)
            .collect()
    }

    /// Number of stored versions of `key` (0 if absent).
    pub fn version_count(&self, key: &str) -> u64 {
        self.entries.get(key).map(|v| v.len() as u64).unwrap_or(0)
    }

    /// Serialize the whole store.
    pub fn snapshot(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| ServiceError::BadRequest(format!("snapshot: {e}")))
    }

    /// Restore a store from a snapshot.
    pub fn restore(snapshot: &str) -> Result<Self> {
        serde_json::from_str(snapshot)
            .map_err(|e| ServiceError::BadRequest(format!("restore: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn put_get_versioning() {
        let mut s = StorageService::new();
        assert_eq!(s.put("pd/3dsd", json!({"v": 1})), 1);
        assert_eq!(s.put("pd/3dsd", json!({"v": 2})), 2);
        assert_eq!(s.get("pd/3dsd").unwrap().body, json!({"v": 2}));
        assert_eq!(s.get_version("pd/3dsd", 1).unwrap().body, json!({"v": 1}));
        assert_eq!(s.version_count("pd/3dsd"), 2);
        assert_eq!(s.version_count("nope"), 0);
    }

    #[test]
    fn missing_keys_and_versions_error() {
        let s = StorageService::new();
        assert!(matches!(s.get("x"), Err(ServiceError::NotFound(_))));
        let mut s = StorageService::new();
        s.put("x", json!(1));
        assert!(s.get_version("x", 2).is_err());
    }

    #[test]
    fn delete_removes_all_versions() {
        let mut s = StorageService::new();
        s.put("k", json!(1));
        s.put("k", json!(2));
        assert_eq!(s.delete("k").unwrap(), 2);
        assert!(s.get("k").is_err());
        assert!(s.delete("k").is_err());
    }

    #[test]
    fn prefix_listing() {
        let mut s = StorageService::new();
        s.put("pd/a", json!(1));
        s.put("pd/b", json!(1));
        s.put("case/a", json!(1));
        assert_eq!(s.keys_with_prefix("pd/"), vec!["pd/a", "pd/b"]);
        assert_eq!(s.keys().len(), 3);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut s = StorageService::new();
        s.put("a", json!({"x": [1, 2, 3]}));
        s.put("a", json!({"x": [4]}));
        s.put("b", json!("text"));
        let snap = s.snapshot().unwrap();
        let restored = StorageService::restore(&snap).unwrap();
        assert_eq!(s, restored);
    }
}
