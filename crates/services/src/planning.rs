//! The planning service core (§3.3): "The function of the planning
//! service in our framework is to generate valid process descriptions,
//! for the end users."
//!
//! A [`PlanRequest`] carries what the coordination service sends in
//! Fig. 2 — "1) the set of the initial data available to the end user,
//! 2) the goal of planning, and 3) other useful information" — plus, for
//! re-planning (Fig. 3), the data already produced and the activities
//! observed to be non-executable.

use crate::error::{Result, ServiceError};
use crate::plan_cache::{PlanCacheHandle, PlanFetchOutcome};
use crate::world::GridWorld;
use gridflow_plan::{canonicalize, tree_to_graph, PlanNode};
use gridflow_planner::prelude::*;
use gridflow_process::ProcessGraph;
use gridflow_telemetry::{TraceEvent, TraceHandle, TraceSink};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A planning (or re-planning) request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PlanRequest {
    /// Classifications of the initially available data.
    pub initial: Vec<String>,
    /// Goal specifications.
    pub goals: Vec<GoalSpec>,
    /// Re-planning: classifications already produced by the aborted
    /// enactment.
    pub produced: Vec<String>,
    /// Re-planning: service names to avoid.
    pub excluded: Vec<String>,
}

/// A produced plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanResponse {
    /// The winning plan tree (simplified and canonical).
    pub tree: PlanNode,
    /// The same plan lowered to activity/transition form, ready for
    /// enactment.
    pub graph: ProcessGraph,
    /// Fitness of the raw GP winner.
    pub fitness: Fitness,
    /// Whether the plan is perfect (valid everywhere, all goals met in
    /// simulation).  Imperfect plans are still returned — the
    /// coordination service decides whether to enact them.
    pub viable: bool,
    /// Per-generation statistics of the underlying run.
    pub history: Vec<GenerationStats>,
}

/// The planning service core.
#[derive(Debug, Clone, Default)]
pub struct PlanningService {
    /// GP configuration used for every request.
    pub config: GpConfig,
    /// Optional trace sink: per-generation GP statistics as events.
    trace: TraceHandle,
    /// Optional fleet-shared plan cache with single-flight coalescing.
    cache: Option<PlanCacheHandle>,
}

impl PlanningService {
    /// A service with the given GP configuration.
    pub fn new(config: GpConfig) -> Self {
        PlanningService {
            config,
            trace: TraceHandle::none(),
            cache: None,
        }
    }

    /// Record a `PlanGeneration` event per GP generation into `sink`.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = TraceHandle::new(sink);
        self
    }

    /// Record through an existing (possibly empty) handle.
    pub fn with_trace_handle(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Serve same-key requests from this fleet-shared cache instead of
    /// re-running GP (builder form).
    pub fn with_plan_cache(mut self, cache: PlanCacheHandle) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Install a fleet-shared plan cache after construction.
    pub fn set_plan_cache(&mut self, cache: PlanCacheHandle) {
        self.cache = Some(cache);
    }

    /// The installed plan cache, if any.
    pub fn plan_cache(&self) -> Option<&PlanCacheHandle> {
        self.cache.as_ref()
    }

    /// Handle one (re-)planning request against the world's service
    /// catalog.
    ///
    /// With a plan cache installed, the request's [`PlanKey`] is
    /// resolved against it first: hits and coalesced requests reuse the
    /// byte-identical cached plan (replaying its `plan.generation`
    /// history so traced runs stay conformant) and announce themselves
    /// with a `plan.cache_hit` / `plan.coalesced` event; misses emit
    /// `plan.cache_miss` and run GP exactly once per key fleet-wide.
    /// Without a cache the behavior (and trace) is unchanged.
    pub fn plan(&self, world: &GridWorld, request: &PlanRequest) -> Result<PlanResponse> {
        let mut initial = request.initial.clone();
        initial.extend(request.produced.iter().cloned());
        let problem = world
            .planning_problem(initial, request.goals.clone())
            .without_activities(request.excluded.iter().map(String::as_str));
        if problem.activities.is_empty() {
            return Err(ServiceError::NoViablePlan(
                "no activities remain after exclusions".into(),
            ));
        }
        let Some(cache) = &self.cache else {
            return self.run_gp(problem);
        };
        let key = PlanKey::compute(&self.config, &problem, &request.excluded);
        let outcome = cache.fetch_or_plan(key, || {
            // The miss announcement precedes the GP run so the
            // generation events that follow read as its body.
            self.trace
                .emit("planner", TraceEvent::PlanCacheMiss { key: key.hex() });
            self.run_gp(problem).map(Arc::new)
        });
        match outcome {
            PlanFetchOutcome::Hit(response) => {
                self.trace
                    .emit("planner", TraceEvent::PlanCacheHit { key: key.hex() });
                self.replay_history(&response);
                Ok((*response).clone())
            }
            PlanFetchOutcome::Ran(result) => result.map(|r| (*r).clone()),
            PlanFetchOutcome::Coalesced(result) => result.map(|response| {
                self.trace
                    .emit("planner", TraceEvent::PlanCoalesced { key: key.hex() });
                self.replay_history(&response);
                (*response).clone()
            }),
        }
    }

    /// Run GP on the (post-exclusion) problem and package the winner.
    fn run_gp(&self, problem: PlanningProblem) -> Result<PlanResponse> {
        let result = GpPlanner::new(self.config, problem).run();
        if self.trace.is_installed() {
            for g in &result.history {
                self.trace.emit(
                    "planner",
                    TraceEvent::PlanGeneration {
                        generation: g.generation,
                        best_overall: g.best.overall,
                        mean_overall: g.mean_overall,
                        mean_size: g.mean_size,
                    },
                );
            }
        }
        let viable = result.best_fitness.is_perfect();
        // Export form: abstract (`true`-conditioned) loops unroll to the
        // single pass the fitness simulation evaluated, then simplify and
        // canonicalize.
        let tree = result
            .best
            .unroll_abstract_iteratives()
            .simplify()
            .map(|t| canonicalize(&t))
            .unwrap_or(PlanNode::Sequential(vec![]));
        let graph = tree_to_graph("plan", &tree)?;
        Ok(PlanResponse {
            tree,
            graph,
            fitness: result.best_fitness,
            viable,
            history: result.history,
        })
    }

    /// Re-emit a cached run's per-generation statistics, so a trace
    /// with a warm cache carries the same `plan.generation` events a
    /// cold run would have produced.
    fn replay_history(&self, response: &PlanResponse) {
        if self.trace.is_installed() {
            for g in &response.history {
                self.trace.emit(
                    "planner",
                    TraceEvent::PlanGeneration {
                        generation: g.generation,
                        best_overall: g.best.overall,
                        mean_overall: g.mean_overall,
                        mean_size: g.mean_size,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{OutputSpec, ServiceOffering};
    use gridflow_grid::GridTopology;

    fn world() -> GridWorld {
        let names: Vec<String> = ["prep", "cook", "plate"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut w = GridWorld::new(GridTopology::generate(4, &names, 5));
        w.offer(ServiceOffering::new(
            "prep",
            ["Raw"],
            vec![OutputSpec::plain("Prepped")],
        ));
        w.offer(ServiceOffering::new(
            "cook",
            ["Prepped"],
            vec![OutputSpec::plain("Cooked")],
        ));
        w.offer(ServiceOffering::new(
            "plate",
            ["Cooked"],
            vec![OutputSpec::plain("Plated")],
        ));
        w
    }

    fn planner() -> PlanningService {
        PlanningService::new(GpConfig {
            population_size: 80,
            generations: 25,
            seed: 3,
            ..GpConfig::default()
        })
    }

    fn request() -> PlanRequest {
        PlanRequest {
            initial: vec!["Raw".into()],
            goals: vec![GoalSpec {
                classification: "Plated".into(),
                min_count: 1,
            }],
            produced: vec![],
            excluded: vec![],
        }
    }

    #[test]
    fn plans_a_three_step_chain() {
        let response = planner().plan(&world(), &request()).unwrap();
        assert!(response.viable, "fitness {:?}", response.fitness);
        let acts = response.tree.activities();
        assert!(acts.contains(&"prep"));
        assert!(acts.contains(&"cook"));
        assert!(acts.contains(&"plate"));
        response.graph.validate().unwrap();
    }

    #[test]
    fn produced_data_is_credited() {
        let mut req = request();
        req.produced = vec!["Cooked".into()];
        let response = planner().plan(&world(), &req).unwrap();
        assert!(response.viable);
        // `plate` alone suffices once `Cooked` exists; a minimal plan
        // should not need all three services.
        assert!(response.tree.size() <= 4, "tree: {:?}", response.tree);
    }

    #[test]
    fn exclusions_are_honored() {
        let mut req = request();
        req.excluded = vec!["plate".into()];
        let response = planner().plan(&world(), &req).unwrap();
        assert!(!response.viable, "plating is the only path to Plated");
        assert!(!response.tree.activities().contains(&"plate"));
    }

    #[test]
    fn excluding_everything_is_an_error() {
        let mut req = request();
        req.excluded = vec!["prep".into(), "cook".into(), "plate".into()];
        assert!(matches!(
            planner().plan(&world(), &req),
            Err(ServiceError::NoViablePlan(_))
        ));
    }

    #[test]
    fn cache_hit_returns_byte_identical_plan() {
        use crate::plan_cache::PlanCacheHandle;
        let cache = PlanCacheHandle::in_proc();
        let service = planner().with_plan_cache(cache.clone());
        let cold = service.plan(&world(), &request()).unwrap();
        assert_eq!(cache.len(), 1);
        let warm = service.plan(&world(), &request()).unwrap();
        assert_eq!(cold, warm, "cache hits must be byte-identical");
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        // A semantically different request keys separately.
        let mut other = request();
        other.excluded = vec!["cook".into()];
        let _ = service.plan(&world(), &other).unwrap();
        assert_eq!(cache.len(), 2);
        // And an uncached service is oblivious to all of it.
        let uncached = planner().plan(&world(), &request()).unwrap();
        assert_eq!(uncached, cold);
    }

    #[test]
    fn cached_runs_replay_identical_trace_events() {
        use crate::plan_cache::PlanCacheHandle;
        use gridflow_telemetry::TraceLog;
        use std::sync::Arc;

        let record = |service: &PlanningService| -> Vec<gridflow_telemetry::TraceRecord> {
            let log = Arc::new(TraceLog::new());
            let traced = service.clone().with_trace(log.clone());
            traced.plan(&world(), &request()).unwrap();
            log.records()
        };

        let uncached = record(&planner());
        let cache = PlanCacheHandle::in_proc();
        let cached = planner().with_plan_cache(cache.clone());
        let cold = record(&cached);
        let warm = record(&cached);

        // Cold = one miss announcement + the verbatim uncached events;
        // warm = one hit announcement + the replayed history.
        assert_eq!(cold.len(), uncached.len() + 1);
        assert_eq!(warm.len(), uncached.len() + 1);
        assert_eq!(cold[0].event.label(), "plan.cache_miss");
        assert_eq!(warm[0].event.label(), "plan.cache_hit");
        assert_eq!(cold[0].event.plan_key(), warm[0].event.plan_key());
        for (i, u) in uncached.iter().enumerate() {
            assert_eq!(cold[i + 1].event, u.event);
            assert_eq!(warm[i + 1].event, u.event);
        }
    }

    #[test]
    fn response_graph_matches_tree() {
        let response = planner().plan(&world(), &request()).unwrap();
        let mut from_graph: Vec<String> = response
            .graph
            .end_user_activities()
            .map(|a| a.service.clone().unwrap())
            .collect();
        let mut from_tree: Vec<String> = response
            .tree
            .activities()
            .iter()
            .map(|s| s.to_string())
            .collect();
        from_graph.sort();
        from_tree.sort();
        assert_eq!(from_graph, from_tree);
    }
}
