//! The authentication service: "The authentication services contribute
//! to the security of the environment" (§2).  The grid "consists of
//! autonomous nodes in different administrative domains" (§1), so
//! authorization is domain-scoped: a principal authenticates once and is
//! granted tokens whose capabilities list the domains it may dispatch
//! work into.
//!
//! This is a *simulation-grade* authenticator: secrets are verified by a
//! salted FNV-1a digest, which resists casual inspection of stored state
//! but is **not** a cryptographic KDF.  The substitution is documented in
//! DESIGN.md; nothing in the reproduced experiments depends on
//! cryptographic strength.

use crate::error::{Result, ServiceError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A granted token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Opaque token id.
    pub id: u64,
    /// Principal it was granted to.
    pub principal: String,
    /// Domains the holder may use.
    pub domains: Vec<String>,
    /// Remaining uses (tokens expire by use count in virtual worlds).
    pub remaining_uses: u32,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Principal {
    name: String,
    salt: u64,
    digest: u64,
    domains: Vec<String>,
}

/// The authentication service core.
#[derive(Debug, Clone, Default)]
pub struct AuthService {
    principals: BTreeMap<String, Principal>,
    tokens: BTreeMap<u64, Token>,
    next_token: u64,
    next_salt: u64,
}

fn fnv1a(salt: u64, secret: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64 ^ salt;
    for b in secret.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

impl AuthService {
    /// An empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enroll a principal with access to the given domains.
    pub fn enroll<I, S>(&mut self, name: impl Into<String>, secret: &str, domains: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let name = name.into();
        self.next_salt = self
            .next_salt
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let salt = self.next_salt;
        self.principals.insert(
            name.clone(),
            Principal {
                name,
                salt,
                digest: fnv1a(salt, secret),
                domains: domains.into_iter().map(Into::into).collect(),
            },
        );
    }

    /// Authenticate and mint a token with `uses` remaining uses.
    pub fn authenticate(&mut self, name: &str, secret: &str, uses: u32) -> Result<Token> {
        let principal = self
            .principals
            .get(name)
            .ok_or_else(|| ServiceError::AuthDenied(format!("unknown principal `{name}`")))?;
        if fnv1a(principal.salt, secret) != principal.digest {
            return Err(ServiceError::AuthDenied("bad secret".into()));
        }
        self.next_token += 1;
        let token = Token {
            id: self.next_token,
            principal: principal.name.clone(),
            domains: principal.domains.clone(),
            remaining_uses: uses,
        };
        self.tokens.insert(token.id, token.clone());
        Ok(token)
    }

    /// Check (and consume one use of) a token for dispatching into
    /// `domain`.
    pub fn authorize(&mut self, token_id: u64, domain: &str) -> Result<()> {
        let token = self
            .tokens
            .get_mut(&token_id)
            .ok_or_else(|| ServiceError::AuthDenied("unknown token".into()))?;
        if token.remaining_uses == 0 {
            return Err(ServiceError::AuthDenied("token expired".into()));
        }
        if !token.domains.iter().any(|d| d == domain) {
            return Err(ServiceError::AuthDenied(format!(
                "principal `{}` has no access to domain `{domain}`",
                token.principal
            )));
        }
        token.remaining_uses -= 1;
        Ok(())
    }

    /// Revoke a token.
    pub fn revoke(&mut self, token_id: u64) -> Result<()> {
        self.tokens
            .remove(&token_id)
            .map(|_| ())
            .ok_or_else(|| ServiceError::AuthDenied("unknown token".into()))
    }

    /// Number of live tokens.
    pub fn live_tokens(&self) -> usize {
        self.tokens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> AuthService {
        let mut auth = AuthService::new();
        auth.enroll("hyu", "virus-lab", ["ucf.edu", "purdue.edu"]);
        auth.enroll("guest", "guest", ["ucf.edu"]);
        auth
    }

    #[test]
    fn authenticate_and_authorize() {
        let mut auth = service();
        let token = auth.authenticate("hyu", "virus-lab", 3).unwrap();
        auth.authorize(token.id, "ucf.edu").unwrap();
        auth.authorize(token.id, "purdue.edu").unwrap();
        assert!(matches!(
            auth.authorize(token.id, "anl.gov"),
            Err(ServiceError::AuthDenied(_))
        ));
    }

    #[test]
    fn bad_secret_and_unknown_principal_denied() {
        let mut auth = service();
        assert!(auth.authenticate("hyu", "wrong", 1).is_err());
        assert!(auth.authenticate("nobody", "x", 1).is_err());
    }

    #[test]
    fn tokens_expire_by_use() {
        let mut auth = service();
        let token = auth.authenticate("guest", "guest", 2).unwrap();
        auth.authorize(token.id, "ucf.edu").unwrap();
        auth.authorize(token.id, "ucf.edu").unwrap();
        let err = auth.authorize(token.id, "ucf.edu").unwrap_err();
        assert!(err.to_string().contains("expired"));
    }

    #[test]
    fn failed_domain_check_does_not_consume_a_use() {
        let mut auth = service();
        let token = auth.authenticate("guest", "guest", 1).unwrap();
        let _ = auth.authorize(token.id, "anl.gov");
        auth.authorize(token.id, "ucf.edu").unwrap();
    }

    #[test]
    fn revoke_kills_token() {
        let mut auth = service();
        let token = auth.authenticate("hyu", "virus-lab", 10).unwrap();
        assert_eq!(auth.live_tokens(), 1);
        auth.revoke(token.id).unwrap();
        assert_eq!(auth.live_tokens(), 0);
        assert!(auth.authorize(token.id, "ucf.edu").is_err());
        assert!(auth.revoke(token.id).is_err());
    }

    #[test]
    fn same_secret_different_salts() {
        let mut auth = AuthService::new();
        auth.enroll("a", "s", ["d"]);
        auth.enroll("b", "s", ["d"]);
        let pa = auth.principals.get("a").unwrap().digest;
        let pb = auth.principals.get("b").unwrap().digest;
        assert_ne!(pa, pb, "salts must differentiate equal secrets");
    }
}
