//! The monitoring service: "Though the brokerage services make a best
//! effort to maintain accurate information regarding the state of
//! resources, such information may be obsolete.  Accurate information
//! about the status of a resource may be obtained using monitoring
//! services" (§2).
//!
//! Monitoring reads the live world; brokerage (see [`crate::brokerage`])
//! serves a cached snapshot that can go stale — the contrast the paper
//! draws.

use crate::world::GridWorld;
use gridflow_telemetry::{MetricsRegistry, TraceRecord};
use serde::{Deserialize, Serialize};

/// A live probe result for one container.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContainerStatus {
    /// Container id.
    pub container: String,
    /// Backing resource id.
    pub resource: String,
    /// Is it up right now?
    pub up: bool,
    /// Services it hosts.
    pub services: Vec<String>,
    /// Lifetime completed executions.
    pub completed: u64,
    /// Lifetime failed executions.
    pub failed: u64,
}

/// A live probe result for one resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceStatus {
    /// Resource id.
    pub resource: String,
    /// Equivalence class (brokerage grouping).
    pub class: String,
    /// Nodes busy on the market.
    pub load: u32,
    /// Total nodes.
    pub nodes: u32,
}

/// The monitoring service core (stateless: every call probes the live
/// world).
#[derive(Debug, Clone, Copy, Default)]
pub struct MonitoringService;

impl MonitoringService {
    /// Probe one container.
    pub fn probe_container(&self, world: &GridWorld, id: &str) -> Option<ContainerStatus> {
        world.topology.container(id).map(|c| ContainerStatus {
            container: c.id.clone(),
            resource: c.resource_id.clone(),
            up: c.up,
            services: c.services.clone(),
            completed: c.completed,
            failed: c.failed,
        })
    }

    /// Probe every container.
    pub fn probe_all_containers(&self, world: &GridWorld) -> Vec<ContainerStatus> {
        world
            .topology
            .containers
            .iter()
            .map(|c| self.probe_container(world, &c.id).expect("exists"))
            .collect()
    }

    /// Probe one resource (market load included).
    pub fn probe_resource(&self, world: &GridWorld, id: &str) -> Option<ResourceStatus> {
        let r = world.topology.resource(id)?;
        let load = world.market.offer(id).map(|o| o.load).unwrap_or(0);
        Some(ResourceStatus {
            resource: r.id.clone(),
            class: r.equivalence_class(),
            load,
            nodes: r.nodes,
        })
    }

    /// Fraction of containers currently up.
    pub fn availability(&self, world: &GridWorld) -> f64 {
        let total = world.topology.containers.len();
        if total == 0 {
            return 1.0;
        }
        let up = world.topology.containers.iter().filter(|c| c.up).count();
        up as f64 / total as f64
    }

    /// Probe every container and feed the up/down results into the
    /// recovery layer's circuit breakers — the paper's monitoring
    /// feedback driving rescheduling.  Down containers accrue breaker
    /// failures (quarantining them without wasting dispatches); open
    /// breakers whose cooldown has elapsed take the probe as their
    /// half-open trial, so a healthy container is readmitted here.
    /// Returns the number of containers probed.
    pub fn feed_recovery(
        &self,
        world: &GridWorld,
        recovery: &mut gridflow_recovery::RecoveryManager,
    ) -> usize {
        let statuses = self.probe_all_containers(world);
        let fed = statuses.len();
        for status in statuses {
            recovery.note_probe(&status.container, status.up);
        }
        fed
    }

    /// Fold an execution trace into counters and virtual-time latency
    /// histograms.  The registry inherits the trace's determinism:
    /// identical seeds → identical metrics.
    pub fn metrics_from_trace(&self, records: &[TraceRecord]) -> MetricsRegistry {
        MetricsRegistry::from_trace(records)
    }

    /// A live-state + execution-history summary: the availability probe
    /// (what is up *now*) alongside the metrics of what *happened* — the
    /// paper's monitoring/information-service pairing in one view.
    pub fn summary(&self, world: &GridWorld, records: &[TraceRecord]) -> MonitoringSummary {
        MonitoringSummary {
            availability: self.availability(world),
            metrics: self.metrics_from_trace(records),
        }
    }
}

/// Live availability plus trace-derived metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitoringSummary {
    /// Fraction of containers currently up.
    pub availability: f64,
    /// Counters and latency histograms folded from the trace.
    pub metrics: MetricsRegistry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridflow_grid::GridTopology;

    fn world() -> GridWorld {
        GridWorld::new(GridTopology::generate(5, &["S".into()], 1))
    }

    #[test]
    fn probe_container_reports_live_state() {
        let mut w = world();
        let mon = MonitoringService;
        let id = w.topology.containers[0].id.clone();
        let before = mon.probe_container(&w, &id).unwrap();
        assert!(before.up);
        w.set_container_up(&id, false).unwrap();
        let after = mon.probe_container(&w, &id).unwrap();
        assert!(!after.up);
        assert!(mon.probe_container(&w, "ghost").is_none());
    }

    #[test]
    fn probe_all_and_availability() {
        let mut w = world();
        let mon = MonitoringService;
        assert_eq!(mon.probe_all_containers(&w).len(), 5);
        assert_eq!(mon.availability(&w), 1.0);
        let id = w.topology.containers[0].id.clone();
        w.set_container_up(&id, false).unwrap();
        assert!((mon.availability(&w) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn probe_resource_includes_market_load() {
        let mut w = world();
        let mon = MonitoringService;
        let rid = w.topology.resources[0].id.clone();
        let before = mon.probe_resource(&w, &rid).unwrap();
        assert_eq!(before.load, 0);
        let nodes = 1;
        w.market
            .acquire(nodes, f64::INFINITY, |o| o.resource.id == rid)
            .unwrap();
        let after = mon.probe_resource(&w, &rid).unwrap();
        assert_eq!(after.load, nodes);
    }

    #[test]
    fn empty_world_is_fully_available() {
        let w = GridWorld::new(GridTopology::generate(0, &[], 1));
        assert_eq!(MonitoringService.availability(&w), 1.0);
    }

    #[test]
    fn availability_tracks_partial_outages_down_to_zero_and_back() {
        let mut w = world();
        let mon = MonitoringService;
        let ids: Vec<String> = w.topology.containers.iter().map(|c| c.id.clone()).collect();
        // Take the containers down one by one: availability steps through
        // every fraction, never panicking mid-outage.
        for (downed, id) in ids.iter().enumerate() {
            w.set_container_up(id, false).unwrap();
            let expected = (ids.len() - downed - 1) as f64 / ids.len() as f64;
            assert!((mon.availability(&w) - expected).abs() < 1e-12);
        }
        assert_eq!(mon.availability(&w), 0.0);
        // Probes keep working during the blackout…
        assert!(mon.probe_all_containers(&w).iter().all(|c| !c.up));
        // …and recovery is symmetric.
        w.set_container_up(&ids[0], true).unwrap();
        assert!((mon.availability(&w) - 1.0 / ids.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn probes_feed_breakers_down_to_quarantine_and_back_to_closed() {
        use gridflow_recovery::{Admission, BreakerConfig, RecoveryManager, RecoveryPolicy};
        let mut w = world();
        let mon = MonitoringService;
        let mut recovery = RecoveryManager::new(RecoveryPolicy {
            breaker: Some(BreakerConfig {
                failure_threshold: 2,
                open_ticks: 5,
            }),
            ..RecoveryPolicy::standard()
        });
        let id = w.topology.containers[0].id.clone();
        // Healthy world: probes leave the breakers untouched.
        assert_eq!(mon.feed_recovery(&w, &mut recovery), 5);
        assert!(recovery.quarantined().is_empty());
        // A downed container accrues probe failures until quarantined.
        w.set_container_up(&id, false).unwrap();
        mon.feed_recovery(&w, &mut recovery);
        mon.feed_recovery(&w, &mut recovery);
        assert_eq!(recovery.admit(&id), Admission::Reject);
        // It recovers; once the cooldown elapses, the next probe is the
        // half-open trial and readmits it.
        w.set_container_up(&id, true).unwrap();
        recovery.tick(5);
        mon.feed_recovery(&w, &mut recovery);
        assert_eq!(recovery.admit(&id), Admission::Allow);
    }

    #[test]
    fn summary_pairs_degraded_availability_with_trace_metrics() {
        use gridflow_telemetry::TraceEvent;
        let mut w = world();
        let id = w.topology.containers[0].id.clone();
        w.set_container_up(&id, false).unwrap();
        let records = vec![TraceRecord {
            seq: 0,
            tick: 0,
            at_s: 0.0,
            source: "runner".into(),
            event: TraceEvent::NodeLost {
                container: id,
                after_executions: 0,
            },
        }];
        let summary = MonitoringService.summary(&w, &records);
        assert!((summary.availability - 0.8).abs() < 1e-12);
        assert_eq!(summary.metrics.counter("fault.node_lost"), 1);
    }
}
