//! Enactment → ontology mirroring.
//!
//! Fig. 13's instances exist so that "the coordination service \[can\]
//! automate the execution": the task, its process description, its
//! activities with `Status` / `Execution Location` / `Retry Count` /
//! `Dispatched By` slots, and the data items produced.  This module
//! builds exactly that record from an [`EnactmentReport`] — the populated
//! ontology an information or storage service would archive after (or
//! during) a run.

use crate::coordination::EnactmentReport;
use crate::error::Result;
use gridflow_ontology::{schema, Instance, KnowledgeBase, Value};
use gridflow_process::{CaseDescription, ProcessGraph};
use std::collections::BTreeMap;

/// Build the populated ontology describing one enactment.
///
/// * one `Task` instance (`task_id`), with status
///   `Completed` / `Failed`, its data and result sets, and references to
///   the process and case descriptions;
/// * one `ProcessDescription` and one `CaseDescription` instance;
/// * one `Activity` instance per graph activity, with `Status`
///   (`Completed` / `Failed` / `Pending`), `Execution Location` (the
///   container of the last successful run), `Retry Count` (failed
///   attempts), and `Dispatched By`;
/// * one `Transition` instance per graph transition;
/// * one `Data` instance per item of the final data state.
pub fn track_enactment(
    task_id: &str,
    graph: &ProcessGraph,
    case: &CaseDescription,
    report: &EnactmentReport,
    dispatcher: &str,
) -> Result<KnowledgeBase> {
    let mut kb = schema::grid_ontology_shell();
    kb.name = format!("enactment-{task_id}");

    // --- Data items of the final state --------------------------------
    for (id, item) in report.final_state.iter() {
        let mut inst = Instance::new(id, schema::classes::DATA).with("Name", Value::str(id));
        if let Some(classification) = item.classification() {
            inst.set("Classification", Value::str(classification));
        }
        if let Some(value) = item.get("Value") {
            inst.set("Value", value.clone());
        }
        if let Some(size) = item.get("Size") {
            inst.set("Size", size.clone());
        }
        if case.initial_data.contains(id) {
            inst.set("Creator", Value::str("User"));
        }
        kb.add_instance(inst)?;
    }

    // --- Activities ----------------------------------------------------
    // Last successful container and failure counts per activity id.
    let mut location: BTreeMap<&str, &str> = BTreeMap::new();
    let mut runs: BTreeMap<&str, usize> = BTreeMap::new();
    for e in &report.executions {
        location.insert(e.activity.as_str(), e.container.as_str());
        *runs.entry(e.activity.as_str()).or_insert(0) += 1;
    }
    let mut retries: BTreeMap<&str, i64> = BTreeMap::new();
    for (activity, _) in &report.failed_attempts {
        *retries.entry(activity.as_str()).or_insert(0) += 1;
    }
    for a in graph.activities() {
        let status = if runs.contains_key(a.id.as_str()) {
            "Completed"
        } else if retries.contains_key(a.id.as_str()) {
            "Failed"
        } else if a.kind.is_flow_control() {
            "Flow"
        } else {
            "Pending"
        };
        let mut inst = Instance::new(a.id.clone(), schema::classes::ACTIVITY)
            .with("ID", Value::str(a.id.clone()))
            .with("Name", Value::str(a.id.clone()))
            .with("Task ID", Value::str(task_id))
            .with("Type", Value::str(a.kind.ontology_type()))
            .with("Status", Value::str(status))
            .with(
                "Retry Count",
                Value::Int(*retries.get(a.id.as_str()).unwrap_or(&0)),
            );
        if let Some(service) = &a.service {
            inst.set("Service Name", Value::str(service.clone()));
        }
        if let Some(container) = location.get(a.id.as_str()) {
            inst.set("Execution Location", Value::str(*container));
            inst.set("Dispatched By", Value::str(dispatcher));
        }
        kb.add_instance(inst)?;
    }

    // --- Transitions -----------------------------------------------------
    for t in graph.transitions() {
        kb.add_instance(
            Instance::new(t.id.clone(), schema::classes::TRANSITION)
                .with("ID", Value::str(t.id.clone()))
                .with("Source Activity", Value::reference(t.source.clone()))
                .with("Destination Activity", Value::reference(t.dest.clone())),
        )?;
    }

    // --- Process / case description / task -------------------------------
    let pd_id = format!("PD-{task_id}");
    kb.add_instance(
        Instance::new(pd_id.clone(), schema::classes::PROCESS_DESCRIPTION)
            .with("Name", Value::str(graph.name.clone()))
            .with(
                "Activity Set",
                Value::ref_list(graph.activities().iter().map(|a| a.id.clone())),
            )
            .with(
                "Transition Set",
                Value::ref_list(graph.transitions().iter().map(|t| t.id.clone())),
            ),
    )?;
    let cd_id = format!("CD-{task_id}");
    kb.add_instance(
        Instance::new(cd_id.clone(), schema::classes::CASE_DESCRIPTION)
            .with("Name", Value::str(case.name.clone()))
            .with(
                "Initial Data Set",
                Value::ref_list(case.initial_data.ids().map(str::to_owned)),
            )
            .with(
                "Constraint",
                Value::str_list(
                    case.constraints
                        .iter()
                        .map(|(name, cond)| format!("{name}: {cond}")),
                ),
            ),
    )?;
    kb.add_instance(
        Instance::new(task_id, schema::classes::TASK)
            .with("ID", Value::str(task_id))
            .with("Name", Value::str(case.name.clone()))
            .with(
                "Status",
                Value::str(if report.success {
                    "Completed"
                } else {
                    "Failed"
                }),
            )
            .with(
                "Data Set",
                Value::ref_list(case.initial_data.ids().map(str::to_owned)),
            )
            .with(
                "Result Set",
                Value::ref_list(
                    case.result_set
                        .iter()
                        .filter(|id| report.final_state.contains(id))
                        .cloned(),
                ),
            )
            .with("Process Description", Value::reference(pd_id))
            .with("Case Description", Value::reference(cd_id))
            .with("Need Planning", Value::Bool(report.replans > 0)),
    )?;
    Ok(kb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordination::Enactor;
    use crate::world::{GridWorld, OutputSpec, ServiceOffering};
    use gridflow_grid::container::ApplicationContainer;
    use gridflow_grid::resource::{Resource, ResourceKind};
    use gridflow_grid::GridTopology;
    use gridflow_process::{lower::lower, parser::parse_process, Condition, DataItem};

    fn setup() -> (GridWorld, ProcessGraph, CaseDescription) {
        let resources =
            vec![Resource::new("r1", ResourceKind::PcCluster).with_software(["step1", "step2"])];
        let containers = vec![ApplicationContainer::new("ac-1", "r1").hosting(["step1", "step2"])];
        let mut world = GridWorld::new(GridTopology {
            resources,
            containers,
        });
        world.offer(ServiceOffering::new(
            "step1",
            ["Seed"],
            vec![OutputSpec::plain("Mid")],
        ));
        world.offer(ServiceOffering::new(
            "step2",
            ["Mid"],
            vec![OutputSpec::plain("Done")],
        ));
        let graph = lower(
            "two-step",
            &parse_process("BEGIN step1; step2; END").unwrap(),
        )
        .unwrap();
        let case = CaseDescription::new("two-step-case")
            .with_data("D1", DataItem::classified("Seed"))
            .with_goal("G1", Condition::True)
            .with_constraint("ConsX", Condition::Exists("D1".into()))
            .with_result("D101");
        (world, graph, case)
    }

    #[test]
    fn successful_enactment_produces_a_valid_record() {
        let (mut world, graph, case) = setup();
        let report = Enactor::default().enact(&mut world, &graph, &case);
        assert!(report.success);
        let kb = track_enactment("T9", &graph, &case, &report, "coordination-1").unwrap();
        assert!(kb.validate_all().is_empty());
        assert!(kb.dangling_refs().is_empty(), "{:?}", kb.dangling_refs());

        let task = kb.instance("T9").unwrap();
        assert_eq!(task.get_str("Status"), Some("Completed"));
        assert_eq!(task.get("Need Planning"), Some(&Value::Bool(false)));

        let a = kb.instance("step1").unwrap();
        assert_eq!(a.get_str("Status"), Some("Completed"));
        assert_eq!(a.get_str("Execution Location"), Some("ac-1"));
        assert_eq!(a.get_str("Dispatched By"), Some("coordination-1"));
        assert_eq!(a.get_int("Retry Count"), Some(0));

        // Produced data appear with their classifications.
        assert!(kb
            .instances_of(schema::classes::DATA)
            .any(|d| d.get_str("Classification") == Some("Done")));
    }

    #[test]
    fn failed_enactment_records_failure_status_and_retries() {
        let (mut world, graph, case) = setup();
        world.set_container_up("ac-1", false).unwrap();
        let report = Enactor::default().enact(&mut world, &graph, &case);
        assert!(!report.success);
        let kb = track_enactment("T10", &graph, &case, &report, "coordination-1").unwrap();
        let task = kb.instance("T10").unwrap();
        assert_eq!(task.get_str("Status"), Some("Failed"));
        // step1 never ran (matchmaking found nothing), step2 pending.
        let s1 = kb.instance("step1").unwrap();
        assert_eq!(s1.get_str("Status"), Some("Pending"));
        let s2 = kb.instance("step2").unwrap();
        assert_eq!(s2.get_str("Status"), Some("Pending"));
    }

    #[test]
    fn flow_control_activities_get_flow_status() {
        let (mut world, graph, case) = setup();
        let report = Enactor::default().enact(&mut world, &graph, &case);
        let kb = track_enactment("T11", &graph, &case, &report, "c").unwrap();
        let begin = kb.instance("BEGIN").unwrap();
        assert_eq!(begin.get_str("Status"), Some("Flow"));
    }

    #[test]
    fn result_set_lists_only_materialized_results() {
        let (mut world, graph, case) = setup();
        let report = Enactor::default().enact(&mut world, &graph, &case);
        let kb = track_enactment("T12", &graph, &case, &report, "c").unwrap();
        let task = kb.instance("T12").unwrap();
        // The case asked for D101 as a result; it was produced.
        assert_eq!(task.get_ref_list("Result Set"), vec!["D101"]);
    }
}
