//! The coordination service: "Coordination services act as proxies for
//! the end-user.  A coordination service receives a case description and
//! controls the enactment of the workflow" (§2) by driving the abstract
//! ATN machine over the process description.
//!
//! [`Enactor`] is the core: it runs ready activities against the grid
//! world (locating containers through matchmaking, retrying alternates on
//! failure), folds each activity's outputs into the case's data state,
//! evaluates choice/loop conditions against that state, and — when every
//! candidate container for an activity has failed — triggers re-planning
//! through the planning service, exactly the escalation of §3.3.

use crate::error::{Result, ServiceError};
use crate::matchmaking::{
    matchmake, matchmake_admitted, MatchRequest, RankedMatch, ShardedMatchIndex,
};
use crate::monitoring::MonitoringService;
use crate::planning::{PlanRequest, PlanningService};
use crate::world::GridWorld;
use gridflow_planner::prelude::GpConfig;
use gridflow_planner::GoalSpec;
use gridflow_process::{
    ActivityKind, AtnMachine, AtnSnapshot, CaseDescription, DataState, ProcessGraph,
};
use gridflow_recovery::{Admission, RecoveryManager, RecoveryPolicy, RecoveryState};
use gridflow_telemetry::{BufferedOp, TraceBuffer, TraceEvent, TraceHandle, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The checkpoint schema version this coordinator writes (and the
/// newest it can resume).  Bump on any change to
/// [`EnactmentCheckpoint`]'s meaning.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Configuration of an enactment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnactmentConfig {
    /// How many candidate containers to try per activity execution.
    pub max_candidates: usize,
    /// Re-plan when an activity fails on every candidate?
    pub replan: bool,
    /// Maximum number of re-planning rounds.
    pub max_replans: usize,
    /// Goal specifications handed to the planning service on re-plans
    /// (required when `replan` is on).
    pub planning_goals: Vec<GoalSpec>,
    /// GP configuration for re-planning.
    pub gp: GpConfig,
    /// Abort if any loop header executes more than this many times
    /// (defends against plans whose loop conditions never falsify).
    pub max_loop_iterations: usize,
    /// When re-planning, wrap the fresh (loop-free) GP plan in an
    /// iterative node guarded by this named constraint of the case
    /// description — restoring the refinement semantics the original
    /// workflow carried (Fig. 10's Cons1 loop).  Ignored when the case
    /// has no constraint of that name.
    pub wrap_replans_with_constraint: Option<String>,
    /// Capture a resumable [`EnactmentCheckpoint`] after every N
    /// successful activity executions (§1: long-lasting tasks "require
    /// checkpointing").  `None` disables checkpointing.
    pub checkpoint_every: Option<usize>,
    /// The failure policy the enactor escalates through: retry with
    /// backoff → failover to the next candidate → breaker quarantine →
    /// re-plan.  The default is [`RecoveryPolicy::disabled`], which
    /// reproduces the legacy one-shot candidate loop (and its traces)
    /// exactly.
    pub recovery: RecoveryPolicy,
    /// Minimum recovery ticks between monitoring probes feeding the
    /// circuit breakers.  `None` (the default) probes before every
    /// recovery-enabled dispatch — the legacy cadence, byte-identical
    /// to pre-interval traces; `Some(n)` skips probes until `n` ticks
    /// have elapsed since the last one.  Omitted from serialized
    /// checkpoints when `None`, so legacy checkpoint bytes are
    /// unchanged.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub probe_interval: Option<u64>,
}

impl Default for EnactmentConfig {
    fn default() -> Self {
        EnactmentConfig {
            max_candidates: 3,
            replan: false,
            max_replans: 3,
            planning_goals: Vec::new(),
            gp: GpConfig {
                population_size: 100,
                generations: 20,
                ..GpConfig::default()
            },
            max_loop_iterations: 64,
            wrap_replans_with_constraint: None,
            checkpoint_every: None,
            recovery: RecoveryPolicy::disabled(),
            probe_interval: None,
        }
    }
}

/// One successful activity execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityExecution {
    /// Activity id in the process graph (e.g. `P3DR1`).
    pub activity: String,
    /// Service executed.
    pub service: String,
    /// Container it ran on.
    pub container: String,
    /// Duration (virtual seconds).
    pub duration_s: f64,
    /// Market cost.
    pub cost: f64,
}

/// A resumable mid-enactment checkpoint: the workflow graph in force,
/// the ATN machine state, the data state, and the accounting so far.
/// Serializable, so the persistent storage service can archive it and a
/// different coordination service can pick the task up after a crash.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnactmentCheckpoint {
    /// Schema version the writing coordinator used (see
    /// [`CHECKPOINT_VERSION`]).  Resume refuses versions newer than it
    /// understands rather than silently misreading them.
    pub version: u32,
    /// The process graph in force when the checkpoint was taken (the
    /// original, or a re-planned replacement).
    pub graph: ProcessGraph,
    /// ATN machine state (taken between activity completions, so no
    /// activity is mid-flight).
    pub snapshot: AtnSnapshot,
    /// Data state at checkpoint time.
    pub state: DataState,
    /// Accounting mirrors of the report fields.
    pub executions: Vec<ActivityExecution>,
    /// Failed `(activity, container)` attempts so far.
    pub failed_attempts: Vec<(String, String)>,
    /// Re-plans so far.
    pub replans: usize,
    /// Services excluded by re-planning so far.
    pub excluded: Vec<String>,
    /// Produced classifications so far.
    pub produced: Vec<String>,
    /// Serial duration so far.
    pub total_duration_s: f64,
    /// Cost so far.
    pub total_cost: f64,
    /// Recovery-layer state at checkpoint time: breaker states, attempt
    /// counters, pending backoff deadlines.  Resuming restores it, so a
    /// quarantine survives a coordinator crash.
    pub recovery: RecoveryState,
}

impl EnactmentCheckpoint {
    /// Validate the checkpoint before resuming from it.
    ///
    /// Collects *every* violation instead of bailing on the first, so a
    /// single refusal message is enough to diagnose a corrupt
    /// checkpoint fully; the violations are joined in the
    /// [`ServiceError::InvalidCheckpoint`] it returns.
    pub fn validate(&self) -> Result<()> {
        let mut violations = Vec::new();
        if self.version > CHECKPOINT_VERSION {
            violations.push(
                ServiceError::UnsupportedCheckpoint {
                    found: self.version,
                    supported: CHECKPOINT_VERSION,
                }
                .to_string(),
            );
        }
        if self.total_duration_s < 0.0 {
            violations.push(format!(
                "total_duration_s is negative ({})",
                self.total_duration_s
            ));
        }
        if self.total_cost < 0.0 {
            violations.push(format!("total_cost is negative ({})", self.total_cost));
        }
        if self.replans > 0 && self.excluded.is_empty() {
            violations.push(format!(
                "{} replan(s) recorded but no services were excluded",
                self.replans
            ));
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(ServiceError::InvalidCheckpoint { violations })
        }
    }
}

/// The record of one enactment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnactmentReport {
    /// Did the workflow reach End with all case goals met?
    pub success: bool,
    /// Successful executions, in order.
    pub executions: Vec<ActivityExecution>,
    /// `(activity, container)` pairs that failed.
    pub failed_attempts: Vec<(String, String)>,
    /// Re-planning rounds used.
    pub replans: usize,
    /// The data state at the end.
    pub final_state: DataState,
    /// Sum of execution durations (the enactor serializes execution; see
    /// the simulation service for a parallelism-aware estimate).
    pub total_duration_s: f64,
    /// Total market cost.
    pub total_cost: f64,
    /// Classifications produced during the run.
    pub produced: Vec<String>,
    /// Why the enactment aborted, if it did.
    pub abort_reason: Option<String>,
    /// Checkpoints captured during the run (empty unless
    /// [`EnactmentConfig::checkpoint_every`] is set).
    pub checkpoints: Vec<EnactmentCheckpoint>,
}

/// The enactment engine.
#[derive(Debug, Clone, Default)]
pub struct Enactor {
    /// Configuration.
    pub config: EnactmentConfig,
    /// Optional trace sink: dispatch/completion/failure, flow-control
    /// transitions, checkpoints, and re-planning as typed events.
    trace: TraceHandle,
}

/// Builder for [`Enactor`]: configuration, trace wiring, and recovery
/// policy in one fluent chain —
/// `Enactor::builder().config(cfg).trace(sink).recovery(policy).build()`.
#[derive(Debug, Clone, Default)]
pub struct EnactorBuilder {
    config: EnactmentConfig,
    trace: TraceHandle,
}

impl EnactorBuilder {
    /// Replace the whole enactment configuration.
    pub fn config(mut self, config: EnactmentConfig) -> Self {
        self.config = config;
        self
    }

    /// Record every enactment event into `sink`.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = TraceHandle::new(sink);
        self
    }

    /// Record every enactment event through an existing handle
    /// (possibly empty — useful for threading one handle through a
    /// whole stack).
    pub fn trace_handle(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Install a recovery policy (shorthand for setting
    /// [`EnactmentConfig::recovery`] on the configuration).
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.config.recovery = policy;
        self
    }

    /// Capture a checkpoint after every `every` successful executions
    /// (shorthand for [`EnactmentConfig::checkpoint_every`]).
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.config.checkpoint_every = Some(every);
        self
    }

    /// Finish the chain.
    pub fn build(self) -> Enactor {
        Enactor {
            config: self.config,
            trace: self.trace,
        }
    }
}

impl Enactor {
    /// Start building an enactor — the one construction surface (the
    /// 0.5.0-era `new`/`with_trace`/`with_trace_handle` shims are
    /// gone; their equivalence to the builder was pinned by the shim
    /// suite before removal).
    pub fn builder() -> EnactorBuilder {
        EnactorBuilder::default()
    }

    /// Enact `graph` under `case` against `world`, driving a
    /// [`CaseFiber`] to completion.
    pub fn enact(
        &self,
        world: &mut GridWorld,
        graph: &ProcessGraph,
        case: &CaseDescription,
    ) -> EnactmentReport {
        let fiber = CaseFiber::new(
            self.config.clone(),
            self.trace.clone(),
            graph,
            case.clone(),
            graph.name.clone(),
        );
        self.drive(world, fiber)
    }

    /// Step `fiber` until it finishes.  Single-case driving releases
    /// reservation holds after every step (the fiber is its own tick),
    /// so an enabled reservation protocol can never deadlock one case
    /// against itself; with the protocol off (the default) the drain is
    /// a no-op and traces are byte-identical to the pre-fiber enactor.
    fn drive(&self, world: &mut GridWorld, mut fiber: CaseFiber) -> EnactmentReport {
        loop {
            let status = fiber.step(world);
            world.drain_reservations();
            if matches!(status, FiberStatus::Finished) {
                break;
            }
        }
        fiber.into_report()
    }

    /// Resume an enactment from a checkpoint (same case, possibly a
    /// different — recovered — world).
    pub fn resume(
        &self,
        world: &mut GridWorld,
        checkpoint: EnactmentCheckpoint,
        case: &CaseDescription,
    ) -> EnactmentReport {
        if let Err(e) = checkpoint.validate() {
            let abort_reason = Some(e.to_string());
            self.trace.emit(
                "enactor",
                TraceEvent::EnactmentStarted {
                    workflow: checkpoint.graph.name.clone(),
                    resumed: true,
                },
            );
            self.trace.emit(
                "enactor",
                TraceEvent::EnactmentFinished {
                    success: false,
                    abort_reason: abort_reason.clone(),
                },
            );
            let mut report = empty_report(case);
            report.abort_reason = abort_reason;
            return report;
        }
        let fiber = CaseFiber::from_checkpoint(
            self.config.clone(),
            self.trace.clone(),
            checkpoint,
            case.clone(),
        );
        self.drive(world, fiber)
    }
}

/// How far one [`CaseFiber::step`] call moved the case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FiberStatus {
    /// The fiber made progress: it executed one activity, installed a
    /// re-planned graph, or rebuilt its machine.
    Progressed,
    /// Every candidate container the case matched was already reserved
    /// by another case this tick.  Nothing failed — busy is not broken
    /// — and the case retries on the next tick.
    Blocked {
        /// The service the case was trying to dispatch.
        service: String,
    },
    /// The enactment reached a terminal state; the report is final.
    Finished,
}

/// What one activity attempt inside a step came to (the `Err` of the
/// surrounding `Result` still means *every candidate failed* — the
/// re-planning escalation).
enum ActivityOutcome {
    /// The activity executed and its outputs were applied.
    Completed,
    /// No candidate was even dispatched: every matched container was
    /// already reserved by another case this tick.
    Blocked {
        /// The candidate containers that were all reserved away, in
        /// rank order — the contention set a blocked re-step checks
        /// cheaply before re-ranking.  Empty when the recovery ladder
        /// was active (its admission filter mutates breaker state, so
        /// its candidate list cannot be cached).
        taken: Vec<String>,
    },
}

/// The speculative half of one fiber step, produced by
/// [`CaseFiber::prepare`] and consumed by [`CaseFiber::step_prepared`].
///
/// This is the unit of parallelism in the engine's sharded two-phase
/// tick.  `prepare` runs against a *read-only* world — shard workers
/// prepare their fibers concurrently — and does everything a step does
/// that touches only fiber-local state: the graph clone, the ATN
/// machine rebuild, the finished/loop-bound/ready decisions, and
/// (through a shared [`ShardedMatchIndex`]) the candidate ranking.
/// Anything it would have traced is captured in an ordered buffer.
/// `step_prepared` then runs in the canonical sequential commit order:
/// it splices the buffer into the real trace and performs the
/// world-mutating remainder (reservations, dispatch, output
/// application) exactly as an unprepared [`CaseFiber::step`] would, so
/// the merged trace is byte-identical to an unsharded run.
///
/// The fiber-local half is *exact*, not speculative — a fiber's state
/// cannot change between its own prepare and commit, because only its
/// own commit mutates it.  The one genuinely speculative ingredient is
/// the ranking, which depends on world state other commits could
/// invalidate; it is stamped with the preparing world's
/// [`GridWorld::generation`] and silently discarded at commit if the
/// generation moved (the commit then re-ranks, exactly like the
/// un-prepared path).
///
/// Contract: a `PreparedStep` must be committed (or the fiber dropped)
/// before any other call on the same fiber — `prepare` moves the ATN
/// snapshot out of the fiber, and only `step_prepared` puts it back.
#[derive(Debug)]
pub struct PreparedStep {
    /// The world generation the speculation was prepared against.
    generation: u64,
    /// The graph clone the prepared machine state belongs to.
    graph: Option<ProcessGraph>,
    /// The ATN machine state after the prepare-phase rebuild.
    snapshot: Option<AtnSnapshot>,
    /// Everything prepare would have traced, in emission order.
    buffered: Vec<BufferedOp>,
    /// What the step will do at commit.
    decision: PrepDecision,
}

impl PreparedStep {
    fn bare(generation: u64, decision: PrepDecision) -> Self {
        PreparedStep {
            generation,
            graph: None,
            snapshot: None,
            buffered: Vec::new(),
            decision,
        }
    }
}

/// The commit action a [`PreparedStep`] carries.
#[derive(Debug)]
enum PrepDecision {
    /// The fiber was already done; commit is a no-op `Finished`.
    AlreadyFinished,
    /// The fiber is blocked on capacity; commit runs the blocked-resume
    /// path, seeded with a speculative re-ranking when the shared index
    /// could answer.
    Resume {
        /// Speculative candidate ranking for the pending service.
        ranking: Option<Vec<RankedMatch>>,
    },
    /// The workflow finished; commit seals the report.
    Finish {
        /// Whether the case's goals held on the final data state.
        success: bool,
    },
    /// A loop header exceeded the configured iteration bound.
    LoopExceeded {
        /// The offending merge node.
        merge: String,
    },
    /// No ready activities: the workflow is stuck.
    Stuck,
    /// Machine rebuild failed; commit aborts with this reason.
    Abort {
        /// The abort reason, formatted exactly as the unprepared step
        /// would have.
        reason: String,
    },
    /// The normal case: dispatch one ready activity.
    Dispatch {
        /// The ready activity to dispatch.
        activity_id: String,
        /// The service it maps to.
        service: String,
        /// Speculative candidate ranking from the shared index.
        ranking: Option<Vec<RankedMatch>>,
    },
}

/// Cached context from a step that returned [`FiberStatus::Blocked`].
///
/// While a fiber is blocked on reserved-away capacity nothing about its
/// own state changes — the ATN snapshot, data state, and graph are
/// exactly as the blocking step left them.  The next step can therefore
/// skip the graph clone, machine rebuild, finished/loop checks, and
/// ready-set scan (they are deterministic functions of unchanged
/// state), and — when the candidate ranking provably could not have
/// changed — the matchmake itself.  Every observable emission is
/// preserved: a still-blocked re-step produces exactly the one
/// `CaseBlocked` event the full path would.
struct PendingDispatch {
    /// The ready activity the blocking step chose.
    activity_id: String,
    /// The service it resolves to.
    service: String,
    /// [`GridWorld::generation`] at the blocking step: candidate
    /// rankings are only reused while the generation is unchanged.
    generation: u64,
    /// The reserved-away candidate set, in rank order.  `None` when the
    /// recovery ladder is enabled — its monitoring feed and admission
    /// filter mutate breaker state (and may emit trace events) every
    /// step, so a blocked re-step must re-run the full dispatch path.
    taken: Option<Vec<String>>,
}

/// Serializable mirror of a [`PendingDispatch`] inside a
/// [`FiberImage`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingImage {
    /// The ready activity the blocking step chose.
    pub activity_id: String,
    /// The service it resolves to.
    pub service: String,
    /// World generation the cached ranking was computed at.
    pub generation: u64,
    /// The reserved-away candidate set, in rank order (absent when the
    /// recovery ladder forces full re-dispatch).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub taken: Option<Vec<String>>,
}

/// A complete, serializable capture of a [`CaseFiber`] between steps —
/// the per-case payload of a durable engine snapshot.
///
/// Unlike [`EnactmentCheckpoint`] (which records only enactment
/// accounting and is captured on the fiber's own cadence), an image is
/// a *total* capture at an arbitrary tick boundary: it also carries the
/// engine-facing fields a checkpoint deliberately omits — the blocked
/// dispatch cache, the flow-transition baseline, the checkpoint cadence
/// counter, and the report with its accumulated checkpoints — so
/// [`CaseFiber::from_image`] reconstructs the fiber *exactly*, emitting
/// nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FiberImage {
    /// Enactment configuration (includes the planner seed, so the
    /// rebuilt planning service is exact).
    pub config: EnactmentConfig,
    /// The case being enacted.
    pub case: CaseDescription,
    /// Case label (trace scope and reservation-hold owner).
    pub label: String,
    /// The process graph in force (original or re-planned).
    pub graph: ProcessGraph,
    /// ATN machine state, if any step has run.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub snapshot: Option<AtnSnapshot>,
    /// Whether the next restore primes the flow baseline (checkpoint
    /// resume semantics).
    pub prime_flow_base: bool,
    /// Flow-transition baseline counts.
    pub flow_base: BTreeMap<String, usize>,
    /// Data state.
    pub state: DataState,
    /// The report so far, including captured checkpoints.
    pub report: EnactmentReport,
    /// Services excluded by re-planning.
    pub excluded: Vec<String>,
    /// Recovery-layer state (breakers, attempts, pending backoffs).
    pub recovery: RecoveryState,
    /// Activities executed since the last cadence checkpoint.
    pub since_checkpoint: usize,
    /// Has the enactment reached a terminal state?
    pub done: bool,
    /// Cached blocked dispatch, if the fiber is waiting on capacity.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub pending: Option<PendingImage>,
}

/// A resumable, single-step enactment — the coroutine the enactor's
/// old internal loop was unrolled into.
///
/// One [`CaseFiber::step`] executes at most one activity (or installs
/// one re-planned graph) and reports how far it got, so a scheduler can
/// interleave many fibers over one shared [`GridWorld`].  Because the
/// ATN machine borrows its graph, the fiber persists an [`AtnSnapshot`]
/// between steps and rebuilds the machine each step; restore preserves
/// execution counts, so flow-transition accounting and loop bounds
/// carry across steps unchanged and a fiber-driven single case traces
/// byte-identically to the pre-fiber enactor.
pub struct CaseFiber {
    config: EnactmentConfig,
    trace: TraceHandle,
    /// Shared, not owned: a fleet of fibers enacting one workload holds
    /// one description between them, so spawning and retiring a fiber
    /// never deep-copies the case's goal/constraint condition trees
    /// (which scale with the fleet in capacity benchmarks).
    case: Arc<CaseDescription>,
    label: String,
    planning: PlanningService,
    initial_classifications: Vec<String>,
    current_graph: ProcessGraph,
    snapshot: Option<AtnSnapshot>,
    /// On first restore after a checkpoint resume, seed `flow_base`
    /// from the restored counts (pre-crash transitions were already
    /// reported by the pre-crash coordinator).
    prime_flow_base: bool,
    /// Flow-transition baseline: ATN execution counts for the
    /// non-end-user nodes, so each increment after an activity step
    /// surfaces as a `TransitionFired` event.
    flow_base: BTreeMap<String, usize>,
    state: DataState,
    report: EnactmentReport,
    excluded: Vec<String>,
    recovery: RecoveryManager,
    since_checkpoint: usize,
    done: bool,
    /// Set while the fiber is blocked on capacity: the dispatch to
    /// re-try without re-deriving it (see [`PendingDispatch`]).
    pending: Option<PendingDispatch>,
    /// Recovery tick of the last monitoring probe, when
    /// [`EnactmentConfig::probe_interval`] throttles probing.  Not
    /// persisted in [`FiberImage`]: a restored fiber probes on its
    /// first opportunity, which is also the legacy behavior when the
    /// interval is unset.
    last_probe_tick: Option<u64>,
}

impl std::fmt::Debug for CaseFiber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaseFiber")
            .field("label", &self.label)
            .field("graph", &self.current_graph.name)
            .field("done", &self.done)
            .finish()
    }
}

impl CaseFiber {
    /// A fiber for a fresh enactment of `graph` under `case`.  `label`
    /// names the case in engine traces and reservation holds; emits
    /// `EnactmentStarted` immediately.
    /// The case may be passed owned (`CaseDescription`) or shared
    /// (`Arc<CaseDescription>`); schedulers spawning a fleet over one
    /// workload should share, so each spawn is a pointer bump instead
    /// of a deep copy of the case's condition trees.
    pub fn new(
        config: EnactmentConfig,
        trace: TraceHandle,
        graph: &ProcessGraph,
        case: impl Into<Arc<CaseDescription>>,
        label: impl Into<String>,
    ) -> Self {
        Self::build(
            config,
            trace,
            graph.clone(),
            case.into(),
            label.into(),
            None,
        )
    }

    /// A fiber resuming from a checkpoint the caller has already
    /// [`EnactmentCheckpoint::validate`]d.
    pub fn from_checkpoint(
        config: EnactmentConfig,
        trace: TraceHandle,
        checkpoint: EnactmentCheckpoint,
        case: impl Into<Arc<CaseDescription>>,
    ) -> Self {
        let graph = checkpoint.graph.clone();
        let label = graph.name.clone();
        Self::build(config, trace, graph, case.into(), label, Some(checkpoint))
    }

    fn build(
        config: EnactmentConfig,
        trace: TraceHandle,
        graph: ProcessGraph,
        case: Arc<CaseDescription>,
        label: String,
        resume_from: Option<EnactmentCheckpoint>,
    ) -> Self {
        let mut report = empty_report(&case);
        let mut state = case.initial_data.clone();
        let mut excluded: Vec<String> = Vec::new();
        let mut snapshot: Option<AtnSnapshot> = None;
        let resumed = resume_from.is_some();
        let recovery = match &resume_from {
            Some(cp) => RecoveryManager::restore(
                config.recovery.clone(),
                cp.recovery.clone(),
                trace.clone(),
            ),
            None => RecoveryManager::with_trace_handle(config.recovery.clone(), trace.clone()),
        };
        if let Some(cp) = resume_from {
            state = cp.state;
            report.executions = cp.executions;
            report.failed_attempts = cp.failed_attempts;
            report.replans = cp.replans;
            report.produced = cp.produced;
            report.total_duration_s = cp.total_duration_s;
            report.total_cost = cp.total_cost;
            excluded = cp.excluded;
            snapshot = Some(cp.snapshot);
        }
        trace.emit(
            "enactor",
            TraceEvent::EnactmentStarted {
                workflow: graph.name.clone(),
                resumed,
            },
        );
        let planning = PlanningService::new(config.gp).with_trace_handle(trace.clone());
        let initial_classifications = initial_classifications(&case);
        CaseFiber {
            config,
            trace,
            case,
            label,
            planning,
            initial_classifications,
            current_graph: graph,
            prime_flow_base: snapshot.is_some(),
            snapshot,
            flow_base: BTreeMap::new(),
            state,
            report,
            excluded,
            recovery,
            since_checkpoint: 0,
            done: false,
            pending: None,
            last_probe_tick: None,
        }
    }

    /// Capture the fiber's complete state as a serializable
    /// [`FiberImage`] (see there for how this differs from a
    /// checkpoint).  Must be taken between steps.
    pub fn image(&self) -> FiberImage {
        FiberImage {
            config: self.config.clone(),
            case: (*self.case).clone(),
            label: self.label.clone(),
            graph: self.current_graph.clone(),
            snapshot: self.snapshot.clone(),
            prime_flow_base: self.prime_flow_base,
            flow_base: self.flow_base.clone(),
            state: self.state.clone(),
            report: self.report.clone(),
            excluded: self.excluded.clone(),
            recovery: self.recovery.snapshot(),
            since_checkpoint: self.since_checkpoint,
            done: self.done,
            pending: self.pending.as_ref().map(|p| PendingImage {
                activity_id: p.activity_id.clone(),
                service: p.service.clone(),
                generation: p.generation,
                taken: p.taken.clone(),
            }),
        }
    }

    /// Rebuild a fiber from a captured [`FiberImage`], *silently*: no
    /// `EnactmentStarted` (or any other event) is emitted, because the
    /// original run already emitted everything up to the capture point
    /// and a crash-recovered trace must stay byte-identical to an
    /// uninterrupted one.
    pub fn from_image(image: FiberImage, trace: TraceHandle) -> Self {
        let FiberImage {
            config,
            case,
            label,
            graph,
            snapshot,
            prime_flow_base,
            flow_base,
            state,
            report,
            excluded,
            recovery,
            since_checkpoint,
            done,
            pending,
        } = image;
        let recovery = RecoveryManager::restore(config.recovery.clone(), recovery, trace.clone());
        let planning = PlanningService::new(config.gp).with_trace_handle(trace.clone());
        let case = Arc::new(case);
        let initial_classifications = initial_classifications(&case);
        CaseFiber {
            config,
            trace,
            case,
            label,
            planning,
            initial_classifications,
            current_graph: graph,
            snapshot,
            prime_flow_base,
            flow_base,
            state,
            report,
            excluded,
            recovery,
            since_checkpoint,
            done,
            pending: pending.map(|p| PendingDispatch {
                activity_id: p.activity_id,
                service: p.service,
                generation: p.generation,
                taken: p.taken,
            }),
            last_probe_tick: None,
        }
    }

    /// The case label this fiber reserves and traces under.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Route this fiber's replans through a fleet-shared plan cache.
    ///
    /// A strict performance knob: GP planning is a deterministic function
    /// of `(seed, problem)`, so a cache hit returns the byte-identical
    /// plan the fiber would have computed itself — only the wall time
    /// (and the `plan.cache_*` trace events) change.
    pub fn set_plan_cache(&mut self, cache: crate::plan_cache::PlanCacheHandle) {
        self.planning.set_plan_cache(cache);
    }

    /// Has the enactment reached a terminal state?
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The report so far (final once [`CaseFiber::is_done`]).
    pub fn report(&self) -> &EnactmentReport {
        &self.report
    }

    /// Consume the fiber, yielding its report.  A fiber that never
    /// finished is aborted first so the report is always sealed (and
    /// `EnactmentFinished` is always emitted).
    pub fn into_report(mut self) -> EnactmentReport {
        if !self.done {
            self.abort("fiber dropped before completion");
        }
        self.report
    }

    /// Abort the enactment from outside (e.g. a scheduler exhausting
    /// its tick budget): seals the report with `reason` and emits
    /// `EnactmentFinished`.  No-op once finished.
    pub fn abort(&mut self, reason: impl Into<String>) {
        if self.done {
            return;
        }
        self.report.abort_reason = Some(reason.into());
        self.finish();
    }

    /// Advance the enactment by at most one activity execution (or one
    /// re-planning round).  Terminal steps emit `EnactmentFinished` and
    /// seal the report; further calls return [`FiberStatus::Finished`]
    /// without side effects.
    ///
    /// `step` is exactly [`CaseFiber::prepare`] followed by
    /// [`CaseFiber::step_prepared`] with no index and no interleaving —
    /// the single code path that makes the sharded core's two-phase
    /// split byte-identical to the event core by construction.
    pub fn step(&mut self, world: &mut GridWorld) -> FiberStatus {
        let prepared = self.prepare(world, None);
        self.step_prepared(world, prepared)
    }

    /// Phase 1 of the two-phase tick: do everything the next step does
    /// that needs no world mutation, against a read-only world.  See
    /// [`PreparedStep`] for what is exact versus speculative.  The
    /// returned value must be handed to [`CaseFiber::step_prepared`]
    /// before any other call on this fiber.
    pub fn prepare(
        &mut self,
        world: &GridWorld,
        index: Option<&ShardedMatchIndex>,
    ) -> PreparedStep {
        let generation = world.generation();
        if self.done {
            return PreparedStep::bare(generation, PrepDecision::AlreadyFinished);
        }
        // Blocked fast path: nothing about the fiber changed since the
        // step that blocked, so the expensive re-derivation (graph
        // clone, machine rebuild, ready-set scan) is skipped; only a
        // speculative re-ranking is worth computing up front.
        if let Some(pending) = &self.pending {
            let ranking = self.speculative_ranking(world, index, &pending.service);
            return PreparedStep::bare(generation, PrepDecision::Resume { ranking });
        }
        // Route the prepare phase's emissions into a buffer the commit
        // splices in; an uninstalled trace stays uninstalled, so the
        // traced/untraced behavior split (emit_transitions early-out,
        // flow_base updates) is identical to a direct step.
        let buffer = self
            .trace
            .is_installed()
            .then(|| Arc::new(TraceBuffer::new()));
        let real = std::mem::replace(
            &mut self.trace,
            match &buffer {
                Some(b) => TraceHandle::new(b.clone()),
                None => TraceHandle::none(),
            },
        );
        let graph = self.current_graph.clone();
        let (snapshot, decision) = self.prepare_on(&graph, world, index);
        self.trace = real;
        PreparedStep {
            generation,
            graph: Some(graph),
            snapshot,
            buffered: buffer.map(|b| b.drain()).unwrap_or_default(),
            decision,
        }
    }

    /// The machine-rebuild-and-decide core of the prepare phase, run
    /// against the prepare-local graph clone.  Emissions go to whatever
    /// handle [`CaseFiber::prepare`] installed.
    fn prepare_on(
        &mut self,
        graph: &ProcessGraph,
        world: &GridWorld,
        index: Option<&ShardedMatchIndex>,
    ) -> (Option<AtnSnapshot>, PrepDecision) {
        let machine = match self.snapshot.take() {
            Some(snapshot) => match AtnMachine::restore(graph, snapshot) {
                Ok(m) => {
                    if self.prime_flow_base {
                        self.flow_base = flow_counts(graph, &m);
                        self.prime_flow_base = false;
                    }
                    m
                }
                Err(e) => {
                    return (
                        None,
                        PrepDecision::Abort {
                            reason: format!("checkpoint restore failed: {e}"),
                        },
                    );
                }
            },
            None => {
                self.flow_base.clear();
                let mut m = match AtnMachine::new(graph) {
                    Ok(m) => m,
                    Err(e) => {
                        return (
                            None,
                            PrepDecision::Abort {
                                reason: format!("invalid process graph: {e}"),
                            },
                        );
                    }
                };
                if let Err(e) = m.start(&self.state) {
                    return (
                        None,
                        PrepDecision::Abort {
                            reason: format!("start failed: {e}"),
                        },
                    );
                }
                self.emit_transitions(graph, &m);
                m
            }
        };

        if machine.is_finished() {
            return (
                None,
                PrepDecision::Finish {
                    success: self.case.goals_met(&self.state),
                },
            );
        }
        // Loop-bound defense.
        if let Some(merge) = graph
            .activities()
            .iter()
            .filter(|a| a.kind == ActivityKind::Merge)
            .find(|a| machine.executions(&a.id) > self.config.max_loop_iterations)
        {
            return (
                None,
                PrepDecision::LoopExceeded {
                    merge: merge.id.clone(),
                },
            );
        }
        let Some(activity_id) = machine.ready().first().cloned() else {
            return (None, PrepDecision::Stuck);
        };
        let service = graph
            .activity(&activity_id)
            .and_then(|a| a.service.clone())
            .unwrap_or_else(|| activity_id.clone());
        let ranking = self.speculative_ranking(world, index, &service);
        (
            Some(machine.into_snapshot()),
            PrepDecision::Dispatch {
                activity_id,
                service,
                ranking,
            },
        )
    }

    /// The prepare phase's candidate ranking, answered only from the
    /// shared read-only index: an index miss (or no index, or a
    /// recovery-enabled fiber, whose admission filter mutates breaker
    /// state) defers ranking to the sequential commit.
    fn speculative_ranking(
        &self,
        world: &GridWorld,
        index: Option<&ShardedMatchIndex>,
        service: &str,
    ) -> Option<Vec<RankedMatch>> {
        if self.recovery.enabled() {
            return None;
        }
        index.and_then(|i| i.matches(world, &MatchRequest::for_service(service)))
    }

    /// Phase 2 of the two-phase tick: commit a [`PreparedStep`] in the
    /// canonical sequential order.  Splices the prepare phase's
    /// buffered emissions into the real trace, then performs the
    /// world-mutating remainder — reservation, dispatch, output
    /// application — exactly as an unprepared step would.
    pub fn step_prepared(&mut self, world: &mut GridWorld, prepared: PreparedStep) -> FiberStatus {
        let PreparedStep {
            generation,
            graph,
            snapshot,
            buffered,
            decision,
        } = prepared;
        // Speculative emissions precede everything this step does live.
        for op in buffered {
            match op {
                BufferedOp::Emit { source, event } => self.trace.emit(&source, event),
                BufferedOp::AdvanceS(dt) => self.trace.advance_s(dt),
            }
        }
        match decision {
            PrepDecision::AlreadyFinished => FiberStatus::Finished,
            PrepDecision::Resume { ranking } => match self.pending.take() {
                Some(pending) => self.step_resume(world, pending, ranking, generation),
                // Unreachable under the prepare/commit contract; a lost
                // pending simply degrades to a full re-step.
                None => self.step(world),
            },
            PrepDecision::Finish { success } => {
                self.report.success = success;
                if !success {
                    self.report.abort_reason =
                        Some("workflow finished but case goals unmet".into());
                }
                self.finish()
            }
            PrepDecision::LoopExceeded { merge } => self.finish_aborted(format!(
                "loop at `{merge}` exceeded {} iterations",
                self.config.max_loop_iterations
            )),
            PrepDecision::Stuck => {
                self.finish_aborted("workflow stuck: no ready activities".to_string())
            }
            PrepDecision::Abort { reason } => self.finish_aborted(reason),
            PrepDecision::Dispatch {
                activity_id,
                service,
                ranking,
            } => {
                let (Some(graph), Some(snapshot)) = (graph, snapshot) else {
                    // Unreachable by construction; abort rather than panic.
                    return self.finish_aborted("prepared dispatch lost its machine".to_string());
                };
                // Monitoring feedback: let live probes open/half-open the
                // circuit breakers before matchmaking sees the candidates.
                self.monitor_probe(world);
                let ranking = ranking.filter(|_| world.generation() == generation);
                match self.run_activity(world, &service, &activity_id, ranking) {
                    Ok(ActivityOutcome::Blocked { taken }) => {
                        // The machine never advanced: the prepared state
                        // moves back into the fiber unchanged (the value
                        // the unprepared path would re-snapshot).
                        self.snapshot = Some(snapshot);
                        self.note_blocked(world, activity_id, service, taken)
                    }
                    Ok(ActivityOutcome::Completed) => {
                        // The prepare phase already validated this graph.
                        let machine = AtnMachine::restore_prevalidated(&graph, snapshot);
                        self.advance_machine(&graph, machine, &activity_id)
                    }
                    Err(_) => self.escalate_replan(world, &activity_id, &service),
                }
            }
        }
    }

    /// The single monitoring-feedback point both dispatch paths share:
    /// run [`MonitoringService::feed_recovery`] so live probes
    /// open/half-open the circuit breakers before matchmaking sees the
    /// candidates.  No-op while recovery is disabled.  With
    /// [`EnactmentConfig::probe_interval`] set, probes are throttled to
    /// at most one per `n` recovery ticks; unset (the default) probes
    /// on every opportunity, the legacy cadence.
    fn monitor_probe(&mut self, world: &mut GridWorld) {
        if !self.recovery.enabled() {
            return;
        }
        if let Some(interval) = self.config.probe_interval {
            let now = self.recovery.now_tick();
            if let Some(last) = self.last_probe_tick {
                if now.saturating_sub(last) < interval {
                    return;
                }
            }
            self.last_probe_tick = Some(now);
        }
        MonitoringService.feed_recovery(world, &mut self.recovery);
    }

    /// Resume a fiber whose previous step reported
    /// [`FiberStatus::Blocked`].  The fiber's own state (graph,
    /// snapshot, data) is untouched since that step, so its
    /// finished/loop-bound/ready conclusions still hold and the step
    /// goes straight to the dispatch; the machine is rebuilt only when
    /// the dispatch actually completes and the ATN must advance.
    ///
    /// `ranking` is a speculative candidate ranking computed by a
    /// prepare phase against `prep_generation`; it is honored only
    /// while the world's matchmaking generation still matches.
    fn step_resume(
        &mut self,
        world: &mut GridWorld,
        pending: PendingDispatch,
        ranking: Option<Vec<RankedMatch>>,
        prep_generation: u64,
    ) -> FiberStatus {
        // Contention-only fast path: while the world's matchmaking
        // generation is unchanged the blocking step's candidate ranking
        // still stands, and if every ranked candidate is still fully
        // booked the outcome is another block — one `CaseBlocked`
        // event, nothing else, exactly like the full path.
        if let Some(taken) = &pending.taken {
            if world.reservations_enabled()
                && world.generation() == pending.generation
                && !taken.is_empty()
                && taken.iter().all(|c| world.free_slots(c) == 0)
            {
                let service = pending.service.clone();
                self.trace.emit(
                    "enactor",
                    TraceEvent::CaseBlocked {
                        case: self.label.clone(),
                        service: service.clone(),
                    },
                );
                self.pending = Some(pending);
                return FiberStatus::Blocked { service };
            }
        }
        let PendingDispatch {
            activity_id,
            service,
            ..
        } = pending;
        // Monitoring feedback, exactly as the full path runs it before
        // matchmaking sees the candidates.
        self.monitor_probe(world);
        let ranking = ranking.filter(|_| world.generation() == prep_generation);
        match self.run_activity(world, &service, &activity_id, ranking) {
            Ok(ActivityOutcome::Blocked { taken }) => {
                // The snapshot is already in place from the step that
                // first blocked.
                self.note_blocked(world, activity_id, service, taken)
            }
            Ok(ActivityOutcome::Completed) => {
                let graph = self.current_graph.clone();
                let Some(snapshot) = self.snapshot.take() else {
                    return self.finish_aborted("blocked fiber lost its snapshot".to_string());
                };
                let machine = match AtnMachine::restore(&graph, snapshot) {
                    Ok(m) => m,
                    Err(e) => {
                        return self.finish_aborted(format!("checkpoint restore failed: {e}"));
                    }
                };
                self.advance_machine(&graph, machine, &activity_id)
            }
            Err(_) => self.escalate_replan(world, &activity_id, &service),
        }
    }

    /// The containers this fiber is blocked on (rank order), if its
    /// last step blocked on reserved-away capacity with a cacheable
    /// candidate set.  The scheduler's wait-set bookkeeping reads this.
    pub fn blocked_on(&self) -> Option<&[String]> {
        self.pending.as_ref().and_then(|p| p.taken.as_deref())
    }

    /// Record a capacity block: cache the dispatch context for the next
    /// step's fast path, announce `CaseBlocked`, and report
    /// [`FiberStatus::Blocked`].
    fn note_blocked(
        &mut self,
        world: &GridWorld,
        activity_id: String,
        service: String,
        taken: Vec<String>,
    ) -> FiberStatus {
        self.pending = Some(PendingDispatch {
            activity_id,
            service: service.clone(),
            generation: world.generation(),
            taken: (!self.recovery.enabled()).then_some(taken),
        });
        self.trace.emit(
            "enactor",
            TraceEvent::CaseBlocked {
                case: self.label.clone(),
                service: service.clone(),
            },
        );
        FiberStatus::Blocked { service }
    }

    /// Advance the ATN past a completed activity: fire the machine,
    /// surface flow transitions, honor the checkpoint cadence, and
    /// persist the snapshot for the next step.  Takes the machine by
    /// value so the final persist is a move, not a clone.
    fn advance_machine(
        &mut self,
        graph: &ProcessGraph,
        mut machine: AtnMachine,
        activity_id: &str,
    ) -> FiberStatus {
        if let Err(e) = machine.run_activity(activity_id, &self.state) {
            return self.finish_aborted(format!("machine error: {e}"));
        }
        self.emit_transitions(graph, &machine);
        self.since_checkpoint += 1;
        if let Some(every) = self.config.checkpoint_every {
            if self.since_checkpoint >= every.max(1) {
                self.since_checkpoint = 0;
                self.capture_checkpoint(graph, &machine);
            }
        }
        self.snapshot = Some(machine.into_snapshot());
        FiberStatus::Progressed
    }

    /// Every candidate failed → escalate to re-planning (or abort when
    /// re-planning is off or exhausted).
    fn escalate_replan(
        &mut self,
        world: &mut GridWorld,
        activity_id: &str,
        service: &str,
    ) -> FiberStatus {
        if !self.config.replan || self.report.replans >= self.config.max_replans {
            return self.finish_aborted(
                ServiceError::ActivityFailed {
                    activity: activity_id.to_owned(),
                    service: service.to_owned(),
                }
                .to_string(),
            );
        }
        self.report.replans += 1;
        if !self.excluded.iter().any(|e| e == service) {
            self.excluded.push(service.to_owned());
        }
        self.trace.emit(
            "enactor",
            TraceEvent::ReplanTriggered {
                activity: activity_id.to_owned(),
                service: service.to_owned(),
                excluded: self.excluded.clone(),
                round: self.report.replans,
            },
        );
        let request = PlanRequest {
            initial: self.initial_classifications.clone(),
            goals: self.config.planning_goals.clone(),
            produced: self.report.produced.clone(),
            excluded: self.excluded.clone(),
        };
        match self.planning.plan(world, &request) {
            Ok(response) if response.viable => {
                self.trace
                    .emit("enactor", TraceEvent::ReplanInstalled { viable: true });
                match self.refinement_wrap(&response) {
                    Ok(g) => {
                        // The next step builds a fresh machine over the
                        // re-planned graph.
                        self.current_graph = g;
                        self.snapshot = None;
                        FiberStatus::Progressed
                    }
                    Err(e) => self.finish_aborted(format!("re-plan wrapping failed: {e}")),
                }
            }
            Ok(_) => {
                self.trace
                    .emit("enactor", TraceEvent::ReplanInstalled { viable: false });
                self.finish_aborted("re-planning produced no viable plan".to_string())
            }
            Err(e) => self.finish_aborted(format!("re-planning failed: {e}")),
        }
    }

    fn finish_aborted(&mut self, reason: String) -> FiberStatus {
        self.report.abort_reason = Some(reason);
        self.finish()
    }

    /// Seal the report and emit `EnactmentFinished`.
    fn finish(&mut self) -> FiberStatus {
        self.done = true;
        self.report.final_state = self.state.clone();
        self.trace.emit(
            "enactor",
            TraceEvent::EnactmentFinished {
                success: self.report.success,
                abort_reason: self.report.abort_reason.clone(),
            },
        );
        FiberStatus::Finished
    }

    fn capture_checkpoint(&mut self, graph: &ProcessGraph, machine: &AtnMachine) {
        self.report.checkpoints.push(EnactmentCheckpoint {
            version: CHECKPOINT_VERSION,
            graph: graph.clone(),
            snapshot: machine.snapshot(),
            state: self.state.clone(),
            executions: self.report.executions.clone(),
            failed_attempts: self.report.failed_attempts.clone(),
            replans: self.report.replans,
            excluded: self.excluded.clone(),
            produced: self.report.produced.clone(),
            total_duration_s: self.report.total_duration_s,
            total_cost: self.report.total_cost,
            recovery: self.recovery.snapshot(),
        });
        self.trace.emit(
            "enactor",
            TraceEvent::CheckpointCaptured {
                index: self.report.checkpoints.len() - 1,
                executions: self.report.executions.len(),
            },
        );
    }

    /// Emit a `TransitionFired` event for every flow-control node whose
    /// ATN execution count grew past the baseline, then advance it.
    fn emit_transitions(&mut self, graph: &ProcessGraph, machine: &AtnMachine) {
        if !self.trace.is_installed() {
            return;
        }
        for a in graph
            .activities()
            .iter()
            .filter(|a| a.kind != ActivityKind::EndUser)
        {
            let n = machine.executions(&a.id);
            let prev = self.flow_base.get(&a.id).copied().unwrap_or(0);
            for _ in prev..n {
                self.trace.emit(
                    "enactor",
                    TraceEvent::TransitionFired {
                        kind: kind_label(a.kind).to_owned(),
                        node: a.id.clone(),
                    },
                );
            }
            if n != prev {
                self.flow_base.insert(a.id.clone(), n);
            }
        }
    }

    /// Apply the configured refinement constraint to a fresh plan (see
    /// [`EnactmentConfig::wrap_replans_with_constraint`]).
    fn refinement_wrap(&self, response: &crate::planning::PlanResponse) -> Result<ProcessGraph> {
        let cond = self
            .config
            .wrap_replans_with_constraint
            .as_ref()
            .and_then(|name| self.case.constraints.get(name));
        match cond {
            Some(cond) => {
                let wrapped = gridflow_plan::PlanNode::Iterative {
                    cond: cond.clone(),
                    body: vec![response.tree.clone()],
                };
                Ok(gridflow_plan::tree_to_graph("replan+refinement", &wrapped)?)
            }
            None => Ok(response.graph.clone()),
        }
    }

    /// Reserve a tick slot on `container` under the world's reservation
    /// protocol.  Always succeeds (and emits nothing) while the
    /// protocol is off, keeping single-case traces byte-identical.
    fn reserve(&mut self, world: &mut GridWorld, container: &str) -> bool {
        if !world.reservations_enabled() {
            return true;
        }
        if world.try_reserve(&self.label, container) {
            self.trace.emit(
                "enactor",
                TraceEvent::SlotReserved {
                    case: self.label.clone(),
                    container: container.to_owned(),
                },
            );
            true
        } else {
            false
        }
    }

    /// Try to execute one activity, applying outputs on success.
    ///
    /// With recovery disabled this is the classic candidate loop: one
    /// dispatch per ranked container, first success wins.  With recovery
    /// enabled the escalation ladder runs instead: retry-with-backoff on
    /// each admitted candidate, failover to the next candidate, breaker
    /// quarantine of repeat offenders, and finally (an `Err` here) the
    /// caller's re-planning escalation.  Candidates whose reservation
    /// fails are skipped without dispatching; if *no* candidate could be
    /// dispatched and at least one was reserved away, the outcome is
    /// [`ActivityOutcome::Blocked`] — contention is not failure.
    fn run_activity(
        &mut self,
        world: &mut GridWorld,
        service: &str,
        activity_id: &str,
        ranking: Option<Vec<RankedMatch>>,
    ) -> Result<ActivityOutcome> {
        if self.recovery.enabled() {
            return self.run_activity_ladder(world, service, activity_id);
        }
        // A prepare-phase ranking (already generation-checked by the
        // caller) stands in for the matchmake; an empty one falls
        // through the loop to the same `ActivityFailed` the matchmake's
        // no-offer error collapses to under `escalate_replan`.
        let candidates = match ranking {
            Some(ranked) => ranked,
            None => matchmake(world, &MatchRequest::for_service(service))?,
        };
        let mut blocked = false;
        let mut dispatched = false;
        let mut taken: Vec<String> = Vec::new();
        for (attempt, candidate) in candidates
            .iter()
            .take(self.config.max_candidates.max(1))
            .enumerate()
        {
            if !self.reserve(world, &candidate.container) {
                blocked = true;
                taken.push(candidate.container.clone());
                continue;
            }
            dispatched = true;
            self.trace.emit(
                "enactor",
                TraceEvent::ActivityDispatched {
                    activity: activity_id.to_owned(),
                    service: service.to_owned(),
                    container: candidate.container.clone(),
                    attempt,
                },
            );
            match world.execute_service(service, &candidate.container) {
                Ok(record) => {
                    self.apply_success(world, service, activity_id, candidate, &record)?;
                    return Ok(ActivityOutcome::Completed);
                }
                Err(_) => {
                    self.report
                        .failed_attempts
                        .push((activity_id.to_owned(), candidate.container.clone()));
                    self.trace.emit(
                        "enactor",
                        TraceEvent::ActivityFailed {
                            activity: activity_id.to_owned(),
                            service: service.to_owned(),
                            container: candidate.container.clone(),
                            attempt,
                        },
                    );
                }
            }
        }
        if blocked && !dispatched {
            return Ok(ActivityOutcome::Blocked { taken });
        }
        Err(ServiceError::ActivityFailed {
            activity: activity_id.to_owned(),
            service: service.to_owned(),
        })
    }

    /// The recovery escalation ladder: for each admitted candidate, up to
    /// `RetryPolicy::max_attempts` tries with seeded backoff between
    /// them; a candidate whose breaker opens mid-ladder is abandoned
    /// (failover); a candidate admitted half-open gets exactly one probe
    /// try.  An execution that outlives its lease counts as a failure
    /// even though the world completed it — slow is the failure mode
    /// leases exist to catch.
    fn run_activity_ladder(
        &mut self,
        world: &mut GridWorld,
        service: &str,
        activity_id: &str,
    ) -> Result<ActivityOutcome> {
        let candidates = matchmake_admitted(
            world,
            &MatchRequest::for_service(service),
            &mut self.recovery,
        )?;
        let mut attempt = 0usize;
        let mut blocked = false;
        let mut dispatched = false;
        for candidate in candidates.iter().take(self.config.max_candidates.max(1)) {
            if !self.reserve(world, &candidate.container) {
                blocked = true;
                continue;
            }
            let mut local_try = 0usize;
            loop {
                let admission = self.recovery.admit(&candidate.container);
                if admission == Admission::Reject {
                    // The breaker opened mid-ladder: fail over.
                    break;
                }
                if local_try > 0 {
                    // Backoff before the retry, in deterministic virtual
                    // ticks drawn from the seeded policy.
                    self.recovery.schedule_retry(
                        activity_id,
                        service,
                        &candidate.container,
                        attempt,
                        local_try,
                    );
                    self.recovery.await_retry(activity_id);
                }
                self.recovery.note_attempt(activity_id);
                let lease = self.recovery.grant_lease(activity_id, &candidate.container);
                dispatched = true;
                self.trace.emit(
                    "enactor",
                    TraceEvent::ActivityDispatched {
                        activity: activity_id.to_owned(),
                        service: service.to_owned(),
                        container: candidate.container.clone(),
                        attempt,
                    },
                );
                attempt += 1;
                local_try += 1;
                match world.execute_service(service, &candidate.container) {
                    Ok(record) => {
                        let took = self.recovery.note_execution_seconds(record.duration_s);
                        let lease_broken = lease.is_some()
                            && self
                                .recovery
                                .lease_expired(activity_id, &candidate.container, took);
                        if lease_broken {
                            // The work finished, but past its deadline:
                            // the coordinator already gave up on it.  The
                            // time and cost were still spent.
                            self.report.total_duration_s += record.duration_s;
                            self.report.total_cost += record.cost;
                            self.trace.advance_s(record.duration_s);
                            self.recovery.record_failure(&candidate.container);
                            self.report
                                .failed_attempts
                                .push((activity_id.to_owned(), candidate.container.clone()));
                            self.trace.emit(
                                "enactor",
                                TraceEvent::ActivityFailed {
                                    activity: activity_id.to_owned(),
                                    service: service.to_owned(),
                                    container: candidate.container.clone(),
                                    attempt: attempt - 1,
                                },
                            );
                        } else {
                            self.recovery.record_success(&candidate.container);
                            self.apply_success(world, service, activity_id, candidate, &record)?;
                            return Ok(ActivityOutcome::Completed);
                        }
                    }
                    Err(_) => {
                        self.recovery.tick(1);
                        self.recovery.record_failure(&candidate.container);
                        self.report
                            .failed_attempts
                            .push((activity_id.to_owned(), candidate.container.clone()));
                        self.trace.emit(
                            "enactor",
                            TraceEvent::ActivityFailed {
                                activity: activity_id.to_owned(),
                                service: service.to_owned(),
                                container: candidate.container.clone(),
                                attempt: attempt - 1,
                            },
                        );
                    }
                }
                // A half-open probe gets exactly one try; otherwise the
                // retry budget bounds the ladder rung.
                if admission == Admission::Probe
                    || local_try >= self.recovery.policy().retry.max_attempts.max(1)
                {
                    break;
                }
            }
        }
        if blocked && !dispatched {
            // The ladder's candidate set passed through the admission
            // filter, which mutates breaker state — not cacheable.
            return Ok(ActivityOutcome::Blocked { taken: Vec::new() });
        }
        Err(ServiceError::ActivityFailed {
            activity: activity_id.to_owned(),
            service: service.to_owned(),
        })
    }

    /// Shared success bookkeeping: apply outputs, accrue totals, record
    /// the execution, advance the virtual clock, emit `ActivityCompleted`.
    fn apply_success(
        &mut self,
        world: &mut GridWorld,
        service: &str,
        activity_id: &str,
        candidate: &RankedMatch,
        record: &crate::ExecutionRecord,
    ) -> Result<()> {
        let produced = world.apply_outputs(service, &mut self.state)?;
        self.report.produced.extend(produced);
        self.report.total_duration_s += record.duration_s;
        self.report.total_cost += record.cost;
        self.report.executions.push(ActivityExecution {
            activity: activity_id.to_owned(),
            service: service.to_owned(),
            container: candidate.container.clone(),
            duration_s: record.duration_s,
            cost: record.cost,
        });
        // Advance the trace's virtual clock by the simulated execution
        // time, so `at_s` reads as cumulative virtual seconds.
        self.trace.advance_s(record.duration_s);
        self.trace.emit(
            "enactor",
            TraceEvent::ActivityCompleted {
                activity: activity_id.to_owned(),
                service: service.to_owned(),
                container: candidate.container.clone(),
                duration_s: record.duration_s,
                cost: record.cost,
            },
        );
        Ok(())
    }
}

/// A blank report carrying the case's initial data as `final_state`.
fn empty_report(case: &CaseDescription) -> EnactmentReport {
    EnactmentReport {
        success: false,
        executions: Vec::new(),
        failed_attempts: Vec::new(),
        replans: 0,
        final_state: case.initial_data.clone(),
        total_duration_s: 0.0,
        total_cost: 0.0,
        produced: Vec::new(),
        abort_reason: None,
        checkpoints: Vec::new(),
    }
}

/// Current ATN execution counts for a graph's flow-control nodes.
fn flow_counts(graph: &ProcessGraph, machine: &AtnMachine) -> BTreeMap<String, usize> {
    graph
        .activities()
        .iter()
        .filter(|a| a.kind != ActivityKind::EndUser)
        .map(|a| (a.id.clone(), machine.executions(&a.id)))
        .collect()
}

/// Stable label for a flow-control node kind in trace events.
fn kind_label(kind: ActivityKind) -> &'static str {
    match kind {
        ActivityKind::Begin => "Begin",
        ActivityKind::End => "End",
        ActivityKind::EndUser => "EndUser",
        ActivityKind::Fork => "Fork",
        ActivityKind::Join => "Join",
        ActivityKind::Choice => "Choice",
        ActivityKind::Merge => "Merge",
    }
}

/// Classifications of a case's initial data items.
pub fn initial_classifications(case: &CaseDescription) -> Vec<String> {
    case.initial_data
        .iter()
        .filter_map(|(_, item)| item.classification().map(str::to_owned))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{OutputSpec, ServiceOffering};
    use gridflow_grid::GridTopology;
    use gridflow_process::{lower::lower, parser::parse_process, Condition, DataItem};

    /// A hand-built topology: each service hosted on two dedicated
    /// containers, so failing one service's hosts never disables another
    /// service.
    fn dinner_topology() -> GridTopology {
        use gridflow_grid::container::ApplicationContainer;
        use gridflow_grid::resource::{Resource, ResourceKind};
        let mut resources = Vec::new();
        let mut containers = Vec::new();
        let hosting: [(&str, &[&str]); 8] = [
            ("h0", &["prep"]),
            ("h1", &["prep"]),
            ("h2", &["cook"]),
            ("h3", &["cook"]),
            ("h4", &["nuke"]),
            ("h5", &["nuke"]),
            ("h6", &["plate"]),
            ("h7", &["plate"]),
        ];
        for (i, (name, services)) in hosting.iter().enumerate() {
            resources.push(
                Resource::new(*name, ResourceKind::PcCluster)
                    .with_nodes(4 + i as u32)
                    .with_software(services.iter().map(|s| s.to_string())),
            );
            containers.push(
                ApplicationContainer::new(format!("ac-{name}"), *name)
                    .hosting(services.iter().map(|s| s.to_string())),
            );
        }
        GridTopology {
            resources,
            containers,
        }
    }

    fn world(_seed: u64) -> GridWorld {
        let mut w = GridWorld::new(dinner_topology());
        w.offer(ServiceOffering::new(
            "prep",
            ["Raw"],
            vec![OutputSpec::plain("Prepped")],
        ));
        w.offer(ServiceOffering::new(
            "cook",
            ["Prepped"],
            vec![OutputSpec::plain("Cooked")],
        ));
        // `nuke` is an alternative cooker.
        w.offer(ServiceOffering::new(
            "nuke",
            ["Prepped"],
            vec![OutputSpec::plain("Cooked")],
        ));
        w.offer(ServiceOffering::new(
            "plate",
            ["Cooked"],
            vec![OutputSpec::plain("Plated")],
        ));
        w
    }

    fn case() -> CaseDescription {
        CaseDescription::new("dinner")
            .with_data("D1", DataItem::classified("Raw"))
            .with_goal(
                "G1",
                Condition::classified("D101", "Plated").or(plated_exists()),
            )
    }

    /// Goal: some produced item is classified Plated.  Data ids are
    /// fresh (D101, D102, …), so express the goal over a range of ids.
    fn plated_exists() -> Condition {
        (102..=116)
            .map(|i| Condition::classified(format!("D{i}"), "Plated"))
            .fold(Condition::classified("D101", "Plated"), Condition::or)
    }

    fn graph() -> gridflow_process::ProcessGraph {
        let ast = parse_process("BEGIN prep; cook; plate; END").unwrap();
        lower("dinner", &ast).unwrap()
    }

    #[test]
    fn fiber_images_round_trip_mid_enactment_without_emitting() {
        use gridflow_telemetry::{TraceHandle, TraceLog};
        // Original run: step a traced fiber partway through the dinner
        // workflow.
        let log_a = TraceLog::new();
        let mut wa = world(5);
        let mut fa = CaseFiber::new(
            EnactmentConfig::default(),
            TraceHandle::from(log_a.clone()),
            &graph(),
            case(),
            "img-case",
        );
        fa.step(&mut wa);
        fa.step(&mut wa);
        assert!(!fa.is_done());

        // Capture both halves of the state (fiber + world), serialize
        // the fiber image, and restore into a fresh world rebuilt from
        // the same seed.
        let image = fa.image();
        let json = serde_json::to_string(&image).unwrap();
        let back: FiberImage = serde_json::from_str(&json).unwrap();
        assert_eq!(back, image);
        let world_image = wa.image();
        let mut wb = world(5);
        wb.restore_image(&world_image).unwrap();
        let log_b = TraceLog::resuming(
            log_a.len() as u64,
            std::sync::Arc::new(gridflow_telemetry::FrozenClock),
        );
        let mut fb = CaseFiber::from_image(back, TraceHandle::from(log_b.clone()));
        // The restore is silent: recovery must not re-emit history.
        assert!(log_b.is_empty());
        assert_eq!(fb.label(), fa.label());

        // Both fibers run to completion; reports and the remaining
        // trace suffixes agree exactly.
        let suffix_from = log_a.len() as u64;
        for _ in 0..64 {
            if fa.is_done() {
                break;
            }
            fa.step(&mut wa);
        }
        for _ in 0..64 {
            if fb.is_done() {
                break;
            }
            fb.step(&mut wb);
        }
        assert!(fa.is_done() && fb.is_done());
        assert_eq!(fa.report(), fb.report());
        assert!(fa.report().success);
        assert_eq!(log_a.records_from(suffix_from), log_b.records());
    }

    #[test]
    fn happy_path_enacts_all_activities() {
        let mut w = world(1);
        let report = Enactor::default().enact(&mut w, &graph(), &case());
        assert!(report.success, "abort: {:?}", report.abort_reason);
        assert_eq!(report.executions.len(), 3);
        assert_eq!(report.replans, 0);
        assert!(report.total_duration_s > 0.0);
        assert_eq!(
            report.produced,
            vec!["Prepped".to_owned(), "Cooked".into(), "Plated".into()]
        );
    }

    #[test]
    fn retries_alternate_containers_on_failure() {
        let mut w = world(2);
        // Take down the best container for `prep`; the enactor must fall
        // back to another.
        let candidates = matchmake(&w, &MatchRequest::for_service("prep")).unwrap();
        assert!(candidates.len() >= 2, "need at least 2 candidates");
        w.set_container_up(&candidates[0].container, false).unwrap();
        let report = Enactor::default().enact(&mut w, &graph(), &case());
        assert!(report.success, "abort: {:?}", report.abort_reason);
    }

    #[test]
    fn fails_without_replanning_when_service_is_gone() {
        let mut w = world(3);
        for c in w.hosting_containers("cook") {
            w.set_container_up(&c, false).unwrap();
        }
        let report = Enactor::default().enact(&mut w, &graph(), &case());
        assert!(!report.success);
        assert!(report.abort_reason.is_some());
    }

    #[test]
    fn replanning_switches_to_the_alternative_service() {
        let mut w = world(4);
        for c in w.hosting_containers("cook") {
            w.set_container_up(&c, false).unwrap();
        }
        let config = EnactmentConfig {
            replan: true,
            planning_goals: vec![GoalSpec {
                classification: "Plated".into(),
                min_count: 1,
            }],
            gp: GpConfig {
                population_size: 80,
                generations: 25,
                seed: 11,
                ..GpConfig::default()
            },
            ..EnactmentConfig::default()
        };
        let report = Enactor::builder()
            .config(config)
            .build()
            .enact(&mut w, &graph(), &case());
        assert!(report.success, "abort: {:?}", report.abort_reason);
        assert!(report.replans >= 1);
        assert!(
            report.executions.iter().any(|e| e.service == "nuke"),
            "expected the alternative cooker; executions: {:?}",
            report.executions
        );
    }

    #[test]
    fn loop_bound_aborts_runaway_plans() {
        let mut w = world(5);
        // An iterative plan whose condition never falsifies.
        let ast = parse_process(
            "BEGIN prep; ITERATIVE { COND { D1.Classification = \"Raw\" } } { cook; }; END",
        )
        .unwrap();
        let g = lower("runaway", &ast).unwrap();
        let config = EnactmentConfig {
            max_loop_iterations: 5,
            ..EnactmentConfig::default()
        };
        let report = Enactor::builder()
            .config(config)
            .build()
            .enact(&mut w, &g, &case());
        assert!(!report.success);
        assert!(report
            .abort_reason
            .as_deref()
            .unwrap_or("")
            .contains("iterations"));
    }

    #[test]
    fn finished_but_goal_unmet_is_reported() {
        let mut w = world(6);
        let ast = parse_process("BEGIN prep; END").unwrap();
        let g = lower("short", &ast).unwrap();
        let report = Enactor::default().enact(&mut w, &g, &case());
        assert!(!report.success);
        assert!(report
            .abort_reason
            .as_deref()
            .unwrap_or("")
            .contains("goals unmet"));
    }

    #[test]
    fn initial_classifications_extracts_from_case() {
        let c = case();
        assert_eq!(initial_classifications(&c), vec!["Raw".to_owned()]);
    }

    #[test]
    fn checkpoints_are_captured_at_the_configured_cadence() {
        let mut w = world(7);
        let config = EnactmentConfig {
            checkpoint_every: Some(1),
            ..EnactmentConfig::default()
        };
        let report = Enactor::builder()
            .config(config)
            .build()
            .enact(&mut w, &graph(), &case());
        assert!(report.success);
        // Three activities → three checkpoints (one per execution).
        assert_eq!(report.checkpoints.len(), 3);
        assert_eq!(report.checkpoints[0].executions.len(), 1);
        assert_eq!(report.checkpoints[2].executions.len(), 3);
        // Checkpoints are serializable for the storage service.
        let json = serde_json::to_string(&report.checkpoints[1]).unwrap();
        let back: EnactmentCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report.checkpoints[1]);
    }

    #[test]
    fn resume_from_checkpoint_completes_the_workflow() {
        // Run with checkpointing, pretend the coordinator crashed after
        // the first activity, resume from that checkpoint on a fresh
        // world, and compare with an uninterrupted run.
        let config = EnactmentConfig {
            checkpoint_every: Some(1),
            ..EnactmentConfig::default()
        };
        let mut w1 = world(8);
        let full =
            Enactor::builder()
                .config(config.clone())
                .build()
                .enact(&mut w1, &graph(), &case());
        assert!(full.success);

        let mut w2 = world(8);
        let interrupted =
            Enactor::builder()
                .config(config.clone())
                .build()
                .enact(&mut w2, &graph(), &case());
        let checkpoint = interrupted.checkpoints[0].clone(); // after `prep`
        let mut w3 = world(8);
        let resumed =
            Enactor::builder()
                .config(config)
                .build()
                .resume(&mut w3, checkpoint, &case());
        assert!(resumed.success, "abort: {:?}", resumed.abort_reason);
        // The resumed run finishes the remaining activities only.
        let services: Vec<&str> = resumed
            .executions
            .iter()
            .map(|e| e.service.as_str())
            .collect();
        assert_eq!(services, vec!["prep", "cook", "plate"]);
        // And reaches the same final data state as the full run.
        assert_eq!(resumed.final_state, full.final_state);
    }

    #[test]
    fn resume_mid_fork_round_trips_without_reexecution() {
        // Checkpoint taken *inside* a FORK (one branch done, its sibling
        // pending): the ATN snapshot must carry the fork marking through
        // the storage round trip, and the resumed run must execute only
        // the remaining branch and the join's continuation.
        let ast =
            parse_process("BEGIN prep; FORK { { cook; }, { nuke; } } JOIN; plate; END").unwrap();
        let g = lower("forked", &ast).unwrap();
        let config = EnactmentConfig {
            checkpoint_every: Some(1),
            ..EnactmentConfig::default()
        };
        let mut w1 = world(10);
        let full = Enactor::builder()
            .config(config.clone())
            .build()
            .enact(&mut w1, &g, &case());
        assert!(full.success, "abort: {:?}", full.abort_reason);
        assert_eq!(full.executions.len(), 4);

        let mut w2 = world(10);
        let interrupted =
            Enactor::builder()
                .config(config.clone())
                .build()
                .enact(&mut w2, &g, &case());
        // Checkpoint 1 sits after `prep` plus exactly one fork branch.
        let cp = interrupted.checkpoints[1].clone();
        assert_eq!(cp.executions.len(), 2);

        // Round-trip through the storage service's representation.
        let archived = serde_json::to_string(&cp).unwrap();
        let restored: EnactmentCheckpoint = serde_json::from_str(&archived).unwrap();
        assert_eq!(restored, cp);

        let mut w3 = world(10);
        let resumed = Enactor::builder()
            .config(config)
            .build()
            .resume(&mut w3, restored, &case());
        assert!(resumed.success, "abort: {:?}", resumed.abort_reason);
        // The checkpointed prefix is preserved verbatim…
        assert_eq!(resumed.executions[..2], cp.executions[..]);
        // …and every activity ran exactly once across crash and resume.
        let services: Vec<&str> = resumed
            .executions
            .iter()
            .map(|e| e.service.as_str())
            .collect();
        assert_eq!(services.len(), 4);
        for s in ["prep", "cook", "nuke", "plate"] {
            assert_eq!(
                services.iter().filter(|x| **x == s).count(),
                1,
                "{s} must execute exactly once; got {services:?}"
            );
        }
        assert_eq!(resumed.final_state, full.final_state);
    }

    /// A world whose `cook` refines a fixed tracker item `D10` on every
    /// pass (besides producing a fresh `Cooked`): `Value` starts at 12
    /// via `prep` and improves by 3 per `cook`, so a `D10.Value > 6`
    /// loop condition falsifies after exactly two passes.
    fn honing_world() -> GridWorld {
        let mut w = GridWorld::new(dinner_topology());
        w.offer(ServiceOffering::new(
            "prep",
            ["Raw"],
            vec![OutputSpec::refining("Prepped", "D10", 12.0, 3.0)],
        ));
        w.offer(ServiceOffering::new(
            "cook",
            ["Prepped"],
            vec![
                OutputSpec::plain("Cooked"),
                OutputSpec::refining("Prepped", "D10", 12.0, 3.0),
            ],
        ));
        w.offer(ServiceOffering::new(
            "plate",
            ["Cooked"],
            vec![OutputSpec::plain("Plated")],
        ));
        w
    }

    #[test]
    fn resume_mid_iterative_round_trips_without_reexecution() {
        // Checkpoint taken *inside* an ITERATIVE loop (one refinement
        // pass done, the condition still true): the resumed run must
        // continue the refinement from the checkpointed `Value`, not
        // restart the loop — completed iterations never re-execute.
        let ast =
            parse_process("BEGIN prep; ITERATIVE { COND { D10.Value > 6 } } { cook; }; plate; END")
                .unwrap();
        let g = lower("honed", &ast).unwrap();
        let config = EnactmentConfig {
            checkpoint_every: Some(1),
            ..EnactmentConfig::default()
        };
        let mut w1 = honing_world();
        let full = Enactor::builder()
            .config(config.clone())
            .build()
            .enact(&mut w1, &g, &case());
        assert!(full.success, "abort: {:?}", full.abort_reason);
        let full_services: Vec<&str> = full.executions.iter().map(|e| e.service.as_str()).collect();
        assert_eq!(full_services, vec!["prep", "cook", "cook", "plate"]);

        let mut w2 = honing_world();
        let interrupted =
            Enactor::builder()
                .config(config.clone())
                .build()
                .enact(&mut w2, &g, &case());
        // Checkpoint 1: after the loop's first pass, `D10.Value` is 9 and
        // the loop condition is still true — a genuinely mid-loop state.
        let cp = interrupted.checkpoints[1].clone();
        assert_eq!(cp.executions.len(), 2);
        assert_eq!(
            cp.state.property("D10", "Value").and_then(|v| v.as_float()),
            Some(9.0)
        );

        let archived = serde_json::to_string(&cp).unwrap();
        let restored: EnactmentCheckpoint = serde_json::from_str(&archived).unwrap();
        assert_eq!(restored, cp);

        let mut w3 = honing_world();
        let resumed = Enactor::builder()
            .config(config)
            .build()
            .resume(&mut w3, restored, &case());
        assert!(resumed.success, "abort: {:?}", resumed.abort_reason);
        assert_eq!(resumed.executions[..2], cp.executions[..]);
        let services: Vec<&str> = resumed
            .executions
            .iter()
            .map(|e| e.service.as_str())
            .collect();
        // One further pass only: two `cook`s total, never three — the
        // completed first iteration is not repeated.
        assert_eq!(services, full_services);
        assert_eq!(
            resumed
                .final_state
                .property("D10", "Value")
                .and_then(|v| v.as_float()),
            Some(6.0),
            "refinement must continue from the checkpointed value"
        );
        assert_eq!(resumed.final_state, full.final_state);
    }

    #[test]
    fn resume_mid_choice_round_trips_without_reexecution() {
        // Checkpoint taken *inside* a CHOICE branch (its first activity
        // done, its second pending): the snapshot must pin the branch
        // decision through the storage round trip — the resumed run
        // finishes that branch and never consults the guards again.
        let ast = parse_process(
            "BEGIN prep; CHOICE { COND { D1.Classification = \"Raw\" } { cook; nuke; }, \
             COND { true } { nuke; } } MERGE; plate; END",
        )
        .unwrap();
        let g = lower("choosy", &ast).unwrap();
        let config = EnactmentConfig {
            checkpoint_every: Some(1),
            ..EnactmentConfig::default()
        };
        let mut w1 = world(12);
        let full = Enactor::builder()
            .config(config.clone())
            .build()
            .enact(&mut w1, &g, &case());
        assert!(full.success, "abort: {:?}", full.abort_reason);
        let full_services: Vec<&str> = full.executions.iter().map(|e| e.service.as_str()).collect();
        assert_eq!(full_services, vec!["prep", "cook", "nuke", "plate"]);

        let mut w2 = world(12);
        let interrupted =
            Enactor::builder()
                .config(config.clone())
                .build()
                .enact(&mut w2, &g, &case());
        // Checkpoint 1 sits after `prep` and the taken branch's `cook` —
        // genuinely mid-branch.
        let cp = interrupted.checkpoints[1].clone();
        assert_eq!(cp.executions.len(), 2);
        assert_eq!(cp.executions[1].service, "cook");

        let archived = serde_json::to_string(&cp).unwrap();
        let restored: EnactmentCheckpoint = serde_json::from_str(&archived).unwrap();
        assert_eq!(restored, cp);

        let mut w3 = world(12);
        let resumed = Enactor::builder()
            .config(config)
            .build()
            .resume(&mut w3, restored, &case());
        assert!(resumed.success, "abort: {:?}", resumed.abort_reason);
        assert_eq!(resumed.executions[..2], cp.executions[..]);
        let services: Vec<&str> = resumed
            .executions
            .iter()
            .map(|e| e.service.as_str())
            .collect();
        // The taken branch is finished — the untaken branch's lone `nuke`
        // never runs a second time and `cook` is not repeated.
        assert_eq!(services, full_services);
        assert_eq!(resumed.final_state, full.final_state);
    }

    #[test]
    fn checkpoint_version_round_trips_and_future_versions_are_refused() {
        let mut w = world(13);
        let config = EnactmentConfig {
            checkpoint_every: Some(1),
            ..EnactmentConfig::default()
        };
        let report =
            Enactor::builder()
                .config(config.clone())
                .build()
                .enact(&mut w, &graph(), &case());
        let cp = report.checkpoints[0].clone();
        assert_eq!(cp.version, CHECKPOINT_VERSION);
        // The version survives the storage round trip.
        let json = serde_json::to_string(&cp).unwrap();
        let back: EnactmentCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.version, CHECKPOINT_VERSION);
        assert_eq!(back, cp);
        // A checkpoint from a future coordinator is refused up front: no
        // activity runs, and the reason names both versions.
        let mut future = cp;
        future.version = CHECKPOINT_VERSION + 1;
        let mut w2 = world(13);
        let resumed = Enactor::builder()
            .config(config)
            .build()
            .resume(&mut w2, future, &case());
        assert!(!resumed.success);
        assert!(resumed.executions.is_empty());
        let reason = resumed.abort_reason.as_deref().unwrap();
        assert!(
            reason.contains("refusing to resume")
                && reason.contains(&(CHECKPOINT_VERSION + 1).to_string()),
            "unhelpful refusal: {reason}"
        );
    }

    #[test]
    fn checkpoint_validation_reports_every_violation_at_once() {
        let mut w = world(13);
        let config = EnactmentConfig {
            checkpoint_every: Some(1),
            ..EnactmentConfig::default()
        };
        let report = Enactor::builder()
            .config(config)
            .build()
            .enact(&mut w, &graph(), &case());
        let mut cp = report.checkpoints[0].clone();
        // Corrupt two independent fields: validation must name both in
        // one refusal, not bail at the first.
        cp.version = CHECKPOINT_VERSION + 1;
        cp.total_cost = -1.0;
        let msg = cp.validate().unwrap_err().to_string();
        assert!(
            msg.contains("refusing to resume")
                && msg.contains(&(CHECKPOINT_VERSION + 1).to_string()),
            "missing version violation: {msg}"
        );
        assert!(
            msg.contains("total_cost is negative"),
            "missing cost violation: {msg}"
        );
        assert!(msg.starts_with("invalid checkpoint:"), "{msg}");
    }

    #[test]
    fn recovery_ladder_survives_a_slow_container_via_lease_and_breaker() {
        use gridflow_recovery::BreakerState;
        use gridflow_telemetry::{TraceLog, TraceQuery};
        // The top-ranked `prep` host (ac-h1, more nodes → faster) goes
        // slow: executions still "succeed" in the world but outlive the
        // 60-tick lease.  The ladder must burn its retries, trip the
        // breaker, fail over to ac-h0 and complete — the scenario the
        // legacy loop cannot survive, because it trusts the slow success.
        let mut w = world(14);
        w.set_slowdown("ac-h1", 50.0);
        let config = EnactmentConfig {
            recovery: RecoveryPolicy::standard(),
            checkpoint_every: Some(1),
            ..EnactmentConfig::default()
        };
        let log = TraceLog::new();
        let report = Enactor::builder()
            .config(config)
            .trace_handle(TraceHandle::from(log.clone()))
            .build()
            .enact(&mut w, &graph(), &case());
        assert!(report.success, "abort: {:?}", report.abort_reason);
        // `prep` ultimately ran on the healthy host.
        let prep = &report.executions[0];
        assert_eq!(
            (prep.service.as_str(), prep.container.as_str()),
            ("prep", "ac-h0")
        );
        // Three lease-expired attempts on ac-h1 were recorded as failures
        // even though the world executed them.
        assert_eq!(
            report
                .failed_attempts
                .iter()
                .filter(|(_, c)| c == "ac-h1")
                .count(),
            3
        );
        let q = TraceQuery::new(log.records());
        assert_eq!(q.lease_expiry_count("prep"), 3);
        // Retries 2 and 3 each waited a scheduled backoff first.
        assert_eq!(q.retry_schedule_count("prep"), 2);
        assert!(q.count(|e| matches!(e, TraceEvent::LeaseGranted { .. })) >= 3);
        assert_eq!(
            q.count(
                |e| matches!(e, TraceEvent::BreakerOpened { container, .. } if container == "ac-h1")
            ),
            1
        );
        q.assert_breaker_discipline();
        q.assert_no_dispatch_while_open();
        // The checkpoint carries the quarantine.
        let cp = report.checkpoints.last().unwrap();
        let rec = cp.recovery.breakers.get("ac-h1").expect("breaker record");
        assert!(matches!(rec.state, BreakerState::Open { .. }));
        assert_eq!(rec.times_opened, 1);
    }

    #[test]
    fn resume_preserves_recovery_state_across_the_checkpoint() {
        use gridflow_recovery::BreakerState;
        // Trip ac-h1's breaker during `prep`, crash after the first
        // checkpoint, and resume: the restored run must still consider
        // ac-h1 quarantined (its breaker record — state, failure count,
        // times opened — survives the storage round trip verbatim).
        let config = EnactmentConfig {
            recovery: RecoveryPolicy::standard(),
            checkpoint_every: Some(1),
            ..EnactmentConfig::default()
        };
        let mut w1 = world(15);
        w1.set_slowdown("ac-h1", 50.0);
        let interrupted =
            Enactor::builder()
                .config(config.clone())
                .build()
                .enact(&mut w1, &graph(), &case());
        assert!(interrupted.success);
        let cp = interrupted.checkpoints[0].clone(); // after `prep`
        assert!(matches!(
            cp.recovery.breakers.get("ac-h1").unwrap().state,
            BreakerState::Open { .. }
        ));
        assert!(cp.recovery.now_tick > 0);

        let archived = serde_json::to_string(&cp).unwrap();
        let restored: EnactmentCheckpoint = serde_json::from_str(&archived).unwrap();
        assert_eq!(restored.recovery, cp.recovery);

        let mut w2 = world(15);
        w2.set_slowdown("ac-h1", 50.0);
        let resumed = Enactor::builder()
            .config(config)
            .build()
            .resume(&mut w2, restored, &case());
        assert!(resumed.success, "abort: {:?}", resumed.abort_reason);
        // The resumed run checkpoints again after `cook`; ac-h1's record
        // is still there, untouched by the crash.
        let later = &resumed.checkpoints[0];
        let rec = later
            .recovery
            .breakers
            .get("ac-h1")
            .expect("quarantine survived resume");
        assert_eq!(rec.times_opened, 1);
        // And the clock kept counting from the checkpointed tick.
        assert!(later.recovery.now_tick >= cp.recovery.now_tick);
    }

    #[test]
    fn resume_with_an_invalid_graph_reports_cleanly() {
        let mut w = world(9);
        let config = EnactmentConfig {
            checkpoint_every: Some(1),
            ..EnactmentConfig::default()
        };
        let report =
            Enactor::builder()
                .config(config.clone())
                .build()
                .enact(&mut w, &graph(), &case());
        let mut checkpoint = report.checkpoints[0].clone();
        checkpoint.graph = gridflow_process::ProcessGraph::new("empty");
        let mut w2 = world(9);
        let resumed =
            Enactor::builder()
                .config(config)
                .build()
                .resume(&mut w2, checkpoint, &case());
        assert!(!resumed.success);
        assert!(resumed
            .abort_reason
            .as_deref()
            .unwrap()
            .contains("restore failed"));
    }
}
