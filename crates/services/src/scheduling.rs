//! The scheduling service: "Scheduling services provide optimal schedules
//! for sites offering to host application containers for different
//! end-user services" (§2).
//!
//! Implemented as a makespan-minimizing list scheduler: longest-
//! processing-time-first assignment onto per-resource queues, followed by
//! a pairwise-move improvement pass.  Exact optimality is NP-hard; LPT is
//! the classic 4/3-approximation and the improvement pass closes most of
//! the remaining gap on the small instances a grid site sees.

use crate::error::Result;
use crate::world::GridWorld;
use gridflow_grid::workload::estimate;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One scheduled placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// The service (job) being placed.
    pub service: String,
    /// Resource chosen.
    pub resource: String,
    /// Start time (seconds, virtual).
    pub start_s: f64,
    /// Predicted duration.
    pub duration_s: f64,
}

/// A complete schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// All placements, in start order per resource.
    pub placements: Vec<Placement>,
    /// The makespan (seconds).
    pub makespan_s: f64,
}

/// Schedule one execution of each service in `jobs` over the resources
/// that have the matching software installed.  Services with no hosting
/// resource are skipped and reported in the second tuple element.
pub fn schedule(world: &GridWorld, jobs: &[String]) -> Result<(Schedule, Vec<String>)> {
    // Gather per-job candidate durations.
    struct Job {
        service: String,
        // resource id → duration
        options: BTreeMap<String, f64>,
        best: f64,
    }
    let mut ready = Vec::new();
    let mut skipped = Vec::new();
    for service in jobs {
        let Ok(offering) = world.offering(service) else {
            skipped.push(service.clone());
            continue;
        };
        let mut options = BTreeMap::new();
        for r in &world.topology.resources {
            if r.has_software(service) {
                options.insert(r.id.clone(), estimate(&offering.demand, r).duration_s);
            }
        }
        if options.is_empty() {
            skipped.push(service.clone());
            continue;
        }
        let best = options.values().cloned().fold(f64::INFINITY, f64::min);
        ready.push(Job {
            service: service.clone(),
            options,
            best,
        });
    }

    // LPT: longest (by best-case duration) first.
    ready.sort_by(|a, b| b.best.partial_cmp(&a.best).expect("finite"));

    let mut queue_end: BTreeMap<String, f64> = world
        .topology
        .resources
        .iter()
        .map(|r| (r.id.clone(), 0.0))
        .collect();
    let mut placements = Vec::with_capacity(ready.len());
    for job in &ready {
        // Choose the resource minimizing completion time.
        let (resource, start, duration) = job
            .options
            .iter()
            .map(|(rid, &dur)| {
                let start = queue_end.get(rid).copied().unwrap_or(0.0);
                (rid.clone(), start, dur)
            })
            .min_by(|a, b| {
                (a.1 + a.2)
                    .partial_cmp(&(b.1 + b.2))
                    .expect("finite")
                    .then_with(|| a.0.cmp(&b.0))
            })
            .expect("options nonempty");
        *queue_end.get_mut(&resource).expect("known resource") = start + duration;
        placements.push(Placement {
            service: job.service.clone(),
            resource,
            start_s: start,
            duration_s: duration,
        });
    }

    // Improvement pass: try moving each job to another resource if that
    // lowers the makespan.
    let options: Options = ready
        .iter()
        .map(|j| (j.service.clone(), j.options.clone()))
        .collect();
    improve(&mut placements, &options);

    let makespan_s = makespan(&placements);
    Ok((
        Schedule {
            placements,
            makespan_s,
        },
        skipped,
    ))
}

type Options = BTreeMap<String, BTreeMap<String, f64>>;

fn makespan(placements: &[Placement]) -> f64 {
    placements
        .iter()
        .map(|p| p.start_s + p.duration_s)
        .fold(0.0, f64::max)
}

fn rebuild_starts(placements: &mut [Placement]) {
    let mut queue_end: BTreeMap<String, f64> = BTreeMap::new();
    for p in placements.iter_mut() {
        let end = queue_end.entry(p.resource.clone()).or_insert(0.0);
        p.start_s = *end;
        *end += p.duration_s;
    }
}

fn improve(placements: &mut [Placement], options: &Options) {
    let mut improved = true;
    let mut rounds = 0;
    while improved && rounds < 8 {
        improved = false;
        rounds += 1;
        let current = makespan(placements);
        for i in 0..placements.len() {
            let job_options = match options.get(&placements[i].service) {
                Some(o) => o.clone(),
                None => continue,
            };
            let original = placements[i].clone();
            for (rid, &dur) in &job_options {
                if *rid == original.resource {
                    continue;
                }
                placements[i].resource = rid.clone();
                placements[i].duration_s = dur;
                rebuild_starts(placements);
                if makespan(placements) + 1e-12 < current {
                    improved = true;
                    break;
                }
                placements[i] = original.clone();
                rebuild_starts(placements);
            }
            if improved {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{OutputSpec, ServiceOffering};
    use gridflow_grid::container::ApplicationContainer;
    use gridflow_grid::resource::{Resource, ResourceKind};
    use gridflow_grid::workload::TaskDemand;
    use gridflow_grid::GridTopology;

    fn world() -> GridWorld {
        let resources = vec![
            Resource::new("fast", ResourceKind::PcCluster)
                .with_nodes(64)
                .with_software(["A", "B", "C"]),
            Resource::new("slow", ResourceKind::Workstation).with_software(["A", "B", "C"]),
        ];
        let containers = vec![
            ApplicationContainer::new("ac-fast", "fast").hosting(["A", "B", "C"]),
            ApplicationContainer::new("ac-slow", "slow").hosting(["A", "B", "C"]),
        ];
        let mut w = GridWorld::new(GridTopology {
            resources,
            containers,
        });
        for (name, gflop) in [("A", 1000.0), ("B", 500.0), ("C", 100.0)] {
            w.offer(
                ServiceOffering::new(name, Vec::<String>::new(), vec![OutputSpec::plain("x")])
                    .with_demand(TaskDemand::coarse(name, gflop, 1.0)),
            );
        }
        w
    }

    #[test]
    fn schedules_every_placeable_job() {
        let w = world();
        let jobs: Vec<String> = ["A", "B", "C"].iter().map(|s| s.to_string()).collect();
        let (schedule, skipped) = schedule(&w, &jobs).unwrap();
        assert!(skipped.is_empty());
        assert_eq!(schedule.placements.len(), 3);
        assert!(schedule.makespan_s > 0.0);
    }

    #[test]
    fn makespan_beats_serial_execution() {
        let w = world();
        let jobs: Vec<String> = ["A", "A", "B", "B", "C", "C"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (sched, _) = schedule(&w, &jobs).unwrap();
        // Serial on the fast machine alone:
        let serial: f64 = sched.placements.iter().map(|p| p.duration_s).sum();
        assert!(sched.makespan_s <= serial);
    }

    #[test]
    fn per_resource_queues_do_not_overlap() {
        let w = world();
        let jobs: Vec<String> = ["A", "B", "C", "A", "B", "C"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (sched, _) = schedule(&w, &jobs).unwrap();
        let mut by_resource: BTreeMap<&str, Vec<&Placement>> = BTreeMap::new();
        for p in &sched.placements {
            by_resource.entry(p.resource.as_str()).or_default().push(p);
        }
        for (_, mut ps) in by_resource {
            ps.sort_by(|a, b| a.start_s.partial_cmp(&b.start_s).unwrap());
            for pair in ps.windows(2) {
                assert!(
                    pair[0].start_s + pair[0].duration_s <= pair[1].start_s + 1e-9,
                    "overlap on {}",
                    pair[0].resource
                );
            }
        }
    }

    #[test]
    fn unknown_or_unhostable_jobs_are_skipped() {
        let w = world();
        let jobs: Vec<String> = vec!["A".into(), "ZZZ".into()];
        let (sched, skipped) = schedule(&w, &jobs).unwrap();
        assert_eq!(sched.placements.len(), 1);
        assert_eq!(skipped, vec!["ZZZ".to_owned()]);
    }

    #[test]
    fn empty_topology_skips_every_job_without_panicking() {
        let mut w = GridWorld::new(GridTopology {
            resources: vec![],
            containers: vec![],
        });
        w.offer(
            ServiceOffering::new("A", Vec::<String>::new(), vec![OutputSpec::plain("x")])
                .with_demand(TaskDemand::coarse("A", 100.0, 1.0)),
        );
        let jobs: Vec<String> = vec!["A".into(), "A".into()];
        let (sched, skipped) = schedule(&w, &jobs).unwrap();
        assert!(sched.placements.is_empty());
        assert_eq!(sched.makespan_s, 0.0);
        assert_eq!(skipped, jobs);
    }

    #[test]
    fn scheduling_plans_capacity_independently_of_container_liveness() {
        // Scheduling answers "what is the optimal placement over the
        // software a site has installed" — a capacity-planning question.
        // Container liveness is the monitoring service's concern, so a
        // full outage must not panic or change the schedule shape.
        let mut w = world();
        for id in ["ac-fast", "ac-slow"] {
            w.set_container_up(id, false).unwrap();
        }
        let jobs: Vec<String> = ["A", "B", "C"].iter().map(|s| s.to_string()).collect();
        let (sched, skipped) = schedule(&w, &jobs).unwrap();
        assert!(skipped.is_empty());
        assert_eq!(sched.placements.len(), 3);
        assert!(sched.makespan_s.is_finite());
    }

    #[test]
    fn empty_job_list_gives_empty_schedule() {
        let w = world();
        let (sched, skipped) = schedule(&w, &[]).unwrap();
        assert!(sched.placements.is_empty());
        assert_eq!(sched.makespan_s, 0.0);
        assert!(skipped.is_empty());
    }
}
