//! The shared grid world: topology, market, service catalog, execution
//! history, failure model, and a virtual clock.
//!
//! All core services observe (and some mutate) this state — the
//! monitoring service probes container status, the brokerage service
//! reads the (possibly stale) catalog and performance history, the
//! coordination service executes activities against it, the matchmaking
//! service ranks candidate resources from it.

use crate::error::{Result, ServiceError};
use crate::matchmaking::MatchIndex;
use gridflow_grid::failure::FailureModel;
use gridflow_grid::workload::{estimate, TaskDemand};
use gridflow_grid::{GridError, GridTopology, SpotMarket};
use gridflow_ontology::Value;
use gridflow_planner::{ActivitySpec, GoalSpec, PlanningProblem};
use gridflow_process::{DataItem, DataState};
use parking_lot::Mutex;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One output a service execution produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputSpec {
    /// Classification of the produced data item.
    pub classification: String,
    /// Fixed data id to (re)write (e.g. the case study's resolution file
    /// `D10`); `None` produces a fresh `D<n>` id per execution.
    pub data_id: Option<String>,
    /// If set, the item carries a numeric `Value` property starting here…
    pub value_start: Option<f64>,
    /// …and each further execution *refines the existing item*: its
    /// `Value` decreases by this step (iterative refinement — resolution
    /// improves pass by pass).  The step is applied to the value found in
    /// the data state, so refinement survives checkpoints and re-plans.
    pub value_step: f64,
}

impl OutputSpec {
    /// A plain output: fresh data item of the given classification.
    pub fn plain(classification: impl Into<String>) -> Self {
        OutputSpec {
            classification: classification.into(),
            data_id: None,
            value_start: None,
            value_step: 0.0,
        }
    }

    /// A refinement output: a fixed data item whose `Value` starts at
    /// `start` and decreases by `step` per execution.
    pub fn refining(
        classification: impl Into<String>,
        data_id: impl Into<String>,
        start: f64,
        step: f64,
    ) -> Self {
        OutputSpec {
            classification: classification.into(),
            data_id: Some(data_id.into()),
            value_start: Some(start),
            value_step: step,
        }
    }
}

/// One end-user computing service offered on the grid (the `Service`
/// ontology class: input/output conditions plus a computational profile).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceOffering {
    /// Service name (e.g. `P3DR`).
    pub name: String,
    /// Required input classifications (multiset, like C1–C8 of Fig. 13).
    pub inputs: Vec<String>,
    /// Outputs produced per execution.
    pub outputs: Vec<OutputSpec>,
    /// Computational profile for the cost model.
    pub demand: TaskDemand,
}

impl ServiceOffering {
    /// A new offering with a coarse-grain default demand.
    pub fn new<I, S>(name: impl Into<String>, inputs: I, outputs: Vec<OutputSpec>) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let name = name.into();
        ServiceOffering {
            demand: TaskDemand::coarse(name.clone(), 100.0, 10.0),
            name,
            inputs: inputs.into_iter().map(Into::into).collect(),
            outputs,
        }
    }

    /// Override the computational profile (builder style).
    pub fn with_demand(mut self, demand: TaskDemand) -> Self {
        self.demand = demand;
        self
    }

    /// The planner-facing view of this offering.
    pub fn activity_spec(&self) -> ActivitySpec {
        ActivitySpec::new(
            self.name.clone(),
            self.inputs.clone(),
            self.outputs
                .iter()
                .map(|o| o.classification.clone())
                .collect::<Vec<_>>(),
        )
    }
}

/// One historical execution (the brokerage service's "past performance
/// data bases").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionRecord {
    /// Service executed.
    pub service: String,
    /// Container it ran on.
    pub container: String,
    /// Resource backing the container.
    pub resource: String,
    /// Wall-clock duration in seconds (virtual).
    pub duration_s: f64,
    /// Market cost.
    pub cost: f64,
    /// Did it complete?
    pub success: bool,
    /// Virtual completion time (seconds since world start).
    pub at_s: f64,
}

/// The shared world.
#[derive(Debug)]
pub struct GridWorld {
    /// Sites and containers.
    pub topology: GridTopology,
    /// The spot market over the topology's resources.
    pub market: SpotMarket,
    /// The end-user service catalog.
    pub offerings: BTreeMap<String, ServiceOffering>,
    /// Stochastic failure model.
    pub failure: FailureModel,
    /// Execution history.
    pub history: Vec<ExecutionRecord>,
    /// Virtual clock in seconds.
    pub clock_s: f64,
    /// When a stochastic failure strikes, does the container stay down
    /// (until recovered) or was it transient?
    pub failures_are_persistent: bool,
    /// Per-container duration multipliers (> 1.0 = degraded): executions
    /// still *succeed* but take longer — the failure mode activity
    /// leases exist to catch.  Cost is unchanged (you pay for nodes, not
    /// for their sluggishness).
    pub slowdowns: BTreeMap<String, f64>,
    data_counter: usize,
    /// Is the tick-scoped reservation protocol active?  Off by default:
    /// single-case enactment paths behave (and trace) exactly as before.
    reservations_enabled: bool,
    /// Per-container slot capacities; containers not listed have one slot.
    capacities: BTreeMap<String, usize>,
    /// Live reservations: container → case labels holding a slot.
    holds: BTreeMap<String, Vec<String>>,
    /// Monotone counter bumped on every matchmaking-visible mutation
    /// (container up/down flips, catalog changes).  Cached candidate
    /// rankings and fiber dispatch plans key their validity to it.
    generation: u64,
    /// Lazily (re)built candidate index for [`crate::matchmaking`];
    /// invalidated by generation mismatch.  Interior mutability keeps
    /// `matchmake(&GridWorld, …)`'s signature unchanged.
    pub(crate) match_index: Mutex<Option<MatchIndex>>,
}

impl GridWorld {
    /// Build a world over a topology with no offerings and no failures.
    pub fn new(topology: GridTopology) -> Self {
        let market = SpotMarket::new(topology.resources.iter().cloned());
        GridWorld {
            topology,
            market,
            offerings: BTreeMap::new(),
            failure: FailureModel::none(),
            history: Vec::new(),
            clock_s: 0.0,
            failures_are_persistent: true,
            slowdowns: BTreeMap::new(),
            data_counter: 100,
            reservations_enabled: false,
            capacities: BTreeMap::new(),
            holds: BTreeMap::new(),
            generation: 0,
            match_index: Mutex::new(None),
        }
    }

    /// The world's matchmaking generation: a monotone counter bumped by
    /// every mutation a [`crate::matchmaking::matchmake`] call could
    /// observe (container up/down flips, catalog changes).  Consumers
    /// caching candidate rankings compare generations to decide whether
    /// their cache is still valid.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Record a matchmaking-visible mutation.  The world's own methods
    /// call this automatically; call it yourself after mutating the pub
    /// `topology`/`offerings` fields directly, so cached candidate
    /// rankings notice the change.
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    // ------------------------------------------------ slot reservations
    //
    // Tick-scoped container reservations back the multi-case engine's
    // fair-contention guarantee: within one scheduler tick, each
    // container admits at most `capacity_of` concurrent case holds.
    // The protocol is opt-in (`enable_reservations`) so every
    // single-case path keeps its byte-identical legacy behavior.

    /// Turn the reservation protocol on or off.  While off,
    /// [`GridWorld::try_reserve`] always succeeds without recording a
    /// hold.
    pub fn enable_reservations(&mut self, enabled: bool) {
        self.reservations_enabled = enabled;
        if !enabled {
            self.holds.clear();
        }
    }

    /// Is the reservation protocol active?
    pub fn reservations_enabled(&self) -> bool {
        self.reservations_enabled
    }

    /// Override a container's slot capacity (default: one slot).
    pub fn set_capacity(&mut self, container: &str, slots: usize) {
        self.capacities.insert(container.to_owned(), slots);
    }

    /// A container's slot capacity (1 unless overridden).
    pub fn capacity_of(&self, container: &str) -> usize {
        self.capacities.get(container).copied().unwrap_or(1)
    }

    /// The declared capacity overrides (for trace assertions).
    pub fn capacities(&self) -> &BTreeMap<String, usize> {
        &self.capacities
    }

    /// Try to reserve one slot on `container` for `case`.  Returns
    /// `true` (and records the hold) when a slot is free, `false` when
    /// the container is fully booked this tick.  Always `true` while
    /// the protocol is disabled.
    pub fn try_reserve(&mut self, case: &str, container: &str) -> bool {
        if !self.reservations_enabled {
            return true;
        }
        let capacity = self.capacity_of(container);
        let holders = self.holds.entry(container.to_owned()).or_default();
        if holders.len() >= capacity {
            return false;
        }
        holders.push(case.to_owned());
        true
    }

    /// Number of slots currently held on `container`.
    pub fn reserved_count(&self, container: &str) -> usize {
        self.holds.get(container).map_or(0, Vec::len)
    }

    /// Slots still free on `container` this tick (capacity minus live
    /// holds) — the O(log n) admission check the scheduler's fast path
    /// uses instead of re-ranking candidates.
    pub fn free_slots(&self, container: &str) -> usize {
        self.capacity_of(container)
            .saturating_sub(self.reserved_count(container))
    }

    /// Release every hold, returning `container → holders` in
    /// deterministic (BTreeMap) order — the engine calls this at each
    /// tick boundary and emits one `slot.released` event per hold.
    pub fn drain_reservations(&mut self) -> BTreeMap<String, Vec<String>> {
        let mut drained = std::mem::take(&mut self.holds);
        drained.retain(|_, holders| !holders.is_empty());
        drained
    }

    /// Degrade (or restore, with `factor <= 1.0`) a container: its
    /// executions take `factor ×` the estimated duration.
    pub fn set_slowdown(&mut self, container: &str, factor: f64) {
        self.slowdowns.insert(container.to_owned(), factor.max(0.0));
    }

    /// Register a service offering.
    pub fn offer(&mut self, offering: ServiceOffering) {
        self.offerings.insert(offering.name.clone(), offering);
        self.bump_generation();
    }

    /// Look up an offering.
    pub fn offering(&self, name: &str) -> Result<&ServiceOffering> {
        self.offerings
            .get(name)
            .ok_or_else(|| ServiceError::UnknownOffering(name.to_owned()))
    }

    /// Ids of containers currently able to execute `service`.
    pub fn executable_containers(&self, service: &str) -> Vec<String> {
        self.topology
            .containers
            .iter()
            .filter(|c| c.can_execute(service))
            .map(|c| c.id.clone())
            .collect()
    }

    /// Ids of all containers hosting `service`, up or down.
    pub fn hosting_containers(&self, service: &str) -> Vec<String> {
        self.topology
            .containers_hosting(service)
            .map(|c| c.id.clone())
            .collect()
    }

    /// Take a container down / bring it back.
    pub fn set_container_up(&mut self, container: &str, up: bool) -> Result<()> {
        let c = self
            .topology
            .containers
            .iter_mut()
            .find(|c| c.id == container)
            .ok_or_else(|| ServiceError::Grid(GridError::UnknownContainer(container.into())))?;
        let flipped = c.up != up;
        if up {
            c.recover();
        } else {
            c.fail();
        }
        if flipped {
            self.bump_generation();
        }
        Ok(())
    }

    /// Execute `service` on `container`, advancing the virtual clock and
    /// recording history.  On a stochastic failure the record is marked
    /// unsuccessful and (if `failures_are_persistent`) the container goes
    /// down.
    pub fn execute_service(
        &mut self,
        service: &str,
        container_id: &str,
    ) -> Result<ExecutionRecord> {
        let offering = self
            .offerings
            .get(service)
            .ok_or_else(|| ServiceError::UnknownOffering(service.to_owned()))?
            .clone();
        let container = self
            .topology
            .containers
            .iter_mut()
            .find(|c| c.id == container_id)
            .ok_or_else(|| {
                ServiceError::Grid(GridError::UnknownContainer(container_id.to_owned()))
            })?;
        if !container.up {
            return Err(ServiceError::Grid(GridError::ContainerDown(
                container_id.to_owned(),
            )));
        }
        if !container.hosts(service) {
            return Err(ServiceError::Grid(GridError::ServiceNotHosted {
                container: container_id.to_owned(),
                service: service.to_owned(),
            }));
        }
        let resource = self
            .topology
            .resources
            .iter()
            .find(|r| r.id == container.resource_id)
            .cloned()
            .ok_or_else(|| {
                ServiceError::Grid(GridError::UnknownResource(container.resource_id.clone()))
            })?;
        let est = estimate(&offering.demand, &resource);
        let slowdown = self.slowdowns.get(container_id).copied().unwrap_or(1.0);
        let duration_s = est.duration_s * slowdown;
        let failed = self.failure.execution_fails(resource.reliability);
        let mut went_down = false;
        if failed {
            container.failed += 1;
            if self.failures_are_persistent {
                went_down = container.up;
                container.fail();
            }
        } else {
            container.completed += 1;
        }
        if went_down {
            self.bump_generation();
        }
        self.clock_s += duration_s;
        let record = ExecutionRecord {
            service: service.to_owned(),
            container: container_id.to_owned(),
            resource: resource.id.clone(),
            duration_s,
            cost: est.cost,
            success: !failed,
            at_s: self.clock_s,
        };
        self.history.push(record.clone());
        if failed {
            return Err(ServiceError::Grid(GridError::ContainerDown(
                container_id.to_owned(),
            )));
        }
        Ok(record)
    }

    /// Apply the outputs of a successful `service` execution to a data
    /// state, returning the produced classifications.
    pub fn apply_outputs(&mut self, service: &str, state: &mut DataState) -> Result<Vec<String>> {
        let offering = self
            .offerings
            .get(service)
            .ok_or_else(|| ServiceError::UnknownOffering(service.to_owned()))?
            .clone();
        let mut produced = Vec::new();
        for output in &offering.outputs {
            let id = match &output.data_id {
                Some(fixed) => fixed.clone(),
                None => loop {
                    // Skip ids the state already holds: after a checkpoint
                    // resume, a fresh world's counter restarts while the
                    // restored state carries earlier fresh ids.
                    self.data_counter += 1;
                    let candidate = format!("D{}", self.data_counter);
                    if !state.contains(&candidate) {
                        break candidate;
                    }
                },
            };
            let mut item = DataItem::classified(output.classification.clone());
            if let Some(start) = output.value_start {
                // Refinement is a function of the data state (not world
                // history): a fresh item starts at `start`; an existing
                // one improves by `value_step`.
                let next = match state.property(&id, "Value").and_then(Value::as_float) {
                    Some(current) => current - output.value_step,
                    None => start,
                };
                item.set("Value", Value::Float(next));
            }
            state.insert(id, item);
            produced.push(output.classification.clone());
        }
        Ok(produced)
    }

    /// Capture the world's mutable state as a serializable image.
    ///
    /// The image records only what a seeded rebuild cannot reproduce:
    /// container status counters, execution history, clocks, the data-id
    /// counter, installed slowdowns/capacities, the matchmaking
    /// generation, and the failure model's draw position.  Static
    /// structure (topology shape, offerings, market) is *not* captured —
    /// [`GridWorld::restore_image`] expects to run against a world
    /// freshly rebuilt from the same `(plan, workload)` pair, which is
    /// the determinism bargain the whole harness rests on.
    ///
    /// Must be taken at a tick boundary: live reservation holds are
    /// tick-scoped (drained every tick) and are not captured.
    pub fn image(&self) -> WorldImage {
        WorldImage {
            containers: self
                .topology
                .containers
                .iter()
                .map(|c| ContainerImage {
                    id: c.id.clone(),
                    up: c.up,
                    completed: c.completed,
                    failed: c.failed,
                })
                .collect(),
            history: self.history.clone(),
            clock_s: self.clock_s,
            failures_are_persistent: self.failures_are_persistent,
            slowdowns: self.slowdowns.clone(),
            data_counter: self.data_counter,
            capacities: self.capacities.clone(),
            generation: self.generation,
            failure_draws: self.failure.draws(),
        }
    }

    /// Restore a captured [`WorldImage`] onto this world, which must be
    /// a fresh rebuild from the same `(plan, workload)` pair the image
    /// was captured under (same topology, same offerings, same failure
    /// seed).  The failure model is repositioned by replaying its draw
    /// count, so the post-restore outcome stream continues exactly
    /// where the captured run left off.
    pub fn restore_image(&mut self, image: &WorldImage) -> Result<()> {
        for ci in &image.containers {
            let c = self
                .topology
                .containers
                .iter_mut()
                .find(|c| c.id == ci.id)
                .ok_or_else(|| ServiceError::Grid(GridError::UnknownContainer(ci.id.clone())))?;
            c.up = ci.up;
            c.completed = ci.completed;
            c.failed = ci.failed;
        }
        self.history = image.history.clone();
        self.clock_s = image.clock_s;
        self.failures_are_persistent = image.failures_are_persistent;
        self.slowdowns = image.slowdowns.clone();
        self.data_counter = image.data_counter;
        self.capacities = image.capacities.clone();
        self.holds.clear();
        let already = self.failure.draws();
        self.failure
            .advance_draws(image.failure_draws.saturating_sub(already));
        // Restore the generation last (the mutations above must not
        // leak bumps) and drop any cached candidate index built
        // against pre-restore state.
        self.generation = image.generation;
        *self.match_index.lock() = None;
        Ok(())
    }

    /// The planning problem `P = {S_init, G, T}` this world induces for a
    /// given initial data set and goal list (`T` = the offering catalog).
    pub fn planning_problem(&self, initial: Vec<String>, goals: Vec<GoalSpec>) -> PlanningProblem {
        PlanningProblem {
            initial,
            goals,
            activities: self.offerings.values().map(|o| o.activity_spec()).collect(),
        }
    }

    /// Average historical duration of `service` executions (successful
    /// only), if any history exists.
    pub fn mean_service_duration(&self, service: &str) -> Option<f64> {
        let durations: Vec<f64> = self
            .history
            .iter()
            .filter(|r| r.service == service && r.success)
            .map(|r| r.duration_s)
            .collect();
        if durations.is_empty() {
            None
        } else {
            Some(durations.iter().sum::<f64>() / durations.len() as f64)
        }
    }
}

/// One container's mutable status inside a [`WorldImage`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContainerImage {
    /// Container id.
    pub id: String,
    /// Is it up?
    pub up: bool,
    /// Successful executions so far.
    pub completed: u64,
    /// Failed executions so far.
    pub failed: u64,
}

/// A serializable capture of a [`GridWorld`]'s mutable state, taken at
/// a tick boundary — the world's half of a durable engine snapshot.
/// See [`GridWorld::image`] for what is (and is not) captured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldImage {
    /// Mutable status of every container, in topology order.
    pub containers: Vec<ContainerImage>,
    /// Execution history.
    pub history: Vec<ExecutionRecord>,
    /// Virtual world clock, in seconds.
    pub clock_s: f64,
    /// Whether stochastic failures down their container.
    pub failures_are_persistent: bool,
    /// Installed per-container slowdown factors.
    pub slowdowns: BTreeMap<String, f64>,
    /// Fresh-data-id counter.
    pub data_counter: usize,
    /// Per-container slot capacities.
    pub capacities: BTreeMap<String, usize>,
    /// Matchmaking generation counter.
    pub generation: u64,
    /// Failure-model draws consumed so far.
    pub failure_draws: u64,
}

/// Thread-safe handle used by agent wrappers.
pub type SharedWorld = Arc<RwLock<GridWorld>>;

/// Wrap a world for concurrent use.
pub fn share(world: GridWorld) -> SharedWorld {
    Arc::new(RwLock::new(world))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service_names() -> Vec<String> {
        vec!["POD".into(), "P3DR".into()]
    }

    fn world() -> GridWorld {
        let topo = GridTopology::generate(6, &service_names(), 42);
        let mut w = GridWorld::new(topo);
        w.offer(ServiceOffering::new(
            "POD",
            ["POD-Parameter", "2D Image"],
            vec![OutputSpec::plain("Orientation File")],
        ));
        w.offer(ServiceOffering::new(
            "P3DR",
            ["P3DR-Parameter", "2D Image", "Orientation File"],
            vec![OutputSpec::plain("3D Model")],
        ));
        w
    }

    #[test]
    fn world_images_round_trip_onto_a_fresh_rebuild() {
        let build = || {
            let mut w = world();
            w.failure = FailureModel::new(11, 0.2);
            w.set_capacity("c", 3);
            w
        };
        let mut original = build();
        let service = original.executable_containers("POD")[0].clone();
        for _ in 0..5 {
            let _ = original.execute_service("POD", &service);
        }
        original.set_slowdown(&service, 2.0);
        let image = original.image();

        let mut restored = build();
        restored.restore_image(&image).unwrap();
        assert_eq!(restored.image(), image);
        assert_eq!(restored.history, original.history);
        assert_eq!(restored.clock_s, original.clock_s);
        assert_eq!(restored.generation(), original.generation());
        assert_eq!(restored.failure.draws(), original.failure.draws());
        // The two worlds continue identically: same outcomes, same
        // clock advance, same history growth.
        for _ in 0..5 {
            let a = original.execute_service("POD", &service).is_ok();
            let b = restored.execute_service("POD", &service).is_ok();
            assert_eq!(a, b);
        }
        assert_eq!(restored.history, original.history);
        assert_eq!(restored.clock_s, original.clock_s);
        // The image itself serializes (it rides inside snapshots).
        let json = serde_json::to_string(&image).unwrap();
        let back: WorldImage = serde_json::from_str(&json).unwrap();
        assert_eq!(back, image);
    }

    #[test]
    fn offerings_register_and_resolve() {
        let w = world();
        assert!(w.offering("POD").is_ok());
        assert!(matches!(
            w.offering("PSF"),
            Err(ServiceError::UnknownOffering(_))
        ));
    }

    #[test]
    fn executable_containers_reflect_hosting_and_status() {
        let mut w = world();
        let all = w.executable_containers("POD");
        assert!(!all.is_empty());
        let first = all[0].clone();
        w.set_container_up(&first, false).unwrap();
        let now = w.executable_containers("POD");
        assert_eq!(now.len(), all.len() - 1);
        assert_eq!(w.hosting_containers("POD").len(), all.len());
        w.set_container_up(&first, true).unwrap();
        assert_eq!(w.executable_containers("POD").len(), all.len());
    }

    #[test]
    fn execute_service_advances_clock_and_history() {
        let mut w = world();
        let container = w.executable_containers("POD")[0].clone();
        let record = w.execute_service("POD", &container).unwrap();
        assert!(record.success);
        assert!(record.duration_s > 0.0);
        assert_eq!(w.history.len(), 1);
        assert!((w.clock_s - record.duration_s).abs() < 1e-12);
        assert_eq!(w.mean_service_duration("POD"), Some(record.duration_s));
        assert_eq!(w.mean_service_duration("P3DR"), None);
    }

    #[test]
    fn slowdown_stretches_duration_but_not_cost() {
        let mut w = world();
        let container = w.executable_containers("POD")[0].clone();
        let baseline = w.execute_service("POD", &container).unwrap();
        w.set_slowdown(&container, 50.0);
        let slowed = w.execute_service("POD", &container).unwrap();
        assert!(slowed.success, "slow is degraded, not down");
        assert!((slowed.duration_s - baseline.duration_s * 50.0).abs() < 1e-9);
        assert_eq!(slowed.cost, baseline.cost);
        // Other containers are unaffected.
        let other = w
            .executable_containers("POD")
            .into_iter()
            .find(|c| *c != container)
            .expect("second candidate");
        let normal = w.execute_service("POD", &other).unwrap();
        assert!(normal.duration_s < slowed.duration_s);
    }

    #[test]
    fn execute_on_down_container_fails() {
        let mut w = world();
        let container = w.executable_containers("POD")[0].clone();
        w.set_container_up(&container, false).unwrap();
        let err = w.execute_service("POD", &container).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Grid(GridError::ContainerDown(_))
        ));
    }

    #[test]
    fn stochastic_failure_records_and_downs_container() {
        let mut w = world();
        w.failure = FailureModel::new(1, 1.0); // always fails
        let container = w.executable_containers("POD")[0].clone();
        let err = w.execute_service("POD", &container).unwrap_err();
        assert!(matches!(err, ServiceError::Grid(_)));
        assert_eq!(w.history.len(), 1);
        assert!(!w.history[0].success);
        assert!(!w.topology.container(&container).unwrap().up);
    }

    #[test]
    fn transient_failures_leave_container_up() {
        let mut w = world();
        w.failure = FailureModel::new(1, 1.0);
        w.failures_are_persistent = false;
        let container = w.executable_containers("POD")[0].clone();
        let _ = w.execute_service("POD", &container);
        assert!(w.topology.container(&container).unwrap().up);
    }

    #[test]
    fn apply_outputs_creates_fresh_and_fixed_items() {
        let mut w = world();
        w.offer(ServiceOffering::new(
            "PSF",
            ["3D Model"],
            vec![OutputSpec::refining("Resolution File", "D10", 12.0, 3.0)],
        ));
        let mut state = DataState::new();
        w.apply_outputs("POD", &mut state).unwrap();
        assert_eq!(state.len(), 1);
        let id = state.ids().next().unwrap().to_owned();
        assert!(id.starts_with('D'));

        // Refining output: fixed id, Value decreasing per execution.
        w.apply_outputs("PSF", &mut state).unwrap();
        assert_eq!(state.property("D10", "Value"), Some(&Value::Float(12.0)));
        w.apply_outputs("PSF", &mut state).unwrap();
        assert_eq!(state.property("D10", "Value"), Some(&Value::Float(9.0)));
        w.apply_outputs("PSF", &mut state).unwrap();
        assert_eq!(state.property("D10", "Value"), Some(&Value::Float(6.0)));
    }

    #[test]
    fn reservations_are_opt_in_and_enforce_capacity() {
        let mut w = world();
        // Disabled (the default): everything "reserves", nothing is held.
        assert!(!w.reservations_enabled());
        assert!(w.try_reserve("case-0", "c1"));
        assert!(w.try_reserve("case-1", "c1"));
        assert_eq!(w.reserved_count("c1"), 0);

        w.enable_reservations(true);
        assert!(w.try_reserve("case-0", "c1"));
        assert!(!w.try_reserve("case-1", "c1"), "default capacity is 1");
        assert_eq!(w.reserved_count("c1"), 1);

        w.set_capacity("c2", 2);
        assert_eq!(w.capacity_of("c2"), 2);
        assert_eq!(w.capacity_of("c1"), 1);
        assert!(w.try_reserve("case-0", "c2"));
        assert!(w.try_reserve("case-1", "c2"));
        assert!(!w.try_reserve("case-2", "c2"));

        let drained = w.drain_reservations();
        assert_eq!(drained["c1"], vec!["case-0".to_string()]);
        assert_eq!(
            drained["c2"],
            vec!["case-0".to_string(), "case-1".to_string()]
        );
        assert_eq!(w.reserved_count("c1"), 0);
        assert!(w.try_reserve("case-1", "c1"), "slots free after drain");

        // Turning the protocol off clears any live holds.
        w.enable_reservations(false);
        assert_eq!(w.reserved_count("c1"), 0);
    }

    #[test]
    fn planning_problem_reflects_catalog() {
        let w = world();
        let p = w.planning_problem(
            vec!["POD-Parameter".into(), "2D Image".into()],
            vec![GoalSpec {
                classification: "3D Model".into(),
                min_count: 1,
            }],
        );
        assert_eq!(p.activities.len(), 2);
        assert!(p.activity("POD").is_some());
        assert_eq!(p.initial.len(), 2);
    }
}
