//! The brokerage service: "Brokerage services maintain information about
//! classes of services offered by the environment, as well as past
//! performance data bases.  Though the brokerage services make a best
//! effort to maintain accurate information regarding the state of
//! resources, such information may be obsolete" (§2).
//!
//! Staleness is modelled explicitly: the broker serves a cached snapshot
//! taken at [`BrokerageService::refresh`] time; the live world may have
//! drifted since.  The re-planning flow of Fig. 3 therefore double-checks
//! candidate containers with the containers themselves.

use crate::world::{ExecutionRecord, GridWorld};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate past-performance statistics for one (service, container)
/// pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PerformanceStats {
    /// Successful executions.
    pub successes: u64,
    /// Failed executions.
    pub failures: u64,
    /// Mean duration of successful executions (seconds).
    pub mean_duration_s: f64,
}

impl PerformanceStats {
    /// Observed success ratio (1.0 with no observations — optimistic
    /// prior).
    pub fn success_ratio(&self) -> f64 {
        let total = self.successes + self.failures;
        if total == 0 {
            1.0
        } else {
            self.successes as f64 / total as f64
        }
    }

    fn record(&mut self, r: &ExecutionRecord) {
        if r.success {
            // Incremental mean over successes only.
            let n = self.successes as f64;
            self.mean_duration_s = (self.mean_duration_s * n + r.duration_s) / (n + 1.0);
            self.successes += 1;
        } else {
            self.failures += 1;
        }
    }
}

/// The brokerage service core.
#[derive(Debug, Clone, Default)]
pub struct BrokerageService {
    /// Snapshot: service name → container ids believed able to execute it.
    snapshot: BTreeMap<String, Vec<String>>,
    /// Snapshot: resource equivalence classes → resource ids.
    classes: BTreeMap<String, Vec<String>>,
    /// Past performance, keyed by (service, container).
    performance: BTreeMap<(String, String), PerformanceStats>,
    /// Virtual time of the last refresh.
    snapshot_at_s: f64,
    history_cursor: usize,
}

impl BrokerageService {
    /// An empty broker (refresh before first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a fresh snapshot of the world: service → executable
    /// containers, resource equivalence classes, and ingest any new
    /// history records into the performance database.
    pub fn refresh(&mut self, world: &GridWorld) {
        self.snapshot.clear();
        for offering in world.offerings.keys() {
            self.snapshot
                .insert(offering.clone(), world.executable_containers(offering));
        }
        self.classes.clear();
        for r in &world.topology.resources {
            self.classes
                .entry(r.equivalence_class())
                .or_default()
                .push(r.id.clone());
        }
        self.snapshot_at_s = world.clock_s;
        self.ingest_history(world);
    }

    /// Ingest history records added since the last refresh (performance
    /// data keeps flowing even when the availability snapshot is stale).
    pub fn ingest_history(&mut self, world: &GridWorld) {
        for r in &world.history[self.history_cursor.min(world.history.len())..] {
            self.performance
                .entry((r.service.clone(), r.container.clone()))
                .or_default()
                .record(r);
        }
        self.history_cursor = world.history.len();
    }

    /// Containers believed (as of the last refresh) able to execute
    /// `service` — step 2 of the Fig. 3 probe: "the planning service
    /// contacts the brokerage service to get a group of Application
    /// Containers that can possibly provide the execution of the
    /// activity".  May be stale.
    pub fn candidate_containers(&self, service: &str) -> Vec<String> {
        self.snapshot.get(service).cloned().unwrap_or_default()
    }

    /// The resource equivalence classes of the last snapshot.
    pub fn equivalence_classes(&self) -> &BTreeMap<String, Vec<String>> {
        &self.classes
    }

    /// Performance statistics for a (service, container) pair.
    pub fn performance(&self, service: &str, container: &str) -> PerformanceStats {
        self.performance
            .get(&(service.to_owned(), container.to_owned()))
            .copied()
            .unwrap_or_default()
    }

    /// Mean historical duration of `service` across containers, if known.
    /// Used for soft-deadline feasibility ("the search … must be
    /// complemented by the ability to access history information about
    /// the past execution of the task", §1).
    pub fn expected_duration(&self, service: &str) -> Option<f64> {
        let stats: Vec<&PerformanceStats> = self
            .performance
            .iter()
            .filter(|((s, _), p)| s == service && p.successes > 0)
            .map(|(_, p)| p)
            .collect();
        if stats.is_empty() {
            None
        } else {
            Some(stats.iter().map(|p| p.mean_duration_s).sum::<f64>() / stats.len() as f64)
        }
    }

    /// Virtual time of the last snapshot.
    pub fn snapshot_age_s(&self, world: &GridWorld) -> f64 {
        world.clock_s - self.snapshot_at_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{OutputSpec, ServiceOffering};
    use gridflow_grid::GridTopology;

    fn world() -> GridWorld {
        let mut w = GridWorld::new(GridTopology::generate(6, &["S".into()], 7));
        w.offer(ServiceOffering::new(
            "S",
            Vec::<String>::new(),
            vec![OutputSpec::plain("Out")],
        ));
        w
    }

    #[test]
    fn snapshot_lists_candidates_and_goes_stale() {
        let mut w = world();
        let mut broker = BrokerageService::new();
        broker.refresh(&w);
        let before = broker.candidate_containers("S");
        assert!(!before.is_empty());
        // The world drifts: a container dies. The broker still claims it.
        let victim = before[0].clone();
        w.set_container_up(&victim, false).unwrap();
        assert!(broker.candidate_containers("S").contains(&victim));
        // After a refresh the broker catches up.
        broker.refresh(&w);
        assert!(!broker.candidate_containers("S").contains(&victim));
    }

    #[test]
    fn unknown_service_has_no_candidates() {
        let w = world();
        let mut broker = BrokerageService::new();
        broker.refresh(&w);
        assert!(broker.candidate_containers("nope").is_empty());
    }

    #[test]
    fn performance_database_accumulates() {
        let mut w = world();
        let mut broker = BrokerageService::new();
        let c = w.executable_containers("S")[0].clone();
        w.execute_service("S", &c).unwrap();
        w.execute_service("S", &c).unwrap();
        broker.refresh(&w);
        let stats = broker.performance("S", &c);
        assert_eq!(stats.successes, 2);
        assert_eq!(stats.failures, 0);
        assert!(stats.mean_duration_s > 0.0);
        assert_eq!(stats.success_ratio(), 1.0);
        assert!(broker.expected_duration("S").is_some());
        assert!(broker.expected_duration("T").is_none());
    }

    #[test]
    fn failures_lower_the_success_ratio() {
        let mut w = world();
        w.failure = gridflow_grid::failure::FailureModel::new(1, 1.0);
        w.failures_are_persistent = false;
        let c = w.executable_containers("S")[0].clone();
        let _ = w.execute_service("S", &c);
        w.failure = gridflow_grid::failure::FailureModel::none();
        w.execute_service("S", &c).unwrap();
        let mut broker = BrokerageService::new();
        broker.refresh(&w);
        let stats = broker.performance("S", &c);
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.successes, 1);
        assert!((stats.success_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ingest_is_incremental_not_double_counting() {
        let mut w = world();
        let mut broker = BrokerageService::new();
        let c = w.executable_containers("S")[0].clone();
        w.execute_service("S", &c).unwrap();
        broker.refresh(&w);
        broker.refresh(&w); // second refresh must not re-ingest
        assert_eq!(broker.performance("S", &c).successes, 1);
    }

    #[test]
    fn equivalence_classes_cover_all_resources() {
        let w = world();
        let mut broker = BrokerageService::new();
        broker.refresh(&w);
        let total: usize = broker.equivalence_classes().values().map(Vec::len).sum();
        assert_eq!(total, w.topology.resources.len());
    }

    #[test]
    fn snapshot_age_tracks_clock() {
        let mut w = world();
        let mut broker = BrokerageService::new();
        broker.refresh(&w);
        assert_eq!(broker.snapshot_age_s(&w), 0.0);
        let c = w.executable_containers("S")[0].clone();
        w.execute_service("S", &c).unwrap();
        assert!(broker.snapshot_age_s(&w) > 0.0);
    }
}
