//! The planning-service agent.
//!
//! Handles plain planning requests (Fig. 2: "1. Planning task
//! specification" → "2. plan") and re-planning requests with the full
//! probe of Fig. 3: it asks the information service for a brokerage
//! service, asks the broker for candidate application containers for each
//! suspect activity, asks each container whether it can execute, and
//! excludes the activities with no executable container before running
//! the GP planner.

use crate::agents::{action_of, reply_failure, DEFAULT_CONVERSATION_TIMEOUT, GRIDFLOW_ONTOLOGY};
use crate::information::Registration;
use crate::planning::{PlanRequest, PlanningService};
use crate::world::SharedWorld;
use gridflow_agents::{AclMessage, Agent, AgentContext, Performative};
use gridflow_process::printer;
use serde_json::json;

/// Wraps a [`PlanningService`] over the shared world.
pub struct PlanningAgent {
    /// Agent name (conventionally `planning-1`).
    pub agent_name: String,
    /// The wrapped planner.
    pub service: PlanningService,
    /// The shared world (read for the service catalog).
    pub world: SharedWorld,
    /// Timeout for the agent's synchronous conversations (the Fig. 3
    /// information/brokerage/container probe).
    pub conversation_timeout: std::time::Duration,
}

impl PlanningAgent {
    /// A fresh agent with the default conversation timeout.
    pub fn new(
        agent_name: impl Into<String>,
        service: PlanningService,
        world: SharedWorld,
    ) -> Self {
        PlanningAgent {
            agent_name: agent_name.into(),
            service,
            world,
            conversation_timeout: DEFAULT_CONVERSATION_TIMEOUT,
        }
    }

    /// Override the timeout for this agent's synchronous conversations.
    pub fn with_conversation_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.conversation_timeout = timeout;
        self
    }

    fn run_plan(&self, request: &PlanRequest) -> crate::Result<serde_json::Value> {
        let world = self.world.read();
        let response = self.service.plan(&world, request)?;
        Ok(json!({
            "viable": response.viable,
            "fitness": response.fitness,
            "process_text": printer::print(&gridflow_plan::tree_to_ast(&response.tree)),
            "tree": response.tree,
            "graph": response.graph,
        }))
    }

    /// The Fig. 3 probe: which of `suspects` have no executable
    /// container?  Returns the excluded service names, and the probe
    /// trace for observability.
    fn probe_nonexecutable(
        &self,
        ctx: &AgentContext,
        suspects: &[String],
    ) -> crate::Result<(Vec<String>, Vec<String>)> {
        let mut trace = Vec::new();
        // Step 1: find a brokerage service via the information service.
        let info = ctx
            .directory()
            .find_by_type("information")
            .into_iter()
            .next()
            .ok_or_else(|| crate::ServiceError::BadRequest("no information service".into()))?;
        let reply = ctx.request_and_wait(
            info.name.clone(),
            GRIDFLOW_ONTOLOGY,
            json!({"action": "find_by_type", "service_type": "brokerage"}),
            self.conversation_timeout,
        )?;
        let brokers: Vec<Registration> = serde_json::from_value(reply.content["services"].clone())
            .map_err(|e| crate::ServiceError::BadRequest(e.to_string()))?;
        let broker = brokers
            .first()
            .ok_or_else(|| crate::ServiceError::BadRequest("no brokerage service".into()))?;
        trace.push(format!(
            "information: brokerage service found: {}",
            broker.name
        ));

        let mut excluded = Vec::new();
        for service in suspects {
            // Step 2: candidate containers from the broker.
            let reply = ctx.request_and_wait(
                broker.location.clone(),
                GRIDFLOW_ONTOLOGY,
                json!({"action": "candidates", "service": service}),
                self.conversation_timeout,
            )?;
            let candidates: Vec<String> =
                serde_json::from_value(reply.content["containers"].clone())
                    .map_err(|e| crate::ServiceError::BadRequest(e.to_string()))?;
            trace.push(format!(
                "brokerage: {} candidate container(s) for `{service}`",
                candidates.len()
            ));
            // Step 3: probe each container.
            let mut executable = false;
            for container in &candidates {
                let probe = ctx.request_and_wait(
                    container.clone(),
                    GRIDFLOW_ONTOLOGY,
                    json!({"action": "can_execute", "service": service}),
                    self.conversation_timeout,
                );
                match probe {
                    Ok(reply) if reply.content["executable"] == json!(true) => {
                        trace.push(format!("container {container}: `{service}` executable"));
                        executable = true;
                        break;
                    }
                    _ => {
                        trace.push(format!("container {container}: `{service}` not executable"));
                    }
                }
            }
            if !executable {
                excluded.push(service.clone());
            }
        }
        Ok((excluded, trace))
    }
}

impl Agent for PlanningAgent {
    fn name(&self) -> String {
        self.agent_name.clone()
    }

    fn service_type(&self) -> String {
        "planning".into()
    }

    fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
        if msg.performative != Performative::Request {
            return;
        }
        let action = match action_of(&msg) {
            Ok(a) => a,
            Err(e) => return reply_failure(ctx, &msg, &e),
        };
        match action.as_str() {
            // Fig. 2: a plain planning request.
            "plan" => {
                let request: PlanRequest =
                    match serde_json::from_value(msg.content["request"].clone()) {
                        Ok(r) => r,
                        Err(e) => return reply_failure(ctx, &msg, &e),
                    };
                match self.run_plan(&request) {
                    Ok(body) => {
                        let _ = ctx.reply(&msg, Performative::Inform, body);
                    }
                    Err(e) => reply_failure(ctx, &msg, &e),
                }
            }
            // Fig. 3: re-planning with the executability probe.
            "replan" => {
                let mut request: PlanRequest =
                    match serde_json::from_value(msg.content["request"].clone()) {
                        Ok(r) => r,
                        Err(e) => return reply_failure(ctx, &msg, &e),
                    };
                let suspects: Vec<String> =
                    serde_json::from_value(msg.content["nonexecutable"].clone())
                        .unwrap_or_default();
                match self.probe_nonexecutable(ctx, &suspects) {
                    Ok((excluded, trace)) => {
                        request.excluded.extend(excluded);
                        request.excluded.sort();
                        request.excluded.dedup();
                        match self.run_plan(&request) {
                            Ok(mut body) => {
                                body["probe_trace"] = json!(trace);
                                body["excluded"] = json!(request.excluded);
                                let _ = ctx.reply(&msg, Performative::Inform, body);
                            }
                            Err(e) => reply_failure(ctx, &msg, &e),
                        }
                    }
                    Err(e) => reply_failure(ctx, &msg, &e),
                }
            }
            other => reply_failure(
                ctx,
                &msg,
                &crate::ServiceError::BadRequest(format!("unknown action `{other}`")),
            ),
        }
    }
}
