//! The coordination-service agent: the end-user's proxy.
//!
//! Implements the Fig. 2 exchange (forwarding planning-task
//! specifications to the planning service and relaying the plan), the
//! `enact`/`solve` actions that drive the
//! [`crate::coordination::Enactor`] against the shared world, and the
//! disconnected-user protocol of §2 ("Individual users may only be
//! intermittently connected to the network"): `submit` acknowledges
//! immediately and runs the task while the user is away; `fetch_result`
//! retrieves the report later.  Completed tasks are archived — report
//! and Fig.-13-style ontology record — with the persistent-storage
//! service when one is registered.

use crate::agents::{action_of, reply_failure, DEFAULT_CONVERSATION_TIMEOUT, GRIDFLOW_ONTOLOGY};
use crate::coordination::{EnactmentConfig, Enactor};
use crate::planning::PlanRequest;
use crate::world::SharedWorld;
use gridflow_agents::{AclMessage, Agent, AgentContext, Performative};
use gridflow_process::{CaseDescription, ProcessGraph};
use serde_json::json;

/// Wraps an [`Enactor`] and the Fig. 2 conversation with planning.
pub struct CoordinationAgent {
    /// Agent name (conventionally `coordination-1`).
    pub agent_name: String,
    /// Enactment configuration.
    pub config: EnactmentConfig,
    /// The shared world.
    pub world: SharedWorld,
    /// Timeout for the agent's synchronous conversations (planning
    /// relays, storage archival).
    pub conversation_timeout: std::time::Duration,
    /// Reports of submitted (disconnected-user) tasks, by task id.
    completed: std::collections::BTreeMap<String, crate::coordination::EnactmentReport>,
    submit_counter: u64,
}

impl CoordinationAgent {
    /// A fresh agent with the default conversation timeout.
    pub fn new(agent_name: impl Into<String>, config: EnactmentConfig, world: SharedWorld) -> Self {
        CoordinationAgent {
            agent_name: agent_name.into(),
            config,
            world,
            conversation_timeout: DEFAULT_CONVERSATION_TIMEOUT,
            completed: std::collections::BTreeMap::new(),
            submit_counter: 0,
        }
    }

    /// Override the timeout for this agent's synchronous conversations.
    pub fn with_conversation_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.conversation_timeout = timeout;
        self
    }

    /// Archive a finished task's report and its ontology record with the
    /// persistent-storage service, if one is registered (best effort —
    /// archival failures never fail the task).
    fn archive(
        &self,
        ctx: &AgentContext,
        task_id: &str,
        graph: &ProcessGraph,
        case: &CaseDescription,
        report: &crate::coordination::EnactmentReport,
    ) {
        let Some(storage) = ctx
            .directory()
            .find_by_type("persistent-storage")
            .into_iter()
            .next()
        else {
            return;
        };
        let _ = ctx.request_and_wait(
            storage.name.clone(),
            GRIDFLOW_ONTOLOGY,
            json!({"action": "put", "key": format!("report/{task_id}"), "body": report}),
            self.conversation_timeout,
        );
        if let Ok(kb) =
            crate::tracker::track_enactment(task_id, graph, case, report, &self.agent_name)
        {
            let _ = ctx.request_and_wait(
                storage.name,
                GRIDFLOW_ONTOLOGY,
                json!({"action": "put", "key": format!("ontology/{task_id}"), "body": kb}),
                self.conversation_timeout,
            );
        }
    }

    fn planning_agent(&self, ctx: &AgentContext) -> crate::Result<String> {
        ctx.directory()
            .find_by_type("planning")
            .into_iter()
            .next()
            .map(|a| a.name)
            .ok_or_else(|| crate::ServiceError::BadRequest("no planning service".into()))
    }

    /// Fig. 2: forward a planning-task specification, return the plan.
    fn request_plan(
        &self,
        ctx: &AgentContext,
        request: &PlanRequest,
    ) -> crate::Result<serde_json::Value> {
        let planner = self.planning_agent(ctx)?;
        let reply = ctx.request_and_wait(
            planner,
            GRIDFLOW_ONTOLOGY,
            json!({"action": "plan", "request": request}),
            self.conversation_timeout,
        )?;
        Ok(reply.content)
    }

    fn enact(
        &self,
        graph: &ProcessGraph,
        case: &CaseDescription,
    ) -> crate::coordination::EnactmentReport {
        let mut world = self.world.write();
        Enactor::builder()
            .config(self.config.clone())
            .build()
            .enact(&mut world, graph, case)
    }
}

impl Agent for CoordinationAgent {
    fn name(&self) -> String {
        self.agent_name.clone()
    }

    fn service_type(&self) -> String {
        "coordination".into()
    }

    fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
        if msg.performative != Performative::Request {
            return;
        }
        let action = match action_of(&msg) {
            Ok(a) => a,
            Err(e) => return reply_failure(ctx, &msg, &e),
        };
        match action.as_str() {
            // Fig. 2 relay.
            "plan_request" => {
                let request: PlanRequest =
                    match serde_json::from_value(msg.content["request"].clone()) {
                        Ok(r) => r,
                        Err(e) => return reply_failure(ctx, &msg, &e),
                    };
                match self.request_plan(ctx, &request) {
                    Ok(body) => {
                        let _ = ctx.reply(&msg, Performative::Inform, body);
                    }
                    Err(e) => reply_failure(ctx, &msg, &e),
                }
            }
            // Enact a supplied process description under a case.
            "enact" => {
                let graph: ProcessGraph = match serde_json::from_value(msg.content["graph"].clone())
                {
                    Ok(g) => g,
                    Err(e) => return reply_failure(ctx, &msg, &e),
                };
                let case: CaseDescription =
                    match serde_json::from_value(msg.content["case"].clone()) {
                        Ok(c) => c,
                        Err(e) => return reply_failure(ctx, &msg, &e),
                    };
                let report = self.enact(&graph, &case);
                let _ = ctx.reply(&msg, Performative::Inform, json!({ "report": report }));
            }
            // Disconnected-user protocol: acknowledge, then run the task
            // while the user is away.
            "submit" => {
                let graph: ProcessGraph = match serde_json::from_value(msg.content["graph"].clone())
                {
                    Ok(g) => g,
                    Err(e) => return reply_failure(ctx, &msg, &e),
                };
                let case: CaseDescription =
                    match serde_json::from_value(msg.content["case"].clone()) {
                        Ok(c) => c,
                        Err(e) => return reply_failure(ctx, &msg, &e),
                    };
                self.submit_counter += 1;
                let task_id = format!("task-{}", self.submit_counter);
                // Acknowledge before doing the work: the user can now
                // disconnect.
                let _ = ctx.reply(&msg, Performative::Agree, json!({ "task_id": task_id }));
                let report = self.enact(&graph, &case);
                self.archive(ctx, &task_id, &graph, &case, &report);
                self.completed.insert(task_id, report);
            }
            // The user reconnects and asks for the outcome.
            "fetch_result" => {
                let task_id = msg.content["task_id"].as_str().unwrap_or("");
                match self.completed.get(task_id) {
                    Some(report) => {
                        let _ = ctx.reply(&msg, Performative::Inform, json!({ "report": report }));
                    }
                    None => reply_failure(
                        ctx,
                        &msg,
                        &crate::ServiceError::NotFound(format!("task `{task_id}`")),
                    ),
                }
            }
            // Plan (via the planning agent) then enact: the full proxy
            // behaviour.
            "solve" => {
                let request: PlanRequest =
                    match serde_json::from_value(msg.content["request"].clone()) {
                        Ok(r) => r,
                        Err(e) => return reply_failure(ctx, &msg, &e),
                    };
                let case: CaseDescription =
                    match serde_json::from_value(msg.content["case"].clone()) {
                        Ok(c) => c,
                        Err(e) => return reply_failure(ctx, &msg, &e),
                    };
                let plan_body = match self.request_plan(ctx, &request) {
                    Ok(b) => b,
                    Err(e) => return reply_failure(ctx, &msg, &e),
                };
                if plan_body["viable"] != json!(true) {
                    return reply_failure(
                        ctx,
                        &msg,
                        &crate::ServiceError::NoViablePlan("planner found no perfect plan".into()),
                    );
                }
                let graph: ProcessGraph = match serde_json::from_value(plan_body["graph"].clone()) {
                    Ok(g) => g,
                    Err(e) => return reply_failure(ctx, &msg, &e),
                };
                let report = self.enact(&graph, &case);
                let _ = ctx.reply(
                    &msg,
                    Performative::Inform,
                    json!({ "report": report, "plan": plan_body }),
                );
            }
            other => reply_failure(
                ctx,
                &msg,
                &crate::ServiceError::BadRequest(format!("unknown action `{other}`")),
            ),
        }
    }
}
