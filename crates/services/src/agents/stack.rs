//! Boot the full core-service stack of Fig. 1 on an agent runtime.

use crate::agents::{
    AuthAgent, BrokerageAgent, ContainerAgent, CoordinationAgent, InformationAgent,
    MonitoringAgent, OntologyAgent, PlanningAgent, SchedulingAgent, SimulationAgent, StorageAgent,
    GRIDFLOW_ONTOLOGY,
};
use crate::auth::AuthService;
use crate::coordination::EnactmentConfig;
use crate::information::Registration;
use crate::ontology_service::OntologyService;
use crate::planning::PlanningService;
use crate::storage::StorageService;
use crate::world::SharedWorld;
use gridflow_agents::{AgentRuntime, Performative, RuntimeHandle};
use serde_json::json;
use std::time::Duration;

/// Names of the agents a booted stack exposes.
pub struct StackHandles {
    /// The information service agent.
    pub information: String,
    /// The brokerage service agent.
    pub brokerage: String,
    /// The planning service agent.
    pub planning: String,
    /// The coordination service agent.
    pub coordination: String,
    /// The monitoring service agent.
    pub monitoring: String,
    /// The ontology service agent.
    pub ontology: String,
    /// The persistent-storage service agent.
    pub storage: String,
    /// The authentication service agent.
    pub authentication: String,
    /// The scheduling service agent.
    pub scheduling: String,
    /// The simulation service agent.
    pub simulation: String,
    /// One agent per application container, named after the container.
    pub containers: Vec<String>,
    /// A client handle already connected to the runtime.
    pub client: RuntimeHandle,
}

/// Spawn the Fig. 1 core services over `world` and register every agent
/// with the information service (the paper: "all end-user services and
/// other core services register their offerings with the information
/// services").
pub fn boot_stack(
    runtime: &mut AgentRuntime,
    world: SharedWorld,
    planning: PlanningService,
    enactment: EnactmentConfig,
) -> crate::Result<StackHandles> {
    runtime.spawn(InformationAgent::new("information-1"))?;
    runtime.spawn(BrokerageAgent::new("brokerage-1", world.clone()))?;
    runtime.spawn(PlanningAgent::new("planning-1", planning, world.clone()))?;
    runtime.spawn(CoordinationAgent::new(
        "coordination-1",
        enactment,
        world.clone(),
    ))?;
    runtime.spawn(MonitoringAgent {
        agent_name: "monitoring-1".into(),
        world: world.clone(),
    })?;
    runtime.spawn(OntologyAgent {
        agent_name: "ontology-1".into(),
        service: OntologyService::with_grid_core(),
    })?;
    runtime.spawn(StorageAgent {
        agent_name: "storage-1".into(),
        service: StorageService::new(),
    })?;
    runtime.spawn(AuthAgent {
        agent_name: "authentication-1".into(),
        service: AuthService::new(),
    })?;
    runtime.spawn(SchedulingAgent {
        agent_name: "scheduling-1".into(),
        world: world.clone(),
    })?;
    runtime.spawn(SimulationAgent {
        agent_name: "simulation-1".into(),
        world: world.clone(),
    })?;
    let containers: Vec<String> = world
        .read()
        .topology
        .containers
        .iter()
        .map(|c| c.id.clone())
        .collect();
    for container in &containers {
        runtime.spawn(ContainerAgent::new(container.clone(), world.clone()))?;
    }

    let client = runtime.client("stack")?;
    // Register the core services (and the containers as end-user service
    // hosts) with the information service.
    let registrations: Vec<Registration> = [
        ("brokerage-1", "brokerage"),
        ("planning-1", "planning"),
        ("coordination-1", "coordination"),
        ("monitoring-1", "monitoring"),
        ("ontology-1", "ontology"),
        ("storage-1", "persistent-storage"),
        ("authentication-1", "authentication"),
        ("scheduling-1", "scheduling"),
        ("simulation-1", "simulation"),
    ]
    .into_iter()
    .map(|(name, service_type)| Registration {
        name: name.into(),
        service_type: service_type.into(),
        location: name.into(),
        description: format!("core {service_type} service"),
    })
    .chain(containers.iter().map(|c| Registration {
        name: c.clone(),
        service_type: "application-container".into(),
        location: c.clone(),
        description: "application container hosting end-user services".into(),
    }))
    .collect();
    for reg in registrations {
        let reply = client.request(
            "information-1",
            GRIDFLOW_ONTOLOGY,
            json!({"action": "register", "registration": reg}),
            Duration::from_secs(5),
        )?;
        debug_assert_eq!(reply.performative, Performative::Confirm);
    }

    Ok(StackHandles {
        information: "information-1".into(),
        brokerage: "brokerage-1".into(),
        planning: "planning-1".into(),
        coordination: "coordination-1".into(),
        monitoring: "monitoring-1".into(),
        ontology: "ontology-1".into(),
        storage: "storage-1".into(),
        authentication: "authentication-1".into(),
        scheduling: "scheduling-1".into(),
        simulation: "simulation-1".into(),
        containers,
        client,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{share, GridWorld, OutputSpec, ServiceOffering};
    use gridflow_grid::GridTopology;
    use gridflow_planner::prelude::{GoalSpec, GpConfig};

    fn shared() -> SharedWorld {
        let names: Vec<String> = vec!["mix".into(), "bake".into()];
        let mut w = GridWorld::new(GridTopology::generate(4, &names, 8));
        w.offer(ServiceOffering::new(
            "mix",
            ["Flour"],
            vec![OutputSpec::plain("Dough")],
        ));
        w.offer(ServiceOffering::new(
            "bake",
            ["Dough"],
            vec![OutputSpec::plain("Bread")],
        ));
        share(w)
    }

    fn gp() -> GpConfig {
        GpConfig {
            population_size: 60,
            generations: 20,
            seed: 2,
            ..GpConfig::default()
        }
    }

    #[test]
    fn conversation_timeout_defaults_and_overrides_per_agent() {
        use crate::agents::DEFAULT_CONVERSATION_TIMEOUT;
        let world = shared();
        let coord =
            CoordinationAgent::new("coordination-1", EnactmentConfig::default(), world.clone());
        assert_eq!(coord.conversation_timeout, DEFAULT_CONVERSATION_TIMEOUT);
        let coord = coord.with_conversation_timeout(Duration::from_millis(250));
        assert_eq!(coord.conversation_timeout, Duration::from_millis(250));
        let planner = PlanningAgent::new("planning-1", PlanningService::new(gp()), world)
            .with_conversation_timeout(Duration::from_secs(120));
        assert_eq!(planner.conversation_timeout, Duration::from_secs(120));
    }

    #[test]
    fn stack_boots_and_registers_everything() {
        let world = shared();
        let mut rt = AgentRuntime::new();
        let stack = boot_stack(
            &mut rt,
            world.clone(),
            PlanningService::new(gp()),
            EnactmentConfig::default(),
        )
        .unwrap();
        // Directory has 10 core agents + containers + the client.
        assert_eq!(rt.directory().len(), 10 + stack.containers.len() + 1);
        // The information service knows the registered services.
        let reply = stack
            .client
            .request(
                &stack.information,
                GRIDFLOW_ONTOLOGY,
                json!({"action": "list"}),
                Duration::from_secs(5),
            )
            .unwrap();
        let count = reply.content["services"].as_array().unwrap().len();
        assert_eq!(count, 9 + stack.containers.len());
        rt.shutdown();
    }

    #[test]
    fn figure_2_flow_plan_request_through_coordination() {
        let world = shared();
        let mut rt = AgentRuntime::new();
        let stack = boot_stack(
            &mut rt,
            world,
            PlanningService::new(gp()),
            EnactmentConfig::default(),
        )
        .unwrap();
        let request = crate::planning::PlanRequest {
            initial: vec!["Flour".into()],
            goals: vec![GoalSpec {
                classification: "Bread".into(),
                min_count: 1,
            }],
            produced: vec![],
            excluded: vec![],
        };
        let reply = stack
            .client
            .request(
                &stack.coordination,
                GRIDFLOW_ONTOLOGY,
                json!({"action": "plan_request", "request": request}),
                Duration::from_secs(60),
            )
            .unwrap();
        assert_eq!(reply.content["viable"], json!(true));
        let text = reply.content["process_text"].as_str().unwrap();
        assert!(text.contains("BEGIN"));
        assert!(text.contains("mix"));
        assert!(text.contains("bake"));
        rt.shutdown();
    }

    #[test]
    fn replicated_planning_service_fails_over() {
        // §2: "Core services are replicated to ensure an adequate level
        // of performance and reliability."  Spawn a second planning
        // replica, stop the primary, and verify the coordination agent
        // still gets plans through the directory.
        let world = shared();
        let mut rt = AgentRuntime::new();
        let stack = boot_stack(
            &mut rt,
            world.clone(),
            PlanningService::new(gp()),
            EnactmentConfig::default(),
        )
        .unwrap();
        rt.spawn(crate::agents::PlanningAgent::new(
            "planning-2",
            PlanningService::new(gp()),
            world,
        ))
        .unwrap();
        rt.stop_agent(&stack.planning).unwrap();
        let request = crate::planning::PlanRequest {
            initial: vec!["Flour".into()],
            goals: vec![GoalSpec {
                classification: "Bread".into(),
                min_count: 1,
            }],
            produced: vec![],
            excluded: vec![],
        };
        let reply = stack
            .client
            .request(
                &stack.coordination,
                GRIDFLOW_ONTOLOGY,
                json!({"action": "plan_request", "request": request}),
                Duration::from_secs(60),
            )
            .unwrap();
        assert_eq!(reply.content["viable"], json!(true));
        rt.shutdown();
    }

    #[test]
    fn figure_3_flow_replanning_probe() {
        let world = shared();
        // Take every `bake` container down so the probe excludes it.
        {
            let mut w = world.write();
            for c in w.hosting_containers("bake") {
                w.set_container_up(&c, false).unwrap();
            }
        }
        let mut rt = AgentRuntime::new();
        let stack = boot_stack(
            &mut rt,
            world,
            PlanningService::new(gp()),
            EnactmentConfig::default(),
        )
        .unwrap();
        // Refresh the broker so its snapshot reflects the failures.
        stack
            .client
            .request(
                &stack.brokerage,
                GRIDFLOW_ONTOLOGY,
                json!({"action": "refresh"}),
                Duration::from_secs(5),
            )
            .unwrap();
        let request = crate::planning::PlanRequest {
            initial: vec!["Flour".into()],
            goals: vec![GoalSpec {
                classification: "Bread".into(),
                min_count: 1,
            }],
            produced: vec![],
            excluded: vec![],
        };
        let reply = stack
            .client
            .request(
                &stack.planning,
                GRIDFLOW_ONTOLOGY,
                json!({
                    "action": "replan",
                    "request": request,
                    "nonexecutable": ["bake", "mix"],
                }),
                Duration::from_secs(60),
            )
            .unwrap();
        // `bake` has no executable container → excluded; `mix` survives.
        let excluded: Vec<String> =
            serde_json::from_value(reply.content["excluded"].clone()).unwrap();
        assert_eq!(excluded, vec!["bake".to_owned()]);
        // Without `bake` the goal is unreachable → not viable.
        assert_eq!(reply.content["viable"], json!(false));
        let trace: Vec<String> =
            serde_json::from_value(reply.content["probe_trace"].clone()).unwrap();
        assert!(trace.iter().any(|l| l.contains("brokerage service found")));
        rt.shutdown();
    }
}
