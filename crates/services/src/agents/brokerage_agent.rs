//! The brokerage-service agent: candidate-container queries (step 2 of
//! Fig. 3: "Application Containers for the activity?" → "A group of
//! Application Containers found") and performance-history queries.

use crate::agents::{action_of, reply_failure};
use crate::brokerage::BrokerageService;
use crate::world::SharedWorld;
use gridflow_agents::{AclMessage, Agent, AgentContext, Performative};
use serde_json::json;

/// Wraps a [`BrokerageService`] over the shared world.
pub struct BrokerageAgent {
    /// Agent name (conventionally `brokerage-1`).
    pub agent_name: String,
    /// The wrapped broker.
    pub service: BrokerageService,
    /// The shared world (read for refreshes).
    pub world: SharedWorld,
}

impl BrokerageAgent {
    /// A fresh agent; the broker snapshot is taken at start-up.
    pub fn new(agent_name: impl Into<String>, world: SharedWorld) -> Self {
        BrokerageAgent {
            agent_name: agent_name.into(),
            service: BrokerageService::new(),
            world,
        }
    }
}

impl Agent for BrokerageAgent {
    fn name(&self) -> String {
        self.agent_name.clone()
    }

    fn service_type(&self) -> String {
        "brokerage".into()
    }

    fn on_start(&mut self, _ctx: &AgentContext) {
        self.service.refresh(&self.world.read());
    }

    fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
        if msg.performative != Performative::Request {
            return;
        }
        let action = match action_of(&msg) {
            Ok(a) => a,
            Err(e) => return reply_failure(ctx, &msg, &e),
        };
        match action.as_str() {
            "refresh" => {
                self.service.refresh(&self.world.read());
                let _ = ctx.reply(&msg, Performative::Confirm, json!({}));
            }
            // Fig. 3 step 2.
            "candidates" => {
                let service = msg.content["service"].as_str().unwrap_or("");
                let containers = self.service.candidate_containers(service);
                let _ = ctx.reply(
                    &msg,
                    Performative::Inform,
                    json!({ "containers": containers }),
                );
            }
            "performance" => {
                let service = msg.content["service"].as_str().unwrap_or("");
                let container = msg.content["container"].as_str().unwrap_or("");
                self.service.ingest_history(&self.world.read());
                let stats = self.service.performance(service, container);
                let _ = ctx.reply(&msg, Performative::Inform, json!({ "stats": stats }));
            }
            "equivalence_classes" => {
                let _ = ctx.reply(
                    &msg,
                    Performative::Inform,
                    json!({ "classes": self.service.equivalence_classes() }),
                );
            }
            other => reply_failure(
                ctx,
                &msg,
                &crate::ServiceError::BadRequest(format!("unknown action `{other}`")),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::GRIDFLOW_ONTOLOGY;
    use crate::world::{share, GridWorld, OutputSpec, ServiceOffering};
    use gridflow_agents::AgentRuntime;
    use gridflow_grid::GridTopology;
    use std::time::Duration;

    fn shared() -> SharedWorld {
        let mut w = GridWorld::new(GridTopology::generate(4, &["S".into()], 3));
        w.offer(ServiceOffering::new(
            "S",
            Vec::<String>::new(),
            vec![OutputSpec::plain("Out")],
        ));
        share(w)
    }

    #[test]
    fn candidates_and_staleness_over_acl() {
        let world = shared();
        let mut rt = AgentRuntime::new();
        rt.spawn(BrokerageAgent::new("brokerage-1", world.clone()))
            .unwrap();
        let client = rt.client("t").unwrap();

        let reply = client
            .request(
                "brokerage-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "candidates", "service": "S"}),
                Duration::from_secs(2),
            )
            .unwrap();
        let containers: Vec<String> =
            serde_json::from_value(reply.content["containers"].clone()).unwrap();
        assert!(!containers.is_empty());

        // Kill one container: the broker is stale until refreshed.
        world
            .write()
            .set_container_up(&containers[0], false)
            .unwrap();
        let reply = client
            .request(
                "brokerage-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "candidates", "service": "S"}),
                Duration::from_secs(2),
            )
            .unwrap();
        let stale: Vec<String> =
            serde_json::from_value(reply.content["containers"].clone()).unwrap();
        assert!(stale.contains(&containers[0]), "broker should be stale");

        client
            .request(
                "brokerage-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "refresh"}),
                Duration::from_secs(2),
            )
            .unwrap();
        let reply = client
            .request(
                "brokerage-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "candidates", "service": "S"}),
                Duration::from_secs(2),
            )
            .unwrap();
        let fresh: Vec<String> =
            serde_json::from_value(reply.content["containers"].clone()).unwrap();
        assert!(!fresh.contains(&containers[0]));
        rt.shutdown();
    }

    #[test]
    fn performance_query_over_acl() {
        let world = shared();
        let container = world.read().executable_containers("S")[0].clone();
        world.write().execute_service("S", &container).unwrap();
        let mut rt = AgentRuntime::new();
        rt.spawn(BrokerageAgent::new("brokerage-1", world)).unwrap();
        let client = rt.client("t").unwrap();
        let reply = client
            .request(
                "brokerage-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "performance", "service": "S", "container": container}),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.content["stats"]["successes"], json!(1));
        rt.shutdown();
    }
}
