//! Agent wrappers for the core services: the message-level layer of the
//! paper's architecture (Fig. 1), including the planning-request flow of
//! Fig. 2 and the re-planning probe of Fig. 3.
//!
//! Every wrapper owns its service core and speaks a JSON protocol over
//! [`gridflow_agents::AclMessage`].  Requests carry an `action` field;
//! positive replies are `Inform`/`Confirm`, negative ones `Refuse`/
//! `Failure` with a `reason`.
//!
//! Agent naming convention: core services are `<type>-1` (e.g.
//! `planning-1`); application-container agents are named after their
//! container id (`ac-0`, `ac-1`, …) so brokerage candidate lists map
//! directly to agent addresses.

mod auxiliary_agents;
mod brokerage_agent;
mod container_agent;
mod coordination_agent;
mod information_agent;
mod planning_agent;
mod stack;

pub use auxiliary_agents::{
    AuthAgent, MonitoringAgent, OntologyAgent, SchedulingAgent, SimulationAgent, StorageAgent,
};
pub use brokerage_agent::BrokerageAgent;
pub use container_agent::ContainerAgent;
pub use coordination_agent::CoordinationAgent;
pub use information_agent::InformationAgent;
pub use planning_agent::PlanningAgent;
pub use stack::{boot_stack, StackHandles};

/// The shared ontology tag for all GridFlow protocols.
pub const GRIDFLOW_ONTOLOGY: &str = "gridflow";

/// Default timeout for synchronous inter-agent conversations.  Agents
/// take this at construction; override it per agent with
/// `with_conversation_timeout` (e.g. shorter under virtual-clock tests,
/// longer for slow planners).
pub const DEFAULT_CONVERSATION_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// Extract the `action` field of a request, or a [`crate::ServiceError::BadRequest`].
pub(crate) fn action_of(msg: &gridflow_agents::AclMessage) -> crate::Result<String> {
    msg.content
        .get("action")
        .and_then(|v| v.as_str())
        .map(str::to_owned)
        .ok_or_else(|| crate::ServiceError::BadRequest("missing `action` field".into()))
}

/// Reply with a `Failure` carrying the error as reason (best effort).
pub(crate) fn reply_failure(
    ctx: &gridflow_agents::AgentContext,
    msg: &gridflow_agents::AclMessage,
    err: &dyn std::fmt::Display,
) {
    let _ = ctx.reply(
        msg,
        gridflow_agents::Performative::Failure,
        serde_json::json!({ "reason": err.to_string() }),
    );
}
