//! Agent wrappers for the remaining core services of Fig. 1: monitoring,
//! ontology, persistent storage, authentication, scheduling, and
//! simulation.  Together with information / brokerage / planning /
//! coordination / container agents, every service in the figure is
//! addressable over ACL.

use crate::agents::{action_of, reply_failure};
use crate::auth::AuthService;
use crate::monitoring::MonitoringService;
use crate::ontology_service::OntologyService;
use crate::scheduling;
use crate::simulation;
use crate::storage::StorageService;
use crate::world::SharedWorld;
use gridflow_agents::{AclMessage, Agent, AgentContext, Performative};
use gridflow_ontology::KnowledgeBase;
use gridflow_process::{CaseDescription, ProcessGraph};
use serde_json::json;

/// Wraps the (stateless) [`MonitoringService`] over the shared world.
pub struct MonitoringAgent {
    /// Agent name (conventionally `monitoring-1`).
    pub agent_name: String,
    /// The shared world probed on every request.
    pub world: SharedWorld,
}

impl Agent for MonitoringAgent {
    fn name(&self) -> String {
        self.agent_name.clone()
    }

    fn service_type(&self) -> String {
        "monitoring".into()
    }

    fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
        if msg.performative != Performative::Request {
            return;
        }
        let mon = MonitoringService;
        let world = self.world.read();
        match action_of(&msg).as_deref() {
            Ok("probe_container") => {
                let id = msg.content["container"].as_str().unwrap_or("");
                match mon.probe_container(&world, id) {
                    Some(status) => {
                        let _ = ctx.reply(&msg, Performative::Inform, json!({"status": status}));
                    }
                    None => reply_failure(ctx, &msg, &crate::ServiceError::NotFound(id.to_owned())),
                }
            }
            Ok("probe_resource") => {
                let id = msg.content["resource"].as_str().unwrap_or("");
                match mon.probe_resource(&world, id) {
                    Some(status) => {
                        let _ = ctx.reply(&msg, Performative::Inform, json!({"status": status}));
                    }
                    None => reply_failure(ctx, &msg, &crate::ServiceError::NotFound(id.to_owned())),
                }
            }
            Ok("availability") => {
                let _ = ctx.reply(
                    &msg,
                    Performative::Inform,
                    json!({"availability": mon.availability(&world)}),
                );
            }
            Ok(other) => reply_failure(
                ctx,
                &msg,
                &crate::ServiceError::BadRequest(format!("unknown action `{other}`")),
            ),
            Err(e) => reply_failure(ctx, &msg, &e),
        }
    }
}

/// Wraps an [`OntologyService`].
pub struct OntologyAgent {
    /// Agent name (conventionally `ontology-1`).
    pub agent_name: String,
    /// The wrapped catalog.
    pub service: OntologyService,
}

impl Agent for OntologyAgent {
    fn name(&self) -> String {
        self.agent_name.clone()
    }

    fn service_type(&self) -> String {
        "ontology".into()
    }

    fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
        if msg.performative != Performative::Request {
            return;
        }
        match action_of(&msg).as_deref() {
            Ok("publish") => {
                match serde_json::from_value::<KnowledgeBase>(msg.content["ontology"].clone()) {
                    Ok(kb) => {
                        self.service.publish(kb);
                        let _ = ctx.reply(&msg, Performative::Confirm, json!({}));
                    }
                    Err(e) => reply_failure(ctx, &msg, &e),
                }
            }
            Ok("get_shell") => {
                let name = msg.content["name"].as_str().unwrap_or("");
                match self.service.get_shell(name) {
                    Ok(shell) => {
                        let _ = ctx.reply(&msg, Performative::Inform, json!({"ontology": shell}));
                    }
                    Err(e) => reply_failure(ctx, &msg, &e),
                }
            }
            Ok("get") => {
                let name = msg.content["name"].as_str().unwrap_or("");
                match self.service.get(name) {
                    Ok(kb) => {
                        let _ = ctx.reply(&msg, Performative::Inform, json!({"ontology": kb}));
                    }
                    Err(e) => reply_failure(ctx, &msg, &e),
                }
            }
            Ok("names") => {
                let _ = ctx.reply(
                    &msg,
                    Performative::Inform,
                    json!({"names": self.service.names()}),
                );
            }
            Ok(other) => reply_failure(
                ctx,
                &msg,
                &crate::ServiceError::BadRequest(format!("unknown action `{other}`")),
            ),
            Err(e) => reply_failure(ctx, &msg, &e),
        }
    }
}

/// Wraps a [`StorageService`].
pub struct StorageAgent {
    /// Agent name (conventionally `storage-1`).
    pub agent_name: String,
    /// The wrapped versioned store.
    pub service: StorageService,
}

impl Agent for StorageAgent {
    fn name(&self) -> String {
        self.agent_name.clone()
    }

    fn service_type(&self) -> String {
        "persistent-storage".into()
    }

    fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
        if msg.performative != Performative::Request {
            return;
        }
        match action_of(&msg).as_deref() {
            Ok("put") => {
                let key = msg.content["key"].as_str().unwrap_or("").to_owned();
                if key.is_empty() {
                    return reply_failure(
                        ctx,
                        &msg,
                        &crate::ServiceError::BadRequest("missing key".into()),
                    );
                }
                let version = self.service.put(key, msg.content["body"].clone());
                let _ = ctx.reply(&msg, Performative::Inform, json!({"version": version}));
            }
            Ok("get") => {
                let key = msg.content["key"].as_str().unwrap_or("");
                let result = match msg.content["version"].as_u64() {
                    Some(v) => self.service.get_version(key, v),
                    None => self.service.get(key),
                };
                match result {
                    Ok(doc) => {
                        let _ = ctx.reply(&msg, Performative::Inform, json!({"doc": doc}));
                    }
                    Err(e) => reply_failure(ctx, &msg, &e),
                }
            }
            Ok("keys") => {
                let prefix = msg.content["prefix"].as_str().unwrap_or("");
                let _ = ctx.reply(
                    &msg,
                    Performative::Inform,
                    json!({"keys": self.service.keys_with_prefix(prefix)}),
                );
            }
            Ok(other) => reply_failure(
                ctx,
                &msg,
                &crate::ServiceError::BadRequest(format!("unknown action `{other}`")),
            ),
            Err(e) => reply_failure(ctx, &msg, &e),
        }
    }
}

/// Wraps an [`AuthService`].
pub struct AuthAgent {
    /// Agent name (conventionally `authentication-1`).
    pub agent_name: String,
    /// The wrapped authenticator.
    pub service: AuthService,
}

impl Agent for AuthAgent {
    fn name(&self) -> String {
        self.agent_name.clone()
    }

    fn service_type(&self) -> String {
        "authentication".into()
    }

    fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
        if msg.performative != Performative::Request {
            return;
        }
        match action_of(&msg).as_deref() {
            Ok("authenticate") => {
                let name = msg.content["principal"].as_str().unwrap_or("");
                let secret = msg.content["secret"].as_str().unwrap_or("");
                let uses = msg.content["uses"].as_u64().unwrap_or(16) as u32;
                match self.service.authenticate(name, secret, uses) {
                    Ok(token) => {
                        let _ = ctx.reply(&msg, Performative::Inform, json!({"token": token}));
                    }
                    Err(e) => reply_failure(ctx, &msg, &e),
                }
            }
            Ok("authorize") => {
                let token = msg.content["token"].as_u64().unwrap_or(0);
                let domain = msg.content["domain"].as_str().unwrap_or("");
                match self.service.authorize(token, domain) {
                    Ok(()) => {
                        let _ = ctx.reply(&msg, Performative::Agree, json!({}));
                    }
                    Err(e) => reply_failure(ctx, &msg, &e),
                }
            }
            Ok("revoke") => {
                let token = msg.content["token"].as_u64().unwrap_or(0);
                match self.service.revoke(token) {
                    Ok(()) => {
                        let _ = ctx.reply(&msg, Performative::Confirm, json!({}));
                    }
                    Err(e) => reply_failure(ctx, &msg, &e),
                }
            }
            Ok(other) => reply_failure(
                ctx,
                &msg,
                &crate::ServiceError::BadRequest(format!("unknown action `{other}`")),
            ),
            Err(e) => reply_failure(ctx, &msg, &e),
        }
    }
}

/// Wraps the scheduling service over the shared world.
pub struct SchedulingAgent {
    /// Agent name (conventionally `scheduling-1`).
    pub agent_name: String,
    /// The shared world.
    pub world: SharedWorld,
}

impl Agent for SchedulingAgent {
    fn name(&self) -> String {
        self.agent_name.clone()
    }

    fn service_type(&self) -> String {
        "scheduling".into()
    }

    fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
        if msg.performative != Performative::Request {
            return;
        }
        match action_of(&msg).as_deref() {
            Ok("schedule") => {
                let jobs: Vec<String> =
                    serde_json::from_value(msg.content["jobs"].clone()).unwrap_or_default();
                let world = self.world.read();
                match scheduling::schedule(&world, &jobs) {
                    Ok((schedule, skipped)) => {
                        let _ = ctx.reply(
                            &msg,
                            Performative::Inform,
                            json!({"schedule": schedule, "skipped": skipped}),
                        );
                    }
                    Err(e) => reply_failure(ctx, &msg, &e),
                }
            }
            Ok(other) => reply_failure(
                ctx,
                &msg,
                &crate::ServiceError::BadRequest(format!("unknown action `{other}`")),
            ),
            Err(e) => reply_failure(ctx, &msg, &e),
        }
    }
}

/// Wraps the simulation (prediction) service over the shared world.
pub struct SimulationAgent {
    /// Agent name (conventionally `simulation-1`).
    pub agent_name: String,
    /// The shared world (cloned per prediction; never mutated).
    pub world: SharedWorld,
}

impl Agent for SimulationAgent {
    fn name(&self) -> String {
        self.agent_name.clone()
    }

    fn service_type(&self) -> String {
        "simulation".into()
    }

    fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
        if msg.performative != Performative::Request {
            return;
        }
        match action_of(&msg).as_deref() {
            Ok("predict") => {
                let graph: ProcessGraph = match serde_json::from_value(msg.content["graph"].clone())
                {
                    Ok(g) => g,
                    Err(e) => return reply_failure(ctx, &msg, &e),
                };
                let case: CaseDescription =
                    match serde_json::from_value(msg.content["case"].clone()) {
                        Ok(c) => c,
                        Err(e) => return reply_failure(ctx, &msg, &e),
                    };
                let world = self.world.read();
                match simulation::predict(&world, &graph, &case, 100_000) {
                    Ok(prediction) => {
                        let _ = ctx.reply(
                            &msg,
                            Performative::Inform,
                            json!({"prediction": prediction}),
                        );
                    }
                    Err(e) => reply_failure(ctx, &msg, &e),
                }
            }
            Ok(other) => reply_failure(
                ctx,
                &msg,
                &crate::ServiceError::BadRequest(format!("unknown action `{other}`")),
            ),
            Err(e) => reply_failure(ctx, &msg, &e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::GRIDFLOW_ONTOLOGY;
    use crate::world::{share, GridWorld, OutputSpec, ServiceOffering};
    use gridflow_agents::AgentRuntime;
    use gridflow_grid::GridTopology;
    use gridflow_process::DataItem;
    use std::time::Duration;

    fn shared() -> SharedWorld {
        let mut w = GridWorld::new(GridTopology::generate(4, &["S".into()], 6));
        w.offer(ServiceOffering::new(
            "S",
            Vec::<String>::new(),
            vec![OutputSpec::plain("Out")],
        ));
        share(w)
    }

    #[test]
    fn monitoring_agent_probes_live_state() {
        let world = shared();
        let container = world.read().topology.containers[0].id.clone();
        let mut rt = AgentRuntime::new();
        rt.spawn(MonitoringAgent {
            agent_name: "monitoring-1".into(),
            world: world.clone(),
        })
        .unwrap();
        let client = rt.client("t").unwrap();
        let reply = client
            .request(
                "monitoring-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "probe_container", "container": container}),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.content["status"]["up"], json!(true));
        world.write().set_container_up(&container, false).unwrap();
        let reply = client
            .request(
                "monitoring-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "availability"}),
                Duration::from_secs(2),
            )
            .unwrap();
        assert!(reply.content["availability"].as_f64().unwrap() < 1.0);
        rt.shutdown();
    }

    #[test]
    fn ontology_agent_serves_shells() {
        let mut rt = AgentRuntime::new();
        rt.spawn(OntologyAgent {
            agent_name: "ontology-1".into(),
            service: OntologyService::with_grid_core(),
        })
        .unwrap();
        let client = rt.client("t").unwrap();
        let reply = client
            .request(
                "ontology-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "get_shell", "name": "grid-core"}),
                Duration::from_secs(2),
            )
            .unwrap();
        let kb: KnowledgeBase = serde_json::from_value(reply.content["ontology"].clone()).unwrap();
        assert!(kb.is_shell());
        assert_eq!(kb.class_count(), 10);
        assert!(client
            .request(
                "ontology-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "get", "name": "missing"}),
                Duration::from_secs(2),
            )
            .is_err());
        rt.shutdown();
    }

    #[test]
    fn storage_agent_versions_documents() {
        let mut rt = AgentRuntime::new();
        rt.spawn(StorageAgent {
            agent_name: "storage-1".into(),
            service: StorageService::new(),
        })
        .unwrap();
        let client = rt.client("t").unwrap();
        for v in 1..=2u64 {
            let reply = client
                .request(
                    "storage-1",
                    GRIDFLOW_ONTOLOGY,
                    json!({"action": "put", "key": "pd/x", "body": {"rev": v}}),
                    Duration::from_secs(2),
                )
                .unwrap();
            assert_eq!(reply.content["version"], json!(v));
        }
        let reply = client
            .request(
                "storage-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "get", "key": "pd/x", "version": 1}),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.content["doc"]["body"]["rev"], json!(1));
        rt.shutdown();
    }

    #[test]
    fn auth_agent_full_cycle() {
        let mut service = AuthService::new();
        service.enroll("hyu", "virus-lab", ["ucf.edu"]);
        let mut rt = AgentRuntime::new();
        rt.spawn(AuthAgent {
            agent_name: "authentication-1".into(),
            service,
        })
        .unwrap();
        let client = rt.client("t").unwrap();
        let reply = client
            .request(
                "authentication-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "authenticate", "principal": "hyu", "secret": "virus-lab"}),
                Duration::from_secs(2),
            )
            .unwrap();
        let token = reply.content["token"]["id"].as_u64().unwrap();
        let reply = client
            .request(
                "authentication-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "authorize", "token": token, "domain": "ucf.edu"}),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.performative, Performative::Agree);
        assert!(client
            .request(
                "authentication-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "authorize", "token": token, "domain": "anl.gov"}),
                Duration::from_secs(2),
            )
            .is_err());
        rt.shutdown();
    }

    #[test]
    fn scheduling_and_simulation_agents_answer() {
        let world = shared();
        let mut rt = AgentRuntime::new();
        rt.spawn(SchedulingAgent {
            agent_name: "scheduling-1".into(),
            world: world.clone(),
        })
        .unwrap();
        rt.spawn(SimulationAgent {
            agent_name: "simulation-1".into(),
            world: world.clone(),
        })
        .unwrap();
        let client = rt.client("t").unwrap();

        let reply = client
            .request(
                "scheduling-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "schedule", "jobs": ["S", "S", "nope"]}),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.content["skipped"], json!(["nope"]));
        assert!(reply.content["schedule"]["makespan_s"].as_f64().unwrap() > 0.0);

        let graph = gridflow_process::lower::lower(
            "g",
            &gridflow_process::parser::parse_process("BEGIN S; END").unwrap(),
        )
        .unwrap();
        let case = CaseDescription::new("c").with_data("D1", DataItem::classified("x"));
        let reply = client
            .request(
                "simulation-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "predict", "graph": graph, "case": case}),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.content["prediction"]["executions"], json!(1));
        rt.shutdown();
    }
}
