//! Application-container agents: the end-user-service hosts of Fig. 1,
//! and the endpoints probed in step 3 of the Fig. 3 re-planning flow
//! ("the planning service communicate[s] with each Application Container
//! for the availability of execution of this activity").

use crate::agents::{action_of, reply_failure};
use crate::world::SharedWorld;
use gridflow_agents::{AclMessage, Agent, AgentContext, Performative};
use serde_json::json;

/// Wraps one application container of the shared world.
pub struct ContainerAgent {
    /// The container id this agent fronts (also its agent name).
    pub container_id: String,
    /// The shared world.
    pub world: SharedWorld,
}

impl ContainerAgent {
    /// A new agent for `container_id`.
    pub fn new(container_id: impl Into<String>, world: SharedWorld) -> Self {
        ContainerAgent {
            container_id: container_id.into(),
            world,
        }
    }
}

impl Agent for ContainerAgent {
    fn name(&self) -> String {
        self.container_id.clone()
    }

    fn service_type(&self) -> String {
        "application-container".into()
    }

    fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
        if msg.performative != Performative::Request {
            return;
        }
        let action = match action_of(&msg) {
            Ok(a) => a,
            Err(e) => return reply_failure(ctx, &msg, &e),
        };
        let service = msg
            .content
            .get("service")
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_owned();
        match action.as_str() {
            // Step 3 of Fig. 3: executability probe.
            "can_execute" => {
                let executable = {
                    let world = self.world.read();
                    world
                        .topology
                        .container(&self.container_id)
                        .map(|c| c.can_execute(&service))
                        .unwrap_or(false)
                };
                let _ = ctx.reply(
                    &msg,
                    Performative::Inform,
                    json!({ "executable": executable, "container": self.container_id }),
                );
            }
            "execute" => {
                let result = {
                    let mut world = self.world.write();
                    world.execute_service(&service, &self.container_id)
                };
                match result {
                    Ok(record) => {
                        let _ = ctx.reply(
                            &msg,
                            Performative::Inform,
                            json!({
                                "duration_s": record.duration_s,
                                "cost": record.cost,
                                "resource": record.resource,
                            }),
                        );
                    }
                    Err(e) => reply_failure(ctx, &msg, &e),
                }
            }
            other => reply_failure(
                ctx,
                &msg,
                &crate::ServiceError::BadRequest(format!("unknown action `{other}`")),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::GRIDFLOW_ONTOLOGY;
    use crate::world::{share, GridWorld, OutputSpec, ServiceOffering};
    use gridflow_agents::AgentRuntime;
    use gridflow_grid::GridTopology;
    use std::time::Duration;

    fn shared() -> SharedWorld {
        let mut w = GridWorld::new(GridTopology::generate(3, &["S".into()], 2));
        w.offer(ServiceOffering::new(
            "S",
            Vec::<String>::new(),
            vec![OutputSpec::plain("Out")],
        ));
        share(w)
    }

    #[test]
    fn probe_and_execute() {
        let world = shared();
        let container = world.read().executable_containers("S")[0].clone();
        let mut rt = AgentRuntime::new();
        rt.spawn(ContainerAgent::new(container.clone(), world.clone()))
            .unwrap();
        let client = rt.client("t").unwrap();

        let reply = client
            .request(
                &container,
                GRIDFLOW_ONTOLOGY,
                json!({"action": "can_execute", "service": "S"}),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.content["executable"], json!(true));

        let reply = client
            .request(
                &container,
                GRIDFLOW_ONTOLOGY,
                json!({"action": "execute", "service": "S"}),
                Duration::from_secs(2),
            )
            .unwrap();
        assert!(reply.content["duration_s"].as_f64().unwrap() > 0.0);
        assert_eq!(world.read().history.len(), 1);
        rt.shutdown();
    }

    #[test]
    fn down_container_probes_false_and_refuses_execution() {
        let world = shared();
        let container = world.read().executable_containers("S")[0].clone();
        world.write().set_container_up(&container, false).unwrap();
        let mut rt = AgentRuntime::new();
        rt.spawn(ContainerAgent::new(container.clone(), world.clone()))
            .unwrap();
        let client = rt.client("t").unwrap();
        let reply = client
            .request(
                &container,
                GRIDFLOW_ONTOLOGY,
                json!({"action": "can_execute", "service": "S"}),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.content["executable"], json!(false));
        let err = client
            .request(
                &container,
                GRIDFLOW_ONTOLOGY,
                json!({"action": "execute", "service": "S"}),
                Duration::from_secs(2),
            )
            .unwrap_err();
        assert!(err.to_string().contains("refused") || err.to_string().contains("down"));
        rt.shutdown();
    }

    #[test]
    fn unknown_action_fails() {
        let world = shared();
        let container = world.read().executable_containers("S")[0].clone();
        let mut rt = AgentRuntime::new();
        rt.spawn(ContainerAgent::new(container.clone(), world))
            .unwrap();
        let client = rt.client("t").unwrap();
        assert!(client
            .request(
                &container,
                GRIDFLOW_ONTOLOGY,
                json!({"action": "dance"}),
                Duration::from_secs(2),
            )
            .is_err());
        rt.shutdown();
    }
}
