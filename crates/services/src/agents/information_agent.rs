//! The information-service agent: registrations and type lookups over
//! ACL (step 1 of the Fig. 3 flow answers "Brokerage Service?" queries).

use crate::agents::{action_of, reply_failure};
use crate::information::{InformationService, Registration};
use gridflow_agents::{AclMessage, Agent, AgentContext, Performative};
use serde_json::json;

/// Wraps an [`InformationService`].
pub struct InformationAgent {
    /// Agent name (conventionally `information-1`).
    pub agent_name: String,
    /// The wrapped registry.
    pub service: InformationService,
}

impl InformationAgent {
    /// A fresh agent with an empty registry.
    pub fn new(agent_name: impl Into<String>) -> Self {
        InformationAgent {
            agent_name: agent_name.into(),
            service: InformationService::new(),
        }
    }
}

impl Agent for InformationAgent {
    fn name(&self) -> String {
        self.agent_name.clone()
    }

    fn service_type(&self) -> String {
        "information".into()
    }

    fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
        if msg.performative != Performative::Request {
            return;
        }
        let action = match action_of(&msg) {
            Ok(a) => a,
            Err(e) => return reply_failure(ctx, &msg, &e),
        };
        match action.as_str() {
            "register" => {
                let reg: Result<Registration, _> =
                    serde_json::from_value(msg.content["registration"].clone());
                match reg {
                    Ok(reg) => match self.service.register(reg) {
                        Ok(()) => {
                            let _ = ctx.reply(&msg, Performative::Confirm, json!({}));
                        }
                        Err(e) => reply_failure(ctx, &msg, &e),
                    },
                    Err(e) => reply_failure(ctx, &msg, &e),
                }
            }
            "deregister" => {
                let name = msg.content["name"].as_str().unwrap_or("");
                match self.service.deregister(name) {
                    Ok(()) => {
                        let _ = ctx.reply(&msg, Performative::Confirm, json!({}));
                    }
                    Err(e) => reply_failure(ctx, &msg, &e),
                }
            }
            // Fig. 3 step 1: "Brokerage Service?" → "Brokerage Service
            // found".
            "find_by_type" => {
                let service_type = msg.content["service_type"].as_str().unwrap_or("");
                let found = self.service.find_by_type(service_type);
                let _ = ctx.reply(&msg, Performative::Inform, json!({ "services": found }));
            }
            "lookup" => {
                let name = msg.content["name"].as_str().unwrap_or("");
                match self.service.lookup(name) {
                    Some(reg) => {
                        let _ =
                            ctx.reply(&msg, Performative::Inform, json!({ "registration": reg }));
                    }
                    None => {
                        reply_failure(ctx, &msg, &crate::ServiceError::NotFound(name.to_owned()))
                    }
                }
            }
            "list" => {
                let _ = ctx.reply(
                    &msg,
                    Performative::Inform,
                    json!({ "services": self.service.all() }),
                );
            }
            other => reply_failure(
                ctx,
                &msg,
                &crate::ServiceError::BadRequest(format!("unknown action `{other}`")),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::GRIDFLOW_ONTOLOGY;
    use gridflow_agents::AgentRuntime;
    use std::time::Duration;

    #[test]
    fn register_find_lookup_over_acl() {
        let mut rt = AgentRuntime::new();
        rt.spawn(InformationAgent::new("information-1")).unwrap();
        let client = rt.client("t").unwrap();

        let reg = Registration {
            name: "brokerage-1".into(),
            service_type: "brokerage".into(),
            location: "brokerage-1".into(),
            description: "broker".into(),
        };
        let reply = client
            .request(
                "information-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "register", "registration": reg}),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.performative, Performative::Confirm);

        let reply = client
            .request(
                "information-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "find_by_type", "service_type": "brokerage"}),
                Duration::from_secs(2),
            )
            .unwrap();
        let found: Vec<Registration> =
            serde_json::from_value(reply.content["services"].clone()).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name, "brokerage-1");

        let reply = client
            .request(
                "information-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "lookup", "name": "brokerage-1"}),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.content["registration"]["name"], json!("brokerage-1"));

        assert!(client
            .request(
                "information-1",
                GRIDFLOW_ONTOLOGY,
                json!({"action": "lookup", "name": "nope"}),
                Duration::from_secs(2),
            )
            .is_err());
        rt.shutdown();
    }
}
