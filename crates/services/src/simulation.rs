//! The simulation service: "Simulation services are necessary to study
//! the scalability of the system and they are also useful for end-users
//! to simulate an experiment before actually conducting it" (§2).
//!
//! [`predict`] dry-runs a process description on a *clone* of the world
//! with a discrete-event engine: ready activities start concurrently (the
//! real enactor serializes; the prediction exploits Fork parallelism), no
//! failures strike, and every activity runs on its best-matching
//! container.  The result is the parallel makespan and total cost the
//! enactment would achieve in the fault-free case.

use crate::error::{Result, ServiceError};
use crate::matchmaking::{matchmake, MatchRequest};
use crate::world::GridWorld;
use gridflow_grid::{Event, SimEngine};
use gridflow_process::{AtnMachine, CaseDescription, ProcessGraph};
use serde::{Deserialize, Serialize};

/// A simulated-enactment prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Parallel makespan (seconds).
    pub makespan_s: f64,
    /// Total cost across all executions.
    pub total_cost: f64,
    /// Number of activity executions.
    pub executions: usize,
    /// Activity → container placements chosen.
    pub placements: Vec<(String, String)>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Completion {
    activity: String,
}

/// Predict one enactment of `graph` under `case`.
///
/// The caller's world is untouched: prediction runs on a clone (the
/// paper's point — simulate *before* conducting).
pub fn predict(
    world: &GridWorld,
    graph: &ProcessGraph,
    case: &CaseDescription,
    max_events: u64,
) -> Result<Prediction> {
    let mut world = world.clone_for_simulation();
    let mut machine = AtnMachine::new(graph)?;
    let mut state = case.initial_data.clone();
    machine.start(&state)?;

    let mut engine: SimEngine<Completion> = SimEngine::new();
    let mut prediction = Prediction {
        makespan_s: 0.0,
        total_cost: 0.0,
        executions: 0,
        placements: Vec::new(),
    };

    // Helper: launch every currently ready activity.
    let launch = |machine: &mut AtnMachine,
                  engine: &mut SimEngine<Completion>,
                  world: &GridWorld,
                  prediction: &mut Prediction|
     -> Result<()> {
        while let Some(activity) = machine.ready().first().cloned() {
            machine.begin_activity(&activity)?;
            let service = graph
                .activity(&activity)
                .and_then(|a| a.service.clone())
                .unwrap_or_else(|| activity.clone());
            let best = matchmake(world, &MatchRequest::for_service(&service))?
                .into_iter()
                .next()
                .expect("matchmake returns at least one match");
            prediction.total_cost += best.cost;
            prediction.executions += 1;
            prediction
                .placements
                .push((activity.clone(), best.container.clone()));
            // Micro-second resolution clock.
            engine.schedule_in((best.duration_s * 1e6) as u64, Completion { activity });
        }
        Ok(())
    };

    launch(&mut machine, &mut engine, &world, &mut prediction)?;
    let mut events = 0u64;
    while let Some(Event { time, payload, .. }) = engine.next() {
        events += 1;
        if events > max_events {
            return Err(ServiceError::BadRequest(format!(
                "prediction exceeded {max_events} events (unbounded loop?)"
            )));
        }
        let service = graph
            .activity(&payload.activity)
            .and_then(|a| a.service.clone())
            .unwrap_or_else(|| payload.activity.clone());
        world.apply_outputs(&service, &mut state)?;
        machine.complete_activity(&payload.activity, &state)?;
        prediction.makespan_s = time as f64 / 1e6;
        launch(&mut machine, &mut engine, &world, &mut prediction)?;
    }
    if !machine.is_finished() {
        return Err(ServiceError::BadRequest(
            "prediction stalled before reaching End".into(),
        ));
    }
    Ok(prediction)
}

impl GridWorld {
    /// A deep copy for what-if simulation (same topology, market,
    /// catalog; failures disabled — predictions are fault-free).
    pub fn clone_for_simulation(&self) -> GridWorld {
        let mut clone = GridWorld::new(self.topology.clone());
        for offering in self.offerings.values() {
            clone.offer(offering.clone());
        }
        clone
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordination::Enactor;
    use crate::world::{OutputSpec, ServiceOffering};
    use gridflow_grid::GridTopology;
    use gridflow_process::{lower::lower, parser::parse_process, DataItem};

    fn names() -> Vec<String> {
        vec!["a".into(), "b".into(), "c".into()]
    }

    fn world() -> GridWorld {
        let mut w = GridWorld::new(GridTopology::generate(6, &names(), 9));
        for n in ["a", "b", "c"] {
            w.offer(ServiceOffering::new(
                n,
                Vec::<String>::new(),
                vec![OutputSpec::plain(format!("{n}-out"))],
            ));
        }
        w
    }

    fn case() -> CaseDescription {
        CaseDescription::new("sim").with_data("D1", DataItem::classified("Seed"))
    }

    #[test]
    fn sequential_makespan_is_sum_of_durations() {
        let w = world();
        let g = lower("seq", &parse_process("BEGIN a; b; END").unwrap()).unwrap();
        let p = predict(&w, &g, &case(), 1000).unwrap();
        assert_eq!(p.executions, 2);
        assert!(p.makespan_s > 0.0);
    }

    #[test]
    fn fork_runs_branches_in_parallel() {
        let w = world();
        let seq = lower("seq", &parse_process("BEGIN a; b; END").unwrap()).unwrap();
        let par = lower(
            "par",
            &parse_process("BEGIN FORK { { a; }, { b; } } JOIN; END").unwrap(),
        )
        .unwrap();
        let p_seq = predict(&w, &seq, &case(), 1000).unwrap();
        let p_par = predict(&w, &par, &case(), 1000).unwrap();
        assert!(
            p_par.makespan_s < p_seq.makespan_s,
            "parallel {} !< sequential {}",
            p_par.makespan_s,
            p_seq.makespan_s
        );
        // Same work, same cost.
        assert_eq!(p_par.executions, p_seq.executions);
    }

    #[test]
    fn prediction_does_not_mutate_the_world() {
        let w = world();
        let g = lower("seq", &parse_process("BEGIN a; b; c; END").unwrap()).unwrap();
        let before_history = w.history.len();
        let before_clock = w.clock_s;
        predict(&w, &g, &case(), 1000).unwrap();
        assert_eq!(w.history.len(), before_history);
        assert_eq!(w.clock_s, before_clock);
    }

    #[test]
    fn prediction_is_no_slower_than_the_serial_enactor() {
        let mut w = world();
        let g = lower(
            "par",
            &parse_process("BEGIN FORK { { a; }, { b; }, { c; } } JOIN; END").unwrap(),
        )
        .unwrap();
        let p = predict(&w, &g, &case(), 1000).unwrap();
        let report = Enactor::default().enact(&mut w, &g, &case());
        assert!(report.abort_reason.is_none(), "{:?}", report.abort_reason);
        assert!(p.makespan_s <= report.total_duration_s + 1e-9);
    }

    #[test]
    fn runaway_loops_hit_the_event_cap() {
        let w = world();
        let g = lower(
            "loop",
            &parse_process("BEGIN ITERATIVE { COND { D1.Classification = \"Seed\" } } { a; }; END")
                .unwrap(),
        )
        .unwrap();
        let err = predict(&w, &g, &case(), 20).unwrap_err();
        assert!(err.to_string().contains("events"));
    }
}
