//! Coordinator-style routing table: service/agent name → (node, endpoint).
//!
//! The paper distributes the core services across grid nodes (Fig. 1);
//! this table is the piece of metainformation that says *where* a named
//! service lives.  The local [`Directory`](crate::Directory) consults it
//! only when a receiver is not registered locally, so a fully local
//! deployment never touches it.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Where a remote service lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteRoute {
    /// Logical node name (e.g. `"node-b"`).
    pub node: String,
    /// Backend-specific endpoint: a socket address for the TCP backend,
    /// a node key for the in-proc backend.
    pub endpoint: String,
}

impl RemoteRoute {
    /// Build a route.
    pub fn new(node: impl Into<String>, endpoint: impl Into<String>) -> Self {
        RemoteRoute {
            node: node.into(),
            endpoint: endpoint.into(),
        }
    }
}

/// Thread-safe name → route map.  Clones share the underlying table.
#[derive(Debug, Default, Clone)]
pub struct RouteTable {
    inner: Arc<RwLock<BTreeMap<String, RemoteRoute>>>,
}

impl RouteTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) the route for a name.
    pub fn set(&self, name: impl Into<String>, route: RemoteRoute) {
        self.inner.write().insert(name.into(), route);
    }

    /// Remove the route for a name, returning it if present.
    pub fn remove(&self, name: &str) -> Option<RemoteRoute> {
        self.inner.write().remove(name)
    }

    /// Resolve a name to its route.
    pub fn resolve(&self, name: &str) -> Option<RemoteRoute> {
        self.inner.read().get(name).cloned()
    }

    /// All routed names, in order.
    pub fn names(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_resolve_remove() {
        let table = RouteTable::new();
        assert!(table.is_empty());
        table.set("planning", RemoteRoute::new("node-b", "127.0.0.1:9001"));
        assert_eq!(
            table.resolve("planning"),
            Some(RemoteRoute::new("node-b", "127.0.0.1:9001"))
        );
        assert_eq!(table.len(), 1);
        assert_eq!(table.names(), vec!["planning".to_string()]);
        assert!(table.remove("planning").is_some());
        assert!(table.resolve("planning").is_none());
    }

    #[test]
    fn clones_share_routes() {
        let table = RouteTable::new();
        let clone = table.clone();
        clone.set("monitoring", RemoteRoute::new("node-c", "ep"));
        assert!(table.resolve("monitoring").is_some());
    }

    #[test]
    fn replace_overwrites() {
        let table = RouteTable::new();
        table.set("x", RemoteRoute::new("a", "1"));
        table.set("x", RemoteRoute::new("b", "2"));
        assert_eq!(table.resolve("x").unwrap().node, "b");
    }
}
